//! Criterion micro-benchmarks for the performance-critical primitives of
//! the simulator and for SAC's runtime components (the EAB model and the
//! CRD, which the paper argues are lightweight enough for hardware).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcgpu_cache::{CacheConfig, DataHome, SetAssocCache};
use mcgpu_mem::interleave;
use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{ChipId, LineAddr, LlcOrgKind, MachineConfig};
use sac::eab::{ArchBandwidth, EabInputs, EabModel};
use sac::Crd;

fn bench_cache(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(CacheConfig::llc_slice(256 << 10, 16, 128));
    let mut i = 0u64;
    c.bench_function("llc_slice_lookup_fill", |b| {
        b.iter(|| {
            let line = LineAddr(i % 40_000);
            i = i.wrapping_add(97);
            if cache.lookup(black_box(line), None, false) != mcgpu_cache::LookupOutcome::Hit {
                cache.fill(line, None, DataHome::Local, false);
            }
        })
    });
}

fn bench_interleave(c: &mut Criterion) {
    let mut i = 0u64;
    c.bench_function("pae_slice_index", |b| {
        b.iter(|| {
            i = i.wrapping_add(4097);
            black_box(interleave::slice_index(LineAddr(i), 16))
        })
    });
}

fn bench_eab(c: &mut Criterion) {
    let model = EabModel::new(ArchBandwidth {
        b_intra: 4096.0,
        b_inter: 192.0,
        b_llc: 4000.0,
        b_mem: 437.5,
    });
    let inputs = EabInputs {
        r_local: 0.6,
        llc_hit_memory_side: 0.55,
        llc_hit_sm_side: 0.4,
        lsu_memory_side: 0.8,
        lsu_sm_side: 0.9,
    };
    c.bench_function("eab_decide", |b| {
        b.iter(|| model.decide(black_box(&inputs), 0.05))
    });
}

fn bench_crd(c: &mut Criterion) {
    let mut crd = Crd::paper_default(128);
    let mut i = 0u64;
    c.bench_function("crd_observe", |b| {
        b.iter(|| {
            i = i.wrapping_add(31);
            crd.observe(LineAddr(i % 4096), None, ChipId((i % 4) as u8))
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let cfg = MachineConfig::experiment_baseline();
    let p = profiles::by_name("SN").expect("profile");
    let params = TraceParams {
        total_accesses: 20_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &p, &params);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for org in [LlcOrgKind::MemorySide, LlcOrgKind::Sac] {
        group.bench_function(format!("sn_20k_{}", org.label()), |b| {
            b.iter(|| {
                SimBuilder::new(cfg.clone())
                    .organization(org)
                    .build()
                    .expect("valid machine configuration")
                    .run(black_box(&wl))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Per-cycle cost of the engine's tick loop, including the flat sharer
/// directory (hardware coherence stresses it on every write) and the
/// pooled slice MSHRs. Reported as whole short runs; divide by
/// `stats.cycles` for a per-cycle figure.
fn bench_cycle_loop(c: &mut Criterion) {
    let mut cfg = MachineConfig::experiment_baseline();
    cfg.coherence = mcgpu_types::CoherenceKind::Hardware;
    let p = profiles::by_name("RN").expect("profile");
    let params = TraceParams {
        total_accesses: 20_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &p, &params);
    let mut group = c.benchmark_group("cycle_loop");
    group.sample_size(10);
    group.bench_function("rn_20k_smside_hwcoh", |b| {
        b.iter(|| {
            SimBuilder::new(cfg.clone())
                .organization(LlcOrgKind::SmSide)
                .build()
                .expect("valid machine configuration")
                .run(black_box(&wl))
                .unwrap()
        })
    });
    group.finish();
}

/// Per-launch cost of loading a kernel's streams into every cluster. With
/// `Arc`-shared traces this is 32 reference-count bumps, not 32 deep
/// copies of the access data.
fn bench_kernel_launch(c: &mut Criterion) {
    use mcgpu_sim::cluster::Cluster;
    use mcgpu_types::ClusterId;

    let cfg = MachineConfig::experiment_baseline();
    let p = profiles::by_name("SN").expect("profile");
    let params = TraceParams {
        total_accesses: 100_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &p, &params);
    let kernel = &wl.kernels[0];
    let mut clusters: Vec<Cluster> = (0..cfg.chips * cfg.clusters_per_chip)
        .map(|i| {
            Cluster::new(
                &cfg,
                ClusterId::new(
                    ChipId((i / cfg.clusters_per_chip) as u8),
                    i % cfg.clusters_per_chip,
                ),
            )
        })
        .collect();
    c.bench_function("kernel_launch_32_clusters", |b| {
        b.iter(|| {
            for (i, cl) in clusters.iter_mut().enumerate() {
                cl.load_kernel(kernel.per_cluster[i].clone(), 0);
            }
        })
    });
}

/// The two-tier engine on a sparse phase: one cell timed with the
/// stepping loop, the skipping loop, and the analytic fast mode. Long
/// compute gaps leave the memory system idle for thousands of cycles, so
/// skip-on should land an order of magnitude under skip-off while
/// producing byte-identical statistics (proven by `tests/two_tier_diff.rs`;
/// this group only tracks the speed of it).
fn bench_two_tier(c: &mut Criterion) {
    let cfg = MachineConfig::experiment_baseline();
    let mut p = profiles::by_name("SN").expect("profile");
    for k in &mut p.kernels {
        k.compute_gap = 50_000;
    }
    let params = TraceParams {
        total_accesses: 1_000,
        ..TraceParams::quick()
    };
    let wl = generate(&cfg, &p, &params);
    let mut group = c.benchmark_group("two_tier_sparse");
    group.sample_size(10);
    for (name, skip) in [("sn_1k_skip_off", false), ("sn_1k_skip_on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                SimBuilder::new(cfg.clone())
                    .organization(LlcOrgKind::Sac)
                    .skip_idle(skip)
                    .build()
                    .expect("valid machine configuration")
                    .run(black_box(&wl))
                    .unwrap()
            })
        });
    }
    group.bench_function("sn_1k_fast_mode", |b| {
        b.iter(|| sac_bench::fastmode::run_fast(black_box(&cfg), &wl, LlcOrgKind::Sac))
    });
    group.finish();
}

/// Fan-out overhead of the sweep runner itself (pool dispatch + in-order
/// collection), measured on jobs that do no work.
fn bench_sweep_overhead(c: &mut Criterion) {
    c.bench_function("sweep_map_64_trivial_jobs", |b| {
        b.iter(|| sac_bench::sweep::map(black_box((0u64..64).collect()), |i| i.wrapping_mul(3)))
    });
}

fn bench_tracegen(c: &mut Criterion) {
    let cfg = MachineConfig::experiment_baseline();
    let p = profiles::by_name("CFD").expect("profile");
    let params = TraceParams {
        total_accesses: 50_000,
        ..TraceParams::quick()
    };
    let mut group = c.benchmark_group("tracegen");
    group.sample_size(20);
    group.bench_function("cfd_50k", |b| {
        b.iter(|| generate(black_box(&cfg), &p, &params))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_interleave,
    bench_eab,
    bench_crd,
    bench_simulator,
    bench_cycle_loop,
    bench_kernel_launch,
    bench_two_tier,
    bench_sweep_overhead,
    bench_tracegen
);
criterion_main!(benches);
