//! Ablation: the profiling window length (§3.2; the paper uses 2K cycles at
//! full scale and found longer/periodic profiling unnecessary). On the
//! scaled machine the transient covers more of the window, so the default
//! is stretched (see `SacConfig::for_machine`).

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, Workload};
use mcgpu_types::LlcOrgKind;
use sac::SacConfig;
use sac_bench::sweep;
use std::sync::Arc;

const SUBSET: [&str; 4] = ["SN", "RN", "SRAD", "LUD"];
const WINDOWS: [u64; 5] = [1_000, 2_000, 4_000, 8_000, 16_000];

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();

    // Fan trace generation out per benchmark, then every run — the
    // memory-side baseline and each window variant — out independently.
    let workloads: Vec<Arc<Workload>> = sweep::map(SUBSET.to_vec(), |name| {
        let p = profiles::by_name(name).expect("profile");
        Arc::new(generate(&cfg, &p, &params))
    });
    let jobs: Vec<(usize, Option<u64>)> = (0..SUBSET.len())
        .flat_map(|b| std::iter::once((b, None)).chain(WINDOWS.iter().map(move |&w| (b, Some(w)))))
        .collect();
    // Each (benchmark, window) cell runs isolated with bounded retries: a
    // failing variant is quarantined and reported without discarding the
    // rest of the ablation grid.
    let outcomes = sweep::map_isolated(jobs.clone(), |&(b, window), attempt| {
        let mut scaled = cfg.clone();
        scaled.watchdog_cycles = sweep::escalate_budget(scaled.watchdog_cycles, attempt);
        let mut builder = SimBuilder::new(scaled);
        builder = match window {
            None => builder.organization(LlcOrgKind::MemorySide),
            Some(profile_window) => builder.organization(LlcOrgKind::Sac).sac_config(SacConfig {
                profile_window,
                ..SacConfig::for_machine(&cfg)
            }),
        };
        Ok(builder.build()?.run(&workloads[b])?)
    });
    let stats = sac_bench::exit_on_cell_failures(outcomes, |i| {
        let (b, window) = jobs[i];
        format!("{}/window={:?}", SUBSET[b], window)
    });

    let per_bench = WINDOWS.len() + 1;
    println!(
        "{:6} {:>8} | {:>8} {:>10} | modes",
        "bench", "window", "speedup", "ovh cycles"
    );
    for (b, name) in SUBSET.iter().enumerate() {
        let mem = &stats[b * per_bench];
        for (wi, &window) in WINDOWS.iter().enumerate() {
            let s = &stats[b * per_bench + 1 + wi];
            let modes: String = s
                .sac_history
                .iter()
                .map(|k| {
                    if k.mode == sac::LlcMode::SmSide {
                        'S'
                    } else {
                        'M'
                    }
                })
                .collect();
            println!(
                "{:6} {:>8} | {:>8.2} {:>10} | [{}]",
                name,
                window,
                s.speedup_over(mem),
                s.overhead_cycles,
                modes
            );
        }
        println!();
    }
}
