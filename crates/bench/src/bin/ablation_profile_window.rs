//! Ablation: the profiling window length (§3.2; the paper uses 2K cycles at
//! full scale and found longer/periodic profiling unnecessary). On the
//! scaled machine the transient covers more of the window, so the default
//! is stretched (see `SacConfig::for_machine`).

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles};
use mcgpu_types::LlcOrgKind;
use sac::SacConfig;

const SUBSET: [&str; 4] = ["SN", "RN", "SRAD", "LUD"];

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    println!(
        "{:6} {:>8} | {:>8} {:>10} | modes",
        "bench", "window", "speedup", "ovh cycles"
    );
    for name in SUBSET {
        let p = profiles::by_name(name).expect("profile");
        let wl = generate(&cfg, &p, &params);
        let mem = SimBuilder::new(cfg.clone())
            .organization(LlcOrgKind::MemorySide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        for window in [1_000u64, 2_000, 4_000, 8_000, 16_000] {
            let s = SimBuilder::new(cfg.clone())
                .organization(LlcOrgKind::Sac)
                .sac_config(SacConfig {
                    profile_window: window,
                    ..SacConfig::for_machine(&cfg)
                })
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            let modes: String = s
                .sac_history
                .iter()
                .map(|k| {
                    if k.mode == sac::LlcMode::SmSide {
                        'S'
                    } else {
                        'M'
                    }
                })
                .collect();
            println!(
                "{:6} {:>8} | {:>8.2} {:>10} | [{}]",
                name,
                window,
                s.speedup_over(&mem),
                s.overhead_cycles,
                modes
            );
        }
        println!();
    }
}
