//! Ablation: the EAB decision threshold θ (the paper fixes θ = 5% and omits
//! the sensitivity analysis for space). Sweeps θ and reports SAC's speedup
//! and decisions on a mixed subset.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles};
use mcgpu_types::LlcOrgKind;
use sac::SacConfig;

const SUBSET: [&str; 4] = ["SN", "CFD", "SRAD", "GEMM"];

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    let base_sac = SacConfig::for_machine(&cfg);
    println!("{:6} {:>6} | {:>8} | modes", "bench", "theta", "speedup");
    for name in SUBSET {
        let p = profiles::by_name(name).expect("profile");
        let wl = generate(&cfg, &p, &params);
        let mem = SimBuilder::new(cfg.clone())
            .organization(LlcOrgKind::MemorySide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        for theta in [0.0, 0.05, 0.2, 0.5, 2.0] {
            let s = SimBuilder::new(cfg.clone())
                .organization(LlcOrgKind::Sac)
                .sac_config(SacConfig { theta, ..base_sac })
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            let modes: String = s
                .sac_history
                .iter()
                .map(|k| {
                    if k.mode == sac::LlcMode::SmSide {
                        'S'
                    } else {
                        'M'
                    }
                })
                .collect();
            println!(
                "{:6} {:>6.2} | {:>8.2} | [{}]",
                name,
                theta,
                s.speedup_over(&mem),
                modes
            );
        }
        println!();
    }
    println!("(a huge theta forces memory-side everywhere; theta=0 removes the");
    println!(" coherence-cost guard band. The paper's 5% is a balanced default.)");
}
