//! Ablation: the EAB decision threshold θ (the paper fixes θ = 5% and omits
//! the sensitivity analysis for space). Sweeps θ and reports SAC's speedup
//! and decisions on a mixed subset.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, Workload};
use mcgpu_types::LlcOrgKind;
use sac::SacConfig;
use sac_bench::sweep;
use std::sync::Arc;

const SUBSET: [&str; 4] = ["SN", "CFD", "SRAD", "GEMM"];
const THETAS: [f64; 5] = [0.0, 0.05, 0.2, 0.5, 2.0];

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    let base_sac = SacConfig::for_machine(&cfg);

    // Fan trace generation out per benchmark, then every run — the
    // memory-side baseline and each θ variant — out independently.
    let workloads: Vec<Arc<Workload>> = sweep::map(SUBSET.to_vec(), |name| {
        let p = profiles::by_name(name).expect("profile");
        Arc::new(generate(&cfg, &p, &params))
    });
    let jobs: Vec<(usize, Option<f64>)> = (0..SUBSET.len())
        .flat_map(|b| std::iter::once((b, None)).chain(THETAS.iter().map(move |&t| (b, Some(t)))))
        .collect();
    // Each (benchmark, theta) cell runs isolated with bounded retries: a
    // failing variant is quarantined and reported without discarding the
    // rest of the ablation grid.
    let outcomes = sweep::map_isolated(jobs.clone(), |&(b, theta), attempt| {
        let mut scaled = cfg.clone();
        scaled.watchdog_cycles = sweep::escalate_budget(scaled.watchdog_cycles, attempt);
        let mut builder = SimBuilder::new(scaled);
        builder = match theta {
            None => builder.organization(LlcOrgKind::MemorySide),
            Some(theta) => builder
                .organization(LlcOrgKind::Sac)
                .sac_config(SacConfig { theta, ..base_sac }),
        };
        Ok(builder.build()?.run(&workloads[b])?)
    });
    let stats = sac_bench::exit_on_cell_failures(outcomes, |i| {
        let (b, theta) = jobs[i];
        format!("{}/theta={:?}", SUBSET[b], theta)
    });

    let per_bench = THETAS.len() + 1;
    println!("{:6} {:>6} | {:>8} | modes", "bench", "theta", "speedup");
    for (b, name) in SUBSET.iter().enumerate() {
        let mem = &stats[b * per_bench];
        for (ti, &theta) in THETAS.iter().enumerate() {
            let s = &stats[b * per_bench + 1 + ti];
            let modes: String = s
                .sac_history
                .iter()
                .map(|k| {
                    if k.mode == sac::LlcMode::SmSide {
                        'S'
                    } else {
                        'M'
                    }
                })
                .collect();
            println!(
                "{:6} {:>6.2} | {:>8.2} | [{}]",
                name,
                theta,
                s.speedup_over(mem),
                modes
            );
        }
        println!();
    }
    println!("(a huge theta forces memory-side everywhere; theta=0 removes the");
    println!(" coherence-cost guard band. The paper's 5% is a balanced default.)");
}
