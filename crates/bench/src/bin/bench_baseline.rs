//! Perf-baseline emitter: times the same primitives as the criterion
//! micro-benchmarks (`benches/micro.rs`) with plain `Instant` loops and
//! writes a canonical `mcgpu-bench-v1` document, so the repo carries a
//! `BENCH_sac.json` trajectory that future optimization PRs can compare
//! against with numbers instead of adjectives.
//!
//! The criterion benches remain the precision instrument for local work
//! (`cargo bench`); this binary is the cheap CI-friendly sampler. Each
//! primitive is calibrated with a short probe run, then timed for enough
//! iterations to cover the target interval.
//!
//! Flags:
//! - `--out PATH` — where to write the JSON document (default
//!   `BENCH_sac.json`).
//! - `--target-ms N` — per-bench measurement interval (default 200).
//! - `--check PATH` — after sampling, compare each sample against the
//!   `mcgpu-bench-v1` document at PATH and exit 1 if any sample both
//!   sides know regressed by more than `--tolerance` (default 0.20).
//!   New samples are reported but never gate.

use mcgpu_cache::{CacheConfig, DataHome, SetAssocCache};
use mcgpu_mem::interleave;
use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::json::CanonicalWriter;
use mcgpu_types::{ChipId, LineAddr, LlcOrgKind, MachineConfig};
use sac::eab::{ArchBandwidth, EabInputs, EabModel};
use sac::Crd;
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Sample {
    name: &'static str,
    iters: u64,
    total_ns: u64,
}

impl Sample {
    fn ns_per_iter(&self) -> f64 {
        self.total_ns as f64 / self.iters as f64
    }
}

/// Time `f` for roughly `target` of wall clock: probe with doubling
/// iteration counts until the loop is measurable, extrapolate the count
/// that covers `target`, then take the best of three measured passes.
/// Scheduler noise only ever adds time, so the minimum is the stable
/// estimator — it keeps the `--check` regression gate from tripping on
/// a loaded runner.
fn measure(name: &'static str, target: Duration, mut f: impl FnMut()) -> Sample {
    let mut probe_iters = 1u64;
    let probe = loop {
        let t = Instant::now();
        for _ in 0..probe_iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= Duration::from_millis(5) || elapsed >= target {
            break elapsed;
        }
        probe_iters *= 2;
    };
    let per_iter = probe.as_nanos().max(1) as f64 / probe_iters as f64;
    let iters = ((target.as_nanos() as f64 / per_iter) as u64).clamp(1, 1 << 32);
    let total_ns = (0..3)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
        })
        .min()
        .expect("three passes");
    let s = Sample {
        name,
        iters,
        total_ns,
    };
    eprintln!(
        "  {:32} {:>14.1} ns/iter  ({} iters)",
        s.name,
        s.ns_per_iter(),
        s.iters
    );
    s
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sac.json".to_string());
    let target = Duration::from_millis(
        arg_value("--target-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    );
    eprintln!(
        "perf baseline (target {} ms per bench):",
        target.as_millis()
    );

    let mut samples = Vec::new();

    // llc_slice_lookup_fill — the hot path of every simulated access.
    {
        let mut cache = SetAssocCache::new(CacheConfig::llc_slice(256 << 10, 16, 128));
        let mut i = 0u64;
        samples.push(measure("llc_slice_lookup_fill", target, || {
            let line = LineAddr(i % 40_000);
            i = i.wrapping_add(97);
            if cache.lookup(black_box(line), None, false) != mcgpu_cache::LookupOutcome::Hit {
                cache.fill(line, None, DataHome::Local, false);
            }
        }));
    }

    // pae_slice_index — the page-address-entropy interleaving hash.
    {
        let mut i = 0u64;
        samples.push(measure("pae_slice_index", target, || {
            i = i.wrapping_add(4097);
            black_box(interleave::slice_index(LineAddr(i), 16));
        }));
    }

    // eab_decide — SAC's per-kernel analytical organization choice.
    {
        let model = EabModel::new(ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        });
        let inputs = EabInputs {
            r_local: 0.6,
            llc_hit_memory_side: 0.55,
            llc_hit_sm_side: 0.4,
            lsu_memory_side: 0.8,
            lsu_sm_side: 0.9,
        };
        samples.push(measure("eab_decide", target, || {
            black_box(model.decide(black_box(&inputs), 0.05));
        }));
    }

    // crd_observe — the cacheline reuse detector's per-access update.
    {
        let mut crd = Crd::paper_default(128);
        let mut i = 0u64;
        samples.push(measure("crd_observe", target, || {
            i = i.wrapping_add(31);
            crd.observe(LineAddr(i % 4096), None, ChipId((i % 4) as u8));
        }));
    }

    // End-to-end 20k-access SN simulations under two organizations.
    {
        let cfg = MachineConfig::experiment_baseline();
        let p = profiles::by_name("SN").expect("profile");
        let params = TraceParams {
            total_accesses: 20_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &p, &params);
        for (name, org) in [
            ("end_to_end_sn_20k_memory_side", LlcOrgKind::MemorySide),
            ("end_to_end_sn_20k_sac", LlcOrgKind::Sac),
        ] {
            let cfg = cfg.clone();
            let wl = &wl;
            samples.push(measure(name, target, move || {
                SimBuilder::new(cfg.clone())
                    .organization(org)
                    .build()
                    .expect("valid machine configuration")
                    .run(black_box(wl))
                    .unwrap();
            }));
        }
    }

    // Tick loop under hardware coherence (stresses the sharer directory).
    {
        let mut cfg = MachineConfig::experiment_baseline();
        cfg.coherence = mcgpu_types::CoherenceKind::Hardware;
        let p = profiles::by_name("RN").expect("profile");
        let params = TraceParams {
            total_accesses: 20_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &p, &params);
        samples.push(measure("cycle_loop_rn_20k_smside_hwcoh", target, || {
            SimBuilder::new(cfg.clone())
                .organization(LlcOrgKind::SmSide)
                .build()
                .expect("valid machine configuration")
                .run(black_box(&wl))
                .unwrap();
        }));
    }

    // Kernel launch: loading one kernel's streams into all 32 clusters.
    {
        use mcgpu_sim::cluster::Cluster;
        use mcgpu_types::ClusterId;

        let cfg = MachineConfig::experiment_baseline();
        let p = profiles::by_name("SN").expect("profile");
        let params = TraceParams {
            total_accesses: 100_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &p, &params);
        let kernel = &wl.kernels[0];
        let mut clusters: Vec<Cluster> = (0..cfg.chips * cfg.clusters_per_chip)
            .map(|i| {
                Cluster::new(
                    &cfg,
                    ClusterId::new(
                        ChipId((i / cfg.clusters_per_chip) as u8),
                        i % cfg.clusters_per_chip,
                    ),
                )
            })
            .collect();
        samples.push(measure("kernel_launch_32_clusters", target, || {
            for (i, cl) in clusters.iter_mut().enumerate() {
                cl.load_kernel(kernel.per_cluster[i].clone(), 0);
            }
        }));
    }

    // Two-tier engine on a sparse phase: the same cell under the stepping
    // loop, the skipping loop, and the analytic fast mode. Sparse = long
    // compute gaps between memory instructions (no Table 4 profile has a
    // gap above 1 cycle, so this is a synthetic variant) — exactly the
    // phases idle-cycle skipping exists for, so the trajectory records the
    // skip-on / skip-off ratio (expected well above 10x) and the fast-mode
    // floor.
    {
        let cfg = MachineConfig::experiment_baseline();
        let mut p = profiles::by_name("SN").expect("profile");
        for k in &mut p.kernels {
            k.compute_gap = 50_000;
        }
        let params = TraceParams {
            total_accesses: 1_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &p, &params);
        for (name, skip) in [
            ("sparse_sn_1k_skip_off", false),
            ("sparse_sn_1k_skip_on", true),
        ] {
            let cfg = cfg.clone();
            let wl = &wl;
            samples.push(measure(name, target, move || {
                SimBuilder::new(cfg.clone())
                    .organization(LlcOrgKind::Sac)
                    .skip_idle(skip)
                    .build()
                    .expect("valid machine configuration")
                    .run(black_box(wl))
                    .unwrap();
            }));
        }
        samples.push(measure("sparse_sn_1k_fast_mode", target, || {
            black_box(sac_bench::fastmode::run_fast(
                black_box(&cfg),
                &wl,
                LlcOrgKind::Sac,
            ));
        }));
    }

    // Sweep-runner dispatch overhead on trivial jobs.
    samples.push(measure("sweep_map_64_trivial_jobs", target, || {
        sac_bench::sweep::map(black_box((0u64..64).collect()), |i| i.wrapping_mul(3));
    }));

    // Trace generation for a mixed-sharing workload.
    {
        let cfg = MachineConfig::experiment_baseline();
        let p = profiles::by_name("CFD").expect("profile");
        let params = TraceParams {
            total_accesses: 50_000,
            ..TraceParams::quick()
        };
        samples.push(measure("tracegen_cfd_50k", target, || {
            generate(black_box(&cfg), &p, &params);
        }));
    }

    let mut w = CanonicalWriter::new();
    w.open();
    w.str_field("schema", "mcgpu-bench-v1");
    w.u64_field("target_ms", target.as_millis() as u64);
    w.u64_field("jobs", sac_bench::sweep::jobs() as u64);
    w.array_field("benches", samples.len(), |w, i| {
        let s = &samples[i];
        w.open();
        w.str_field("name", s.name);
        w.u64_field("iters", s.iters);
        w.u64_field("total_ns", s.total_ns);
        w.f64_field("ns_per_iter", s.ns_per_iter());
        w.close();
    });
    w.close();
    std::fs::write(&out, w.finish()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("  wrote {out}");

    if let Some(baseline) = arg_value("--check") {
        let tolerance = arg_value("--tolerance")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.20);
        std::process::exit(check_against(&samples, &baseline, tolerance));
    }
}

/// Compare fresh samples against a committed `mcgpu-bench-v1` baseline:
/// any sample present in both that got more than `tolerance` slower is a
/// regression. Returns the process exit code (1 on regression). Samples
/// only one side knows are reported but never gate — adding a bench must
/// not fail the job that adds it.
fn check_against(samples: &[Sample], baseline_path: &str, tolerance: f64) -> i32 {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(1);
    });
    let doc = mcgpu_types::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {baseline_path}: {e}");
        std::process::exit(1);
    });
    let Some(benches) = doc.get("benches").and_then(|b| b.as_array()) else {
        eprintln!("baseline {baseline_path} has no benches array");
        std::process::exit(1);
    };
    let mut base = std::collections::BTreeMap::new();
    for b in benches {
        if let (Some(name), Some(ns)) = (
            b.get("name").and_then(|v| v.as_str()),
            b.get("ns_per_iter").and_then(|v| v.as_f64()),
        ) {
            base.insert(name.to_string(), ns);
        }
    }
    let mut regressions = Vec::new();
    eprintln!(
        "checking against {baseline_path} (tolerance {:.0}%):",
        tolerance * 100.0
    );
    for s in samples {
        let Some(&was) = base.get(s.name) else {
            eprintln!("  {:32} new sample (no baseline; not gated)", s.name);
            continue;
        };
        let now = s.ns_per_iter();
        let ratio = now / was;
        let verdict = if ratio > 1.0 + tolerance {
            regressions.push(format!(
                "{} {:.1} -> {:.1} ns ({:+.0}%)",
                s.name,
                was,
                now,
                (ratio - 1.0) * 100.0
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  {:32} {:>10.1} -> {:>10.1} ns  ({:+6.1}%)  {verdict}",
            s.name,
            was,
            now,
            (ratio - 1.0) * 100.0
        );
    }
    if regressions.is_empty() {
        eprintln!("  no sample regressed more than {:.0}%", tolerance * 100.0);
        0
    } else {
        eprintln!(
            "perf regression (> {:.0}%):\n  {}",
            tolerance * 100.0,
            regressions.join("\n  ")
        );
        1
    }
}
