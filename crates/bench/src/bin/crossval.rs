//! The two-tier cross-validation gate: runs every golden case under both
//! the cycle engine and the analytic fast mode, prints the per-case error
//! table, scores the errors against the pinned expectation bands, and
//! exits nonzero iff a `shape` band is violated (or cannot be evaluated).
//!
//! Flags:
//! - `--expectations PATH` — expectation set to score (default
//!   `expectations/crossval.json`).
//! - `--report PATH` — also write the canonical `mcgpu-figcheck-v1`
//!   report (byte-deterministic; the engines are).
//!
//! The golden suite is tiny by design (the same eight cases CI snapshots
//! byte-for-byte), so this runs at every-PR cost. Recalibrating after a
//! deliberate estimator change means rerunning this binary, reading the
//! table, and re-pinning `expectations/crossval.json` with margin — see
//! `EXPERIMENTS.md`.

use mcgpu_types::ExpectationSet;
use sac_bench::{crossval, figcheck};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let path =
        arg_value("--expectations").unwrap_or_else(|| "expectations/crossval.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let set = ExpectationSet::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let rows = crossval::crossval_rows();
    print!("{}", crossval::render_table(&rows));
    println!();

    let metrics = crossval::crossval_metrics(&rows);
    let report = figcheck::evaluate(&set, &metrics, "golden");
    print!("{}", figcheck::scorecard(&report));
    if let Some(out) = arg_value("--report") {
        std::fs::write(&out, report.to_canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("  wrote {out}");
    }
    if report.gates() {
        std::process::exit(2);
    }
}
