//! Regenerates Fig. 1: performance, LLC miss rate and effective LLC
//! bandwidth per LLC organization, grouped into SM-side-preferred (SP) and
//! memory-side-preferred (MP) benchmarks.
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use mcgpu_types::LlcOrgKind;
use sac_bench::figdata::{emit, Fig01Data};
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    emit(&Fig01Data::compute(&rows));
}
