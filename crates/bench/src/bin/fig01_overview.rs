//! Regenerates Fig. 1: performance, LLC miss rate and effective LLC
//! bandwidth per LLC organization, grouped into SM-side-preferred (SP) and
//! memory-side-preferred (MP) benchmarks.

use mcgpu_trace::profiles::Preference;
use mcgpu_types::LlcOrgKind;
use sac_bench::{
    exit_on_quarantine, experiment_config, group_speedup, harmonic_mean, run_suite, trace_params,
    BenchRows, SweepOptions,
};

fn group_metric(
    rows: &[BenchRows],
    org: LlcOrgKind,
    pref: Preference,
    f: impl Fn(&mcgpu_sim::RunStats) -> f64,
) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| r.profile.preference == pref)
        .map(|r| f(r.stats(org)))
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));

    println!("(a) performance normalized to memory-side (harmonic mean):");
    println!("{:14} {:>6} {:>6} {:>6}", "organization", "SP", "MP", "all");
    for org in LlcOrgKind::ALL {
        println!(
            "{:14} {:>6.2} {:>6.2} {:>6.2}",
            org.label(),
            group_speedup(&rows, org, Some(Preference::SmSide)),
            group_speedup(&rows, org, Some(Preference::MemorySide)),
            group_speedup(&rows, org, None)
        );
    }

    println!("\n(b) LLC miss rate (arithmetic mean):");
    println!("{:14} {:>6} {:>6}", "organization", "SP", "MP");
    for org in LlcOrgKind::ALL {
        println!(
            "{:14} {:>6.2} {:>6.2}",
            org.label(),
            group_metric(&rows, org, Preference::SmSide, |s| s.llc_miss_rate()),
            group_metric(&rows, org, Preference::MemorySide, |s| s.llc_miss_rate())
        );
    }

    println!("\n(c) effective LLC bandwidth, responses/cycle normalized to memory-side:");
    println!("{:14} {:>6} {:>6}", "organization", "SP", "MP");
    for org in LlcOrgKind::ALL {
        let norm = |pref| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.profile.preference == pref)
                .map(|r| {
                    r.stats(org).effective_llc_bandwidth()
                        / r.stats(LlcOrgKind::MemorySide).effective_llc_bandwidth()
                })
                .collect();
            harmonic_mean(&v)
        };
        println!(
            "{:14} {:>6.2} {:>6.2}",
            org.label(),
            norm(Preference::SmSide),
            norm(Preference::MemorySide)
        );
    }
}
