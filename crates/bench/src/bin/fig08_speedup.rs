//! Regenerates Fig. 8: per-benchmark speedup of each LLC organization
//! relative to the memory-side baseline, with SP/MP/overall harmonic means.
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use mcgpu_types::LlcOrgKind;
use sac_bench::figdata::{emit, Fig08Data};
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    emit(&Fig08Data::compute(&rows));
}
