//! Regenerates Fig. 8: per-benchmark speedup of each LLC organization
//! relative to the memory-side baseline, with SP/MP/overall harmonic means.

use mcgpu_trace::profiles::Preference;
use mcgpu_types::LlcOrgKind;
use sac_bench::{
    exit_on_quarantine, experiment_config, group_speedup, run_suite, trace_params, SweepOptions,
};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));

    println!(
        "{:6} {:>4} | {:>8} {:>8} {:>8} {:>8} {:>8} | SAC modes",
        "bench", "pref", "mem-side", "SM-side", "static", "dynamic", "SAC"
    );
    for r in &rows {
        let modes: String = r
            .stats(LlcOrgKind::Sac)
            .sac_history
            .iter()
            .map(|k| {
                if k.mode == sac::LlcMode::SmSide {
                    'S'
                } else {
                    'M'
                }
            })
            .collect();
        println!(
            "{:6} {:>4} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | [{}]",
            r.profile.name,
            r.profile.preference.label(),
            r.speedup(LlcOrgKind::MemorySide),
            r.speedup(LlcOrgKind::SmSide),
            r.speedup(LlcOrgKind::StaticHalf),
            r.speedup(LlcOrgKind::Dynamic),
            r.speedup(LlcOrgKind::Sac),
            modes
        );
    }
    for (label, pref) in [
        ("SP", Some(Preference::SmSide)),
        ("MP", Some(Preference::MemorySide)),
        ("all", None),
    ] {
        print!("hmean {label:>4} |");
        for org in LlcOrgKind::ALL {
            print!(" {:>8.2}", group_speedup(&rows, org, pref));
        }
        println!();
    }
    let sac_all = group_speedup(&rows, LlcOrgKind::Sac, None);
    println!(
        "\nSAC vs memory-side: {:+.0}%   (paper: +76%)",
        (sac_all - 1.0) * 100.0
    );
    for (org, paper) in [
        (LlcOrgKind::SmSide, "+12%"),
        (LlcOrgKind::StaticHalf, "+31%"),
        (LlcOrgKind::Dynamic, "+18%"),
    ] {
        let other = group_speedup(&rows, org, None);
        println!(
            "SAC vs {:11}: {:+.0}%   (paper: {paper})",
            org.label(),
            (sac_all / other - 1.0) * 100.0
        );
    }
}
