//! Regenerates Fig. 9: the fraction of resident LLC lines holding local vs
//! remote data under each organization.

use mcgpu_types::LlcOrgKind;
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    println!("fraction of LLC caching LOCAL data (remainder = remote data):");
    print!("{:6} {:>4}", "bench", "pref");
    for org in LlcOrgKind::ALL {
        print!(" {:>11}", org.label());
    }
    println!();
    for r in &rows {
        print!("{:6} {:>4}", r.profile.name, r.profile.preference.label());
        for org in LlcOrgKind::ALL {
            print!(" {:>11.2}", r.stats(org).llc_local_fraction);
        }
        println!();
    }
    println!("\n(memory-side is 1.00 by construction; the static LLC pins a 50/50 way");
    println!(" split; SAC caches only local data when it selects memory-side.)");
}
