//! Regenerates Fig. 10: effective LLC bandwidth (read responses per cycle),
//! broken down by where the data came from, normalized to memory-side.

use mcgpu_types::{LlcOrgKind, ResponseOrigin};
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    println!("per-benchmark responses/cycle by origin (normalized to the memory-side total):");
    for r in &rows {
        println!("{} ({}):", r.profile.name, r.profile.preference.label());
        let base = r.stats(LlcOrgKind::MemorySide).effective_llc_bandwidth();
        println!(
            "  {:12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "org", "local LLC", "remote LLC", "local mem", "remote mem", "total"
        );
        for org in LlcOrgKind::ALL {
            let s = r.stats(org);
            print!("  {:12}", org.label());
            for o in ResponseOrigin::ALL {
                print!(" {:>10.2}", s.response_rate(o) / base);
            }
            println!(" {:>8.2}", s.effective_llc_bandwidth() / base);
        }
    }
}
