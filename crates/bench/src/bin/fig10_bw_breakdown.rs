//! Regenerates Fig. 10: effective LLC bandwidth (read responses per cycle),
//! broken down by where the data came from, normalized to memory-side.
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use mcgpu_types::LlcOrgKind;
use sac_bench::figdata::{emit, Fig10Data};
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    emit(&Fig10Data::compute(&rows));
}
