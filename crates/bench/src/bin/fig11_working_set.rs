//! Regenerates Fig. 11: per-time-window working-set size under the SM-side
//! organization, broken into truly-shared / falsely-shared / non-shared
//! data, for windows from 1K to 100K cycles.

use mcgpu_trace::analysis;
use mcgpu_types::LlcOrgKind;
use sac_bench::{
    exit_on_quarantine, experiment_config, run_suite, sweep, trace_params, SweepOptions,
};

fn main() {
    let cfg = experiment_config();
    let params = trace_params();
    // The paper's x-axis is cycles; convert via the measured SM-side issue
    // rate (accesses/cycle) of each benchmark.
    let windows_cycles = [1_000usize, 10_000, 100_000];
    println!("mean per-window working set in paper-equivalent MB (SM-side organization);");
    println!("machine total LLC at paper scale = 16 MB\n");
    println!(
        "{:6} {:>4} | {:>9} | {:>8} {:>8} {:>8} | {:>8}",
        "bench", "pref", "window", "true", "false", "non", "total"
    );
    // The SM-side runs fan out over the sweep pool; the working-set
    // analysis then fans out per benchmark, reusing each run's workload
    // rather than regenerating the trace.
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &params,
        &[LlcOrgKind::SmSide],
        &SweepOptions::from_args(),
    ));
    let curves = sweep::map(rows.iter().collect(), |r| {
        let rate = r.stats(LlcOrgKind::SmSide).perf();
        let windows_accesses: Vec<usize> = windows_cycles
            .iter()
            .map(|&w| ((w as f64 * rate) as usize).max(100))
            .collect();
        analysis::working_set_curve(&cfg, &r.workload, &windows_accesses)
    });
    for (r, curve) in rows.iter().zip(curves) {
        let p = &r.profile;
        for (i, (_, ws)) in curve.iter().enumerate() {
            let ws = ws.to_paper_scale(&cfg);
            println!(
                "{:6} {:>4} | {:>7}cy | {:>8.1} {:>8.1} {:>8.1} | {:>8.1}",
                if i == 0 { p.name } else { "" },
                if i == 0 { p.preference.label() } else { "" },
                windows_cycles[i],
                ws.true_mb,
                ws.false_mb,
                ws.non_mb,
                ws.total_mb()
            );
        }
    }
}
