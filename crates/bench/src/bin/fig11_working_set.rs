//! Regenerates Fig. 11: per-time-window working-set size under the SM-side
//! organization, broken into truly-shared / falsely-shared / non-shared
//! data, for windows from 1K to 100K cycles.

use mcgpu_trace::{analysis, generate, profiles};
use mcgpu_types::LlcOrgKind;
use sac_bench::{experiment_config, run_benchmark, trace_params};

fn main() {
    let cfg = experiment_config();
    let params = trace_params();
    // The paper's x-axis is cycles; convert via the measured SM-side issue
    // rate (accesses/cycle) of each benchmark.
    let windows_cycles = [1_000usize, 10_000, 100_000];
    println!("mean per-window working set in paper-equivalent MB (SM-side organization);");
    println!("machine total LLC at paper scale = 16 MB\n");
    println!(
        "{:6} {:>4} | {:>9} | {:>8} {:>8} {:>8} | {:>8}",
        "bench", "pref", "window", "true", "false", "non", "total"
    );
    for p in profiles::all_profiles() {
        let rows = run_benchmark(&cfg, &p, &params, &[LlcOrgKind::SmSide]);
        let rate = rows.stats(LlcOrgKind::SmSide).perf();
        let wl = generate(&cfg, &p, &params);
        let windows_accesses: Vec<usize> = windows_cycles
            .iter()
            .map(|&w| ((w as f64 * rate) as usize).max(100))
            .collect();
        let curve = analysis::working_set_curve(&cfg, &wl, &windows_accesses);
        for (i, (_, ws)) in curve.iter().enumerate() {
            let ws = ws.to_paper_scale(&cfg);
            println!(
                "{:6} {:>4} | {:>7}cy | {:>8.1} {:>8.1} {:>8.1} | {:>8.1}",
                if i == 0 { p.name } else { "" },
                if i == 0 { p.preference.label() } else { "" },
                windows_cycles[i],
                ws.true_mb,
                ws.false_mb,
                ws.non_mb,
                ws.total_mb()
            );
        }
    }
}
