//! Regenerates Fig. 11: per-time-window working-set size under the SM-side
//! organization, broken into truly-shared / falsely-shared / non-shared
//! data, for windows from 1K to 100K cycles.
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use mcgpu_types::LlcOrgKind;
use sac_bench::figdata::{emit, Fig11Data};
use sac_bench::{exit_on_quarantine, experiment_config, run_suite, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    // The SM-side runs fan out over the sweep pool; the working-set
    // analysis then fans out per benchmark, reusing each run's workload
    // rather than regenerating the trace.
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &[LlcOrgKind::SmSide],
        &SweepOptions::from_args(),
    ));
    emit(&Fig11Data::compute(&cfg, &rows));
}
