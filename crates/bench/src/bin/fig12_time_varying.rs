//! Regenerates Fig. 12: BFS's time-varying behaviour — per-kernel
//! performance of SM-side and SAC relative to memory-side, showing that SAC
//! selects the memory-side organization for K1 and the SM-side organization
//! for K2 on a per-kernel basis.
//!
//! `--timeline` instead prints SAC's epoch timeline from one observed run —
//! throughput, ring traffic, LLC hit rate, routing mode, pause state and
//! CRD occupancy per 10k-cycle epoch — the raw material of the figure's
//! time-varying plot. `--obs-window N` changes the epoch width.
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document (not in `--timeline` mode).

use mcgpu_types::{LlcOrgKind, ObsConfig};
use sac_bench::figdata::{emit, Fig12Data};
use sac_bench::{
    exit_on_quarantine, experiment_config, run_benchmark, run_one_observed, trace_params,
    SweepOptions,
};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn print_timeline(cfg: &mcgpu_types::MachineConfig, p: &mcgpu_trace::BenchmarkProfile) {
    let mut obs = ObsConfig::metrics();
    if let Some(w) = arg_value("--obs-window").and_then(|v| v.parse().ok()) {
        obs = obs.with_epoch_window(w);
    }
    let wl = mcgpu_trace::generate(cfg, p, &trace_params());
    let (_, report) = run_one_observed(cfg, &wl, LlcOrgKind::Sac, obs);
    let r = report.expect("observability was enabled");
    println!(
        "BFS under SAC: epoch timeline ({} cycles per epoch)",
        r.epoch_window
    );
    println!(
        "{:>6} {:>10} {:>8} {:>9} {:>8} {:>12} {:>10} {:>8}",
        "epoch", "end cycle", "acc/cyc", "ring B/c", "LLC hit", "route", "pause", "CRD occ"
    );
    for s in &r.timeline {
        let cyc = s.cycles().max(1) as f64;
        println!(
            "{:>6} {:>10} {:>8.3} {:>9.1} {:>8.3} {:>12} {:>10} {:>8.3}",
            s.epoch,
            s.end_cycle,
            (s.reads + s.writes) as f64 / cyc,
            s.ring_bytes as f64 / cyc,
            s.llc_hit_rate(),
            s.route_mode,
            s.pause,
            s.crd_occupied as f64 / s.crd_capacity.max(1) as f64
        );
    }
    println!("\n(route flips memory-side → sm-side exactly where SAC decides per kernel;");
    println!(" the pause column shows the drain/flush reconfiguration windows.)");
}

fn main() {
    let cfg = experiment_config();
    let p = mcgpu_trace::profiles::by_name("BFS").expect("BFS profile");
    if std::env::args().any(|a| a == "--timeline") {
        print_timeline(&cfg, &p);
        return;
    }
    let rows = exit_on_quarantine(run_benchmark(
        &cfg,
        &p,
        &trace_params(),
        &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac],
        &SweepOptions::from_args(),
    ));
    emit(&Fig12Data::compute(&rows));
}
