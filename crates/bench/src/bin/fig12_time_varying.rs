//! Regenerates Fig. 12: BFS's time-varying behaviour — per-kernel
//! performance of SM-side and SAC relative to memory-side, showing that SAC
//! selects the memory-side organization for K1 and the SM-side organization
//! for K2 on a per-kernel basis.

use mcgpu_types::LlcOrgKind;
use sac_bench::{exit_on_quarantine, experiment_config, run_benchmark, trace_params, SweepOptions};

fn main() {
    let cfg = experiment_config();
    let p = mcgpu_trace::profiles::by_name("BFS").expect("BFS profile");
    let rows = exit_on_quarantine(run_benchmark(
        &cfg,
        &p,
        &trace_params(),
        &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac],
        &SweepOptions::from_args(),
    ));
    let mem = rows.stats(LlcOrgKind::MemorySide);
    let sm = rows.stats(LlcOrgKind::SmSide);
    let sac = rows.stats(LlcOrgKind::Sac);
    println!("BFS per-kernel performance relative to memory-side:");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "phase", "SM-side", "SAC", "SAC mode"
    );
    for i in 0..mem.kernels.len() {
        let phase = if i % 2 == 0 { "K1" } else { "K2" };
        let base = mem.kernels[i].perf();
        let mode = sac.kernels[i].sac_mode.map(|m| m.label()).unwrap_or("-");
        println!(
            "{:>7} {:>10} {:>10.2} {:>10.2} {:>10}",
            i,
            phase,
            sm.kernels[i].perf() / base,
            sac.kernels[i].perf() / base,
            mode
        );
    }
    println!(
        "\nwhole-application speedup vs memory-side: SM-side {:.2}x, SAC {:.2}x",
        rows.speedup(LlcOrgKind::SmSide),
        rows.speedup(LlcOrgKind::Sac)
    );
    println!("(the paper's point: K1 prefers memory-side, K2 prefers SM-side, and SAC");
    println!(" picks per kernel — beating the static choice of either organization.)");
}
