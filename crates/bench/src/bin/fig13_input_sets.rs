//! Regenerates Fig. 13: input-set sensitivity. For SP benchmarks the input
//! is scaled x8 ... /4; for MP benchmarks x4 ... /32. SAC should follow the
//! crossover: large inputs make replication thrash (memory-side wins),
//! small inputs make replication fit (SM-side wins).

use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::LlcOrgKind;
use sac_bench::{exit_on_cell_failures, sweep, try_run_one};
use std::sync::Arc;

const ORGS: [LlcOrgKind; 3] = [LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac];

fn main() {
    let cfg = sac_bench::experiment_config();
    let base = sac_bench::trace_params();
    // Representative subset (full 16 x 7 scales would run for hours).
    let sp = ["RN", "CFD"];
    let mp = ["SRAD", "GEMM"];
    let sp_scales: &[f64] = &[8.0, 2.0, 1.0, 0.5, 0.25];
    let mp_scales: &[f64] = &[4.0, 1.0, 0.25, 1.0 / 16.0, 1.0 / 32.0];

    // Flatten the (group, benchmark, scale) grid, fan trace generation out
    // over the sweep pool, then fan every (workload, organization) run out
    // independently — results come back in input order.
    let combos: Vec<(&str, f64)> = [(&sp[..], sp_scales), (&mp[..], mp_scales)]
        .iter()
        .flat_map(|(names, scales)| {
            names
                .iter()
                .flat_map(move |&n| scales.iter().map(move |&s| (n, s)))
        })
        .collect();
    let workloads: Vec<Arc<Workload>> = sweep::map(combos.clone(), |(name, scale)| {
        let p = profiles::by_name(name).expect("profile");
        let params = TraceParams {
            input_scale: scale,
            ..base
        };
        Arc::new(generate(&cfg, &p, &params))
    });
    let pairs: Vec<(usize, LlcOrgKind)> = (0..combos.len())
        .flat_map(|i| ORGS.iter().map(move |&org| (i, org)))
        .collect();
    // Isolated cells: one pathological (input-scale, organization) pair is
    // quarantined and reported instead of sinking the whole figure.
    let outcomes = sweep::map_isolated(pairs.clone(), |&(i, org), attempt| {
        let mut scaled = cfg.clone();
        scaled.watchdog_cycles = sweep::escalate_budget(scaled.watchdog_cycles, attempt);
        try_run_one(&scaled, &workloads[i], org)
    });
    let stats = exit_on_cell_failures(outcomes, |k| {
        let (i, org) = pairs[k];
        let (name, scale) = combos[i];
        format!("{name}@x{scale}/{}", org.label())
    });
    let row = |i: usize| &stats[i * ORGS.len()..(i + 1) * ORGS.len()];

    let mut idx = 0;
    for (names, _, label) in [
        (&sp[..], sp_scales, "SM-side preferred"),
        (&mp[..], mp_scales, "memory-side preferred"),
    ] {
        println!("== {label} benchmarks ==");
        println!(
            "{:6} {:>8} | {:>8} {:>8} | SAC modes",
            "bench", "input", "SM-side", "SAC"
        );
        for _ in names {
            loop {
                let (name, scale) = combos[idx];
                let [mem, sm, sac] = row(idx) else {
                    unreachable!("one stats row per combo")
                };
                let modes: String = sac
                    .sac_history
                    .iter()
                    .map(|k| {
                        if k.mode == sac::LlcMode::SmSide {
                            'S'
                        } else {
                            'M'
                        }
                    })
                    .collect();
                println!(
                    "{:6} {:>7}x | {:>8.2} {:>8.2} | [{}]",
                    name,
                    scale,
                    sm.speedup_over(mem),
                    sac.speedup_over(mem),
                    modes
                );
                idx += 1;
                if idx == combos.len() || combos[idx].0 != name {
                    break;
                }
            }
            println!();
        }
    }
}
