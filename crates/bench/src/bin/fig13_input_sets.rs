//! Regenerates Fig. 13: input-set sensitivity. For SP benchmarks the input
//! is scaled x8 ... /4; for MP benchmarks x4 ... /32. SAC should follow the
//! crossover: large inputs make replication thrash (memory-side wins),
//! small inputs make replication fit (SM-side wins).

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{LlcOrgKind, MachineConfig};

fn run(cfg: &MachineConfig, wl: &mcgpu_trace::Workload, org: LlcOrgKind) -> mcgpu_sim::RunStats {
    SimBuilder::new(cfg.clone())
        .organization(org)
        .build()
        .expect("valid machine configuration")
        .run(wl)
        .unwrap()
}

fn main() {
    let cfg = sac_bench::experiment_config();
    let base = sac_bench::trace_params();
    // Representative subset (full 16 x 7 scales would run for hours).
    let sp = ["RN", "CFD"];
    let mp = ["SRAD", "GEMM"];
    let sp_scales: &[f64] = &[8.0, 2.0, 1.0, 0.5, 0.25];
    let mp_scales: &[f64] = &[4.0, 1.0, 0.25, 1.0 / 16.0, 1.0 / 32.0];
    for (names, scales, label) in [
        (&sp[..], sp_scales, "SM-side preferred"),
        (&mp[..], mp_scales, "memory-side preferred"),
    ] {
        println!("== {label} benchmarks ==");
        println!(
            "{:6} {:>8} | {:>8} {:>8} | SAC modes",
            "bench", "input", "SM-side", "SAC"
        );
        for name in names {
            let p = profiles::by_name(name).expect("profile");
            for &scale in scales {
                let params = TraceParams {
                    input_scale: scale,
                    ..base
                };
                let wl = generate(&cfg, &p, &params);
                let mem = run(&cfg, &wl, LlcOrgKind::MemorySide);
                let sm = run(&cfg, &wl, LlcOrgKind::SmSide);
                let sac = run(&cfg, &wl, LlcOrgKind::Sac);
                let modes: String = sac
                    .sac_history
                    .iter()
                    .map(|k| {
                        if k.mode == sac::LlcMode::SmSide {
                            'S'
                        } else {
                            'M'
                        }
                    })
                    .collect();
                println!(
                    "{:6} {:>7}x | {:>8.2} {:>8.2} | [{}]",
                    name,
                    scale,
                    sm.speedup_over(&mem),
                    sac.speedup_over(&mem),
                    modes
                );
            }
            println!();
        }
    }
}
