//! Regenerates Fig. 13: input-set sensitivity. For SP benchmarks the input
//! is scaled x8 ... /4; for MP benchmarks x4 ... /32. SAC should follow the
//! crossover: large inputs make replication thrash (memory-side wins),
//! small inputs make replication fit (SM-side wins).
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use sac_bench::figdata::{emit, Fig13Data};

fn main() {
    let cfg = sac_bench::experiment_config();
    let base = sac_bench::trace_params();
    emit(&Fig13Data::collect(&cfg, &base));
}
