//! Regenerates Fig. 14: SAC sensitivity across the design space —
//! inter-chip bandwidth, LLC capacity, memory interface, coherence
//! protocol, GPU count, sectored caches and page size. Reports the
//! harmonic-mean speedup of SM-side and SAC over the memory-side baseline
//! on a representative benchmark subset (3 SP + 3 MP).
//!
//! `--json PATH` additionally writes the figure's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use sac_bench::figdata::{emit, Fig14Data};
use sac_bench::SweepOptions;

fn main() {
    let base = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    let opts = SweepOptions::from_args().sequential();
    emit(&Fig14Data::collect(&base, &params, &opts));
}
