//! Regenerates Fig. 14: SAC sensitivity across the design space —
//! inter-chip bandwidth, LLC capacity, memory interface, coherence
//! protocol, GPU count, sectored caches and page size. Reports the
//! harmonic-mean speedup of SM-side and SAC over the memory-side baseline
//! on a representative benchmark subset (3 SP + 3 MP).

use mcgpu_trace::{profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig, MemoryInterface};
use sac_bench::{exit_on_quarantine, harmonic_mean, run_profiles, SweepOptions};

const SUBSET: [&str; 6] = ["RN", "SN", "CFD", "SRAD", "LUD", "GEMM"];

fn sweep(label: &str, cfg: &MachineConfig, params: &TraceParams, opts: &SweepOptions) {
    // Every (benchmark x organization) run of this configuration fans out
    // over the shared sweep pool.
    let subset: Vec<_> = SUBSET
        .iter()
        .map(|n| profiles::by_name(n).expect("profile"))
        .collect();
    let rows = exit_on_quarantine(run_profiles(
        cfg,
        &subset,
        params,
        &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac],
        opts,
    ));
    let sm: Vec<f64> = rows.iter().map(|r| r.speedup(LlcOrgKind::SmSide)).collect();
    let sac: Vec<f64> = rows.iter().map(|r| r.speedup(LlcOrgKind::Sac)).collect();
    println!(
        "{:36} | SM-side {:>5.2} | SAC {:>5.2}",
        label,
        harmonic_mean(&sm),
        harmonic_mean(&sac)
    );
}

fn main() {
    let base = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    let opts = SweepOptions::from_args().sequential();
    println!("harmonic-mean speedup vs memory-side on {:?}:\n", SUBSET);

    println!("-- inter-chip bandwidth (default marked *) --");
    for (label, factor) in [
        ("PCIe-class (0.5x)", 0.5),
        ("NVLink2-class (1x) *", 1.0),
        ("NVLink3-class (2x)", 2.0),
        ("MCM-class (4x)", 4.0),
        ("MCM-class (8x)", 8.0),
    ] {
        let mut c = base.clone();
        c.interchip_pair_gbs *= factor;
        sweep(label, &c, &params, &opts);
    }

    println!("\n-- LLC capacity --");
    for (label, factor) in [("0.5x LLC", 0.5), ("1x LLC *", 1.0), ("2x LLC", 2.0)] {
        let mut c = base.clone();
        c.llc_bytes_per_chip = (c.llc_bytes_per_chip as f64 * factor) as u64;
        sweep(label, &c, &params, &opts);
    }

    println!("\n-- memory interface --");
    for iface in [
        MemoryInterface::Gddr5,
        MemoryInterface::Gddr6,
        MemoryInterface::Hbm2,
    ] {
        let mut c = base.clone().with_memory_interface(iface);
        // Rescale channel bandwidth to the scaled machine.
        c.dram_channel_gbs /= base.scale.topology as f64;
        let star = if iface == MemoryInterface::Gddr6 {
            " *"
        } else {
            ""
        };
        sweep(&format!("{}{}", iface.label(), star), &c, &params, &opts);
    }

    println!("\n-- coherence protocol --");
    for coh in [CoherenceKind::Software, CoherenceKind::Hardware] {
        let mut c = base.clone();
        c.coherence = coh;
        let star = if coh == CoherenceKind::Software {
            " *"
        } else {
            ""
        };
        sweep(&format!("{:?}{}", coh, star), &c, &params, &opts);
    }

    println!("\n-- GPU count (total inter-chip bandwidth held constant) --");
    for chips in [2usize, 4] {
        let mut c = base.clone();
        let total_pair_bw = c.interchip_pair_gbs * c.chips as f64;
        c.chips = chips;
        c.interchip_pair_gbs = total_pair_bw / chips as f64;
        let star = if chips == 4 { " *" } else { "" };
        sweep(&format!("{} GPUs{}", chips, star), &c, &params, &opts);
    }

    println!("\n-- sectored cache --");
    for sectored in [false, true] {
        let mut c = base.clone();
        c.sectored = sectored;
        let star = if !sectored { " *" } else { "" };
        sweep(
            &format!("sectored={}{}", sectored, star),
            &c,
            &params,
            &opts,
        );
    }

    println!("\n-- page size --");
    for ps in [2048u64, 4096, 8192] {
        let mut c = base.clone();
        c.page_size = ps;
        let star = if ps == 4096 { " *" } else { "" };
        sweep(&format!("{} B pages{}", ps, star), &c, &params, &opts);
    }
}
