//! Regenerates Fig. 15 (scale-out, beyond the paper): the SAC-vs-baselines
//! comparison re-run at 4/8/16 chips on every inter-chip topology (ring,
//! fully connected, 2-D mesh), with per-link bandwidth held constant.
//! Reports the harmonic-mean SM-side and SAC speedups over the memory-side
//! baseline on a small SP+MP subset, plus the memory-side fabric traffic
//! and each machine's bisection bandwidth.
//!
//! After the figure is emitted, the scale-out expectation set is scored
//! through the `figcheck` machinery and the process exits 2 iff a `shape`
//! expectation fails — the same gate the paper figures get.
//!
//! Flags:
//! - `--json PATH` — write the figure's canonical `mcgpu-figdata-v1`
//!   document.
//! - `--expectations PATH` — expectation set to score (default
//!   `expectations/fig15_scaleout.json`).
//! - `--report PATH` — also write the canonical `mcgpu-figcheck-v1`
//!   report.
//! - `--quick` — reduced trace volume (what CI runs).
//! - `--journal PATH` / `--resume PATH` — the standard journaled-sweep
//!   flags; every `(topology, chips, benchmark, organization)` cell is
//!   keyed by its full machine config, so a killed run resumes without
//!   re-simulating finished cells.

use mcgpu_types::ExpectationSet;
use sac_bench::figdata::{emit, Fig15Data};
use sac_bench::{figcheck, SweepOptions};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let path = arg_value("--expectations")
        .unwrap_or_else(|| "expectations/fig15_scaleout.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let set = ExpectationSet::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let base = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    let opts = SweepOptions::from_args().sequential();
    let data = Fig15Data::collect(&base, &params, &opts);
    emit(&data);

    let mut metrics = figcheck::Metrics::new();
    metrics.add_fig15(&data);
    let volume = if sac_bench::quick_mode() {
        "quick"
    } else {
        "standard"
    };
    let report = figcheck::evaluate(&set, &metrics, volume);
    println!();
    print!("{}", figcheck::scorecard(&report));
    if let Some(out) = arg_value("--report") {
        std::fs::write(&out, report.to_canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("  wrote {out}");
    }
    if report.gates() {
        std::process::exit(2);
    }
}
