//! The figure-regression gate: runs the full benchmark suite under every
//! LLC organization, scores the paper's expectation set against the
//! measured figure data, prints a scorecard, and exits nonzero iff a
//! `shape` expectation fails (or cannot be evaluated).
//!
//! Flags:
//! - `--expectations PATH` — expectation set to score (default
//!   `expectations/sac_isca23.json`).
//! - `--report PATH` — also write the canonical `mcgpu-figcheck-v1`
//!   report (byte-deterministic for a given machine config and volume).
//! - `--quick` — reduced trace volume (what CI runs).
//! - `--journal PATH` / `--resume PATH` — the standard journaled-sweep
//!   flags; a killed run resumes without re-simulating finished cells.

use mcgpu_types::{ExpectationSet, LlcOrgKind};
use sac_bench::{
    exit_on_quarantine, experiment_config, figcheck, quick_mode, run_suite, trace_params,
    SweepOptions,
};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let path =
        arg_value("--expectations").unwrap_or_else(|| "expectations/sac_isca23.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let set = ExpectationSet::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let cfg = experiment_config();
    let rows = exit_on_quarantine(run_suite(
        &cfg,
        &trace_params(),
        &LlcOrgKind::ALL,
        &SweepOptions::from_args(),
    ));
    let metrics = figcheck::suite_metrics(&cfg, &rows);
    let volume = if quick_mode() { "quick" } else { "standard" };
    let report = figcheck::evaluate(&set, &metrics, volume);
    print!("{}", figcheck::scorecard(&report));
    if let Some(out) = arg_value("--report") {
        std::fs::write(&out, report.to_canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("  wrote {out}");
    }
    if report.gates() {
        std::process::exit(2);
    }
}
