//! Journaled sweep over the golden-stats suite, for the CI kill/resume
//! job and for manual crash-recovery drills.
//!
//! ```text
//! golden_sweep (--journal PATH | --resume PATH) [--out DIR]
//!              [--stall-ms N] [--jobs N]
//! ```
//!
//! Runs the 8 golden cases (shared with `tests/golden.rs`) as isolated,
//! journaled sweep cells and writes each case's canonical stats JSON to
//! `DIR/<name>.json` (default `results/golden_sweep/`). `--stall-ms N`
//! sleeps N ms at the start of each non-replayed cell so a test harness
//! can reliably SIGKILL the process mid-sweep; the stall only delays
//! execution and cannot change any result. After a kill, re-running with
//! `--resume` on the same journal replays the finished cells byte-
//! identically and executes only the rest, so the final output directory
//! diffs clean against `tests/golden/`.

use sac_bench::golden::{suite, Case};
use sac_bench::{sweep, CellOutcome, Journal, JournalRecord, RecordOutcome, SweepOptions};
use std::path::PathBuf;
use std::sync::Mutex;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let opts = SweepOptions::from_args();
    let out_dir =
        PathBuf::from(arg_value("--out").unwrap_or_else(|| "results/golden_sweep".to_string()));
    let stall = std::time::Duration::from_millis(
        arg_value("--stall-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    );

    let journal: Mutex<Journal> = match (&opts.resume, &opts.journal) {
        (Some(path), _) => Mutex::new(
            Journal::open(path)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display())),
        ),
        (None, Some(path)) => Mutex::new(
            Journal::create(path)
                .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display())),
        ),
        (None, None) => {
            eprintln!("usage: golden_sweep (--journal PATH | --resume PATH) [--out DIR]");
            std::process::exit(2);
        }
    };
    {
        let j = journal.lock().expect("journal lock");
        eprintln!(
            "golden sweep: 8 cells on {} thread(s), journal {} ({} recorded)",
            sweep::jobs(),
            j.path().display(),
            j.records().len()
        );
    }

    let outcomes: Vec<(&'static str, CellOutcome<String>)> = sweep::map(suite(), |c: Case| {
        let hash = c.config_hash();
        let desc = c.config_desc();
        let replayed = journal
            .lock()
            .expect("journal lock")
            .lookup_verified(c.name, hash, &desc)
            .and_then(|r| match &r.outcome {
                RecordOutcome::Completed { stats_json } => Some(stats_json.clone()),
                RecordOutcome::Quarantined { .. } => None,
            });
        if let Some(json) = replayed {
            eprintln!("  replayed {}", c.name);
            return (
                c.name,
                CellOutcome {
                    attempts: 0,
                    result: Ok(json),
                },
            );
        }
        if !stall.is_zero() {
            std::thread::sleep(stall);
        }
        let out = sweep::run_cell(|_attempt| c.try_run());
        let outcome = match &out.result {
            Ok(json) => RecordOutcome::Completed {
                stats_json: json.clone(),
            },
            Err(e) => RecordOutcome::Quarantined {
                kind: e.kind().to_string(),
                error: e.to_string(),
            },
        };
        journal
            .lock()
            .expect("journal lock")
            .append(JournalRecord {
                cell: c.name.to_string(),
                config_hash: hash,
                config: Some(desc),
                attempts: out.attempts,
                outcome,
            })
            .expect("write run journal");
        match &out.result {
            Ok(_) => eprintln!("  finished {}", c.name),
            Err(e) => eprintln!("  QUARANTINED {}: {e}", c.name),
        }
        (c.name, out)
    });

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut failed = 0usize;
    for (name, out) in &outcomes {
        match &out.result {
            Ok(json) => {
                std::fs::write(out_dir.join(format!("{name}.json")), json)
                    .expect("write stats file");
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "{failed} of {} cells quarantined; re-run with --resume {} to retry them",
            outcomes.len(),
            journal.lock().expect("journal lock").path().display()
        );
        std::process::exit(1);
    }
    eprintln!(
        "all {} cells written to {}",
        outcomes.len(),
        out_dir.display()
    );
}
