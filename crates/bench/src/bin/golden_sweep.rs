//! Journaled sweep over the golden-stats suite, for the CI kill/resume
//! job and for manual crash-recovery drills.
//!
//! ```text
//! golden_sweep (--journal PATH | --resume PATH) [--out DIR]
//!              [--stall-ms N] [--jobs N]
//!              [--state-dir DIR] [--checkpoint-interval N]
//! ```
//!
//! Runs the 8 golden cases (shared with `tests/golden.rs`) as isolated,
//! journaled sweep cells and writes each case's canonical stats JSON to
//! `DIR/<name>.json` (default `results/golden_sweep/`). `--stall-ms N`
//! sleeps N ms at the start of each non-replayed cell so a test harness
//! can reliably SIGKILL the process mid-sweep; the stall only delays
//! execution and cannot change any result. After a kill, re-running with
//! `--resume` on the same journal replays the finished cells byte-
//! identically and executes only the rest, so the final output directory
//! diffs clean against `tests/golden/`.
//!
//! With `--state-dir DIR`, every running cell additionally snapshots its
//! full simulator state to `DIR` every `--checkpoint-interval` cycles
//! (default 65536), so a SIGKILLed sweep resumes interrupted cells
//! *mid-cycle* from their latest snapshot instead of from cycle 0 —
//! still byte-identical to an uninterrupted run.
//!
//! `--ckpt-cut N` (requires `--state-dir`) is the deterministic crash
//! drill: every cell is interrupted at cycle N and snapshotted, leaving
//! exactly the on-disk state a SIGKILL between two periodic checkpoints
//! would — nothing journaled, one snapshot per interrupted cell — and the
//! process exits 3. A subsequent `--resume` run must continue every cell
//! mid-cycle and reproduce the golden snapshots byte for byte.

use sac_bench::golden::{suite, Case};
use sac_bench::{state, sweep, CellOutcome, Journal, JournalRecord, RecordOutcome, SweepOptions};
use std::path::PathBuf;
use std::sync::Mutex;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let opts = SweepOptions::from_args();
    if let Some((dir, _)) = opts.ckpt() {
        std::fs::create_dir_all(dir).expect("create checkpoint state directory");
    }
    let out_dir =
        PathBuf::from(arg_value("--out").unwrap_or_else(|| "results/golden_sweep".to_string()));
    let stall = std::time::Duration::from_millis(
        arg_value("--stall-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    );

    let journal: Mutex<Journal> = match (&opts.resume, &opts.journal) {
        (Some(path), _) => Mutex::new(
            Journal::open(path)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display())),
        ),
        (None, Some(path)) => Mutex::new(
            Journal::create(path)
                .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display())),
        ),
        (None, None) => {
            eprintln!("usage: golden_sweep (--journal PATH | --resume PATH) [--out DIR]");
            std::process::exit(2);
        }
    };
    {
        let j = journal.lock().expect("journal lock");
        eprintln!(
            "golden sweep: 8 cells on {} thread(s), journal {} ({} recorded)",
            sweep::jobs(),
            j.path().display(),
            j.records().len()
        );
    }

    if let Some(cut) = arg_value("--ckpt-cut").and_then(|v| v.parse::<u64>().ok()) {
        let Some((dir, interval)) = opts.ckpt() else {
            eprintln!("--ckpt-cut requires --state-dir DIR");
            std::process::exit(2);
        };
        let mut interrupted = 0usize;
        for c in suite() {
            let snap = state::cell_snapshot_path(dir, c.name, c.config_hash());
            match c.interrupt_at(&snap, interval, cut) {
                Ok(true) => {
                    eprintln!("  interrupted {} at cycle {cut}", c.name);
                    interrupted += 1;
                }
                Ok(false) => eprintln!("  {} finished before cycle {cut}; no snapshot", c.name),
                Err(e) => {
                    eprintln!("  FAILED interrupting {}: {e}", c.name);
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "crash drill: {interrupted} cell(s) snapshotted mid-cycle; resume with --resume {}",
            journal.lock().expect("journal lock").path().display()
        );
        std::process::exit(3);
    }

    let outcomes: Vec<(&'static str, CellOutcome<String>)> = sweep::map(suite(), |c: Case| {
        let hash = c.config_hash();
        let desc = c.config_desc();
        let replayed = journal
            .lock()
            .expect("journal lock")
            .lookup_verified(c.name, hash, &desc)
            .and_then(|r| match &r.outcome {
                RecordOutcome::Completed { stats_json } => Some(stats_json.clone()),
                RecordOutcome::Quarantined { .. } => None,
            });
        if let Some(json) = replayed {
            eprintln!("  replayed {}", c.name);
            return (
                c.name,
                CellOutcome {
                    attempts: 0,
                    result: Ok(json),
                },
            );
        }
        if !stall.is_zero() {
            std::thread::sleep(stall);
        }
        let snapshot = opts
            .ckpt()
            .map(|(dir, interval)| (state::cell_snapshot_path(dir, c.name, hash), interval));
        let out = sweep::run_cell(|_attempt| {
            c.try_run_ckpt(snapshot.as_ref().map(|(p, i)| (p.as_path(), *i)))
        });
        // Any terminal outcome supersedes the cell's snapshot.
        if let Some((p, _)) = &snapshot {
            let _ = std::fs::remove_file(p);
        }
        let outcome = match &out.result {
            Ok(json) => RecordOutcome::Completed {
                stats_json: json.clone(),
            },
            Err(e) => RecordOutcome::Quarantined {
                kind: e.kind().to_string(),
                error: e.to_string(),
            },
        };
        journal
            .lock()
            .expect("journal lock")
            .append(JournalRecord {
                cell: c.name.to_string(),
                config_hash: hash,
                config: Some(desc),
                mode: None,
                attempts: out.attempts,
                outcome,
            })
            .expect("write run journal");
        match &out.result {
            Ok(_) => eprintln!("  finished {}", c.name),
            Err(e) => eprintln!("  QUARANTINED {}: {e}", c.name),
        }
        (c.name, out)
    });

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut failed = 0usize;
    for (name, out) in &outcomes {
        match &out.result {
            Ok(json) => {
                std::fs::write(out_dir.join(format!("{name}.json")), json)
                    .expect("write stats file");
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "{failed} of {} cells quarantined; re-run with --resume {} to retry them",
            outcomes.len(),
            journal.lock().expect("journal lock").path().display()
        );
        std::process::exit(1);
    }
    eprintln!(
        "all {} cells written to {}",
        outcomes.len(),
        out_dir.display()
    );
}
