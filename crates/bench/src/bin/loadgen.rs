//! Load generator for the `sac_serve` sweep daemon, used by
//! `scripts/ci_serve_chaos.sh` and for manual soak tests.
//!
//! ```text
//! loadgen (--server HOST:PORT | --addr-file PATH) [--requests N]
//!         [--concurrency C] [--out DIR] [--mode normal|overload]
//!         [--benchmarks A,B] [--orgs x,y] [--total-accesses N]
//!         [--deadline-s S]
//! ```
//!
//! Normal mode drives `N` sweep requests to termination from `C` client
//! threads: request `i`'s spec is a pure function of `i` (so two
//! campaigns over the same index range are comparable byte-for-byte), and
//! specs overlap heavily on purpose to exercise the daemon's shared
//! result cache. Every terminal cell is written under `DIR/req-<i>/`:
//! completed cells as `<cell>.json` (the canonical stats, verbatim) and
//! quarantined cells as `<cell>.error.json` (the typed kind + message).
//!
//! The client is deliberately rude in exactly the ways the chaos harness
//! needs: it honours `Retry-After` on 429, retries connection failures
//! (the server may be `SIGKILL`ed and restarted mid-campaign — with
//! `--addr-file` the address is re-read on every attempt, so a restart
//! onto a new port is found automatically), and resubmits on 404 (the
//! idempotent-id contract makes resubmission safe).
//!
//! Overload mode floods the daemon with single-cell requests with
//! *distinct* specs (dedupe would otherwise absorb the flood) and reports
//! how many submissions were refused with 429 backpressure; it does not
//! wait for the work to finish.

use mcgpu_types::json::{parse, JsonValue};
use sac_bench::proto::{read_response, HttpResponse, ProtoError};
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Where to find the server: a fixed address, or a file re-read on every
/// attempt (survives a restart onto a new OS-assigned port).
#[derive(Clone)]
enum AddrSource {
    Fixed(String),
    File(PathBuf),
}

impl AddrSource {
    fn resolve(&self) -> Option<String> {
        match self {
            AddrSource::Fixed(a) => Some(a.clone()),
            AddrSource::File(p) => std::fs::read_to_string(p)
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty()),
        }
    }
}

/// One HTTP exchange (`Connection: close`).
fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<HttpResponse, ProtoError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut std::io::BufReader::new(stream))
}

struct Campaign {
    addr: AddrSource,
    out: Option<PathBuf>,
    deadline: Instant,
    benchmarks: Vec<String>,
    orgs: Vec<String>,
    total_accesses: u64,
    overload: bool,
    backpressure: AtomicUsize,
    resubmits: AtomicUsize,
    completed: AtomicUsize,
    failed_requests: AtomicUsize,
    stuck: AtomicUsize,
}

impl Campaign {
    /// Request `i`'s spec: a deterministic function of `i` only. Adjacent
    /// requests share most of their grid, so the daemon's dedupe path is
    /// always exercised; overload mode instead makes every spec unique.
    fn spec_json(&self, i: usize) -> String {
        let id = format!("req-{i:04}");
        if self.overload {
            // Distinct trace volume per request defeats dedupe on purpose.
            return format!(
                "{{\"id\": \"{id}\", \"benchmarks\": [\"{}\"], \"orgs\": [\"{}\"], \
                 \"total_accesses\": {}}}",
                self.benchmarks[i % self.benchmarks.len()],
                self.orgs[i % self.orgs.len()],
                1_000 + i as u64
            );
        }
        let bench = &self.benchmarks[i % self.benchmarks.len()];
        let orgs: Vec<String> = self.orgs.iter().map(|o| format!("\"{o}\"")).collect();
        format!(
            "{{\"id\": \"{id}\", \"benchmarks\": [\"{bench}\"], \"orgs\": [{}], \
             \"total_accesses\": {}}}",
            orgs.join(", "),
            self.total_accesses
        )
    }

    fn patient(&self) -> bool {
        Instant::now() < self.deadline
    }

    /// Submit until accepted (202) or already-known (200). Returns false
    /// if the overall deadline expired first.
    fn submit(&self, id: &str, spec: &str) -> bool {
        while self.patient() {
            let Some(addr) = self.addr.resolve() else {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            };
            match http(&addr, "POST", "/v1/sweeps", spec) {
                Ok(r) if r.status == 202 || r.status == 200 => return true,
                Ok(r) if r.status == 429 => {
                    self.backpressure.fetch_add(1, Ordering::Relaxed);
                    if self.overload {
                        // The probe only needs the refusal to be observed.
                        return false;
                    }
                    let secs: u64 = r
                        .header("retry-after")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1);
                    std::thread::sleep(Duration::from_secs(secs));
                }
                Ok(r) => {
                    eprintln!("loadgen: {id}: submit refused: {} {}", r.status, r.text());
                    return false;
                }
                // Connection refused / reset: the server is down or being
                // restarted. Back off and re-resolve the address.
                Err(_) => std::thread::sleep(Duration::from_millis(200)),
            }
        }
        false
    }

    /// Drive request `i` to a terminal phase and write its results.
    fn drive(&self, i: usize) {
        let id = format!("req-{i:04}");
        let spec = self.spec_json(i);
        if !self.submit(&id, &spec) {
            if !self.overload {
                self.stuck.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if self.overload {
            return;
        }
        // Poll to terminal. 404 means the daemon died between our 202 and
        // its manifest fsync — impossible by construction — or, far more
        // likely, we resubmitted to a fresh instance before ever being
        // accepted; either way, idempotent resubmission is the answer.
        let status = loop {
            if !self.patient() {
                self.stuck.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let Some(addr) = self.addr.resolve() else {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            };
            match http(&addr, "GET", &format!("/v1/sweeps/{id}"), "") {
                Ok(r) if r.status == 200 => {
                    let Ok(v) = parse(&r.text()) else {
                        std::thread::sleep(Duration::from_millis(100));
                        continue;
                    };
                    let phase = v.get("phase").and_then(JsonValue::as_str).unwrap_or("");
                    if phase == "completed" || phase == "failed" {
                        break v;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                Ok(r) if r.status == 404 => {
                    self.resubmits.fetch_add(1, Ordering::Relaxed);
                    if !self.submit(&id, &spec) {
                        self.stuck.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(200)),
            }
        };

        let phase = status
            .get("phase")
            .and_then(JsonValue::as_str)
            .unwrap_or("");
        if phase == "failed" {
            self.failed_requests.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
        let Some(out) = &self.out else { return };
        let dir = out.join(&id);
        if let Err(e) = self.write_results(&id, &status, &dir) {
            eprintln!("loadgen: {id}: cannot write results: {e}");
            self.stuck.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetch each terminal cell and write it under `dir`. Completed cells
    /// are written verbatim (the byte-identity the chaos harness diffs);
    /// quarantined cells become a small typed error document.
    fn write_results(&self, id: &str, status: &JsonValue, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let cells = status
            .get("cells")
            .and_then(JsonValue::as_array)
            .ok_or("status without cells")?;
        for c in cells {
            let name = c
                .get("cell")
                .and_then(JsonValue::as_str)
                .ok_or("cell name")?;
            let index = c
                .get("index")
                .and_then(JsonValue::as_u64)
                .ok_or("cell index")?;
            let phase = c.get("phase").and_then(JsonValue::as_str).unwrap_or("");
            let stem = name.replace('/', "_");
            match phase {
                "completed" => {
                    let body = self.fetch_stats(id, index)?;
                    std::fs::write(dir.join(format!("{stem}.json")), body)
                        .map_err(|e| e.to_string())?;
                }
                "quarantined" => {
                    let kind = c
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown");
                    let error = c.get("error").and_then(JsonValue::as_str).unwrap_or("");
                    let mut doc = format!("{{\"kind\": \"{kind}\", \"error\": \"");
                    mcgpu_types::json::escape_into(error, &mut doc);
                    doc.push_str("\"}\n");
                    std::fs::write(dir.join(format!("{stem}.error.json")), doc)
                        .map_err(|e| e.to_string())?;
                }
                other => return Err(format!("cell {name} not terminal: {other}")),
            }
        }
        Ok(())
    }

    fn fetch_stats(&self, id: &str, index: u64) -> Result<Vec<u8>, String> {
        let path = format!("/v1/sweeps/{id}/cells/{index}/stats");
        while self.patient() {
            let Some(addr) = self.addr.resolve() else {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            };
            match http(&addr, "GET", &path, "") {
                Ok(r) if r.status == 200 => return Ok(r.body),
                Ok(r) => return Err(format!("stats fetch: {} {}", r.status, r.text())),
                Err(_) => std::thread::sleep(Duration::from_millis(200)),
            }
        }
        Err("deadline expired fetching stats".to_string())
    }
}

fn main() {
    let addr = match (arg_value("--server"), arg_value("--addr-file")) {
        (Some(a), _) => AddrSource::Fixed(
            a.trim_start_matches("http://")
                .trim_end_matches('/')
                .to_string(),
        ),
        (None, Some(p)) => AddrSource::File(PathBuf::from(p)),
        (None, None) => {
            eprintln!("usage: loadgen (--server HOST:PORT | --addr-file PATH) [--requests N] ...");
            std::process::exit(2);
        }
    };
    let requests: usize = arg_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let concurrency: usize = arg_value("--concurrency")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let deadline_s: u64 = arg_value("--deadline-s")
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let overload = arg_value("--mode").as_deref() == Some("overload");
    let campaign = Arc::new(Campaign {
        addr,
        out: arg_value("--out").map(PathBuf::from),
        deadline: Instant::now() + Duration::from_secs(deadline_s),
        benchmarks: arg_value("--benchmarks")
            .unwrap_or_else(|| "SN,CFD,SRAD".to_string())
            .split(',')
            .map(str::to_string)
            .collect(),
        orgs: arg_value("--orgs")
            .unwrap_or_else(|| "sac,mem".to_string())
            .split(',')
            .map(str::to_string)
            .collect(),
        total_accesses: arg_value("--total-accesses")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4_000),
        overload,
        backpressure: AtomicUsize::new(0),
        resubmits: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        failed_requests: AtomicUsize::new(0),
        stuck: AtomicUsize::new(0),
    });

    let start = Instant::now();
    let workers: Vec<_> = (0..concurrency.max(1))
        .map(|t| {
            let c = Arc::clone(&campaign);
            std::thread::spawn(move || {
                let mut i = t;
                while i < requests {
                    c.drive(i);
                    i += concurrency.max(1);
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }

    let stuck = campaign.stuck.load(Ordering::Relaxed);
    println!(
        "loadgen: {requests} request(s): {} completed, {} failed (typed), {} stuck; \
         {} resubmit(s), backpressure responses: {}; wall {:.1}s",
        campaign.completed.load(Ordering::Relaxed),
        campaign.failed_requests.load(Ordering::Relaxed),
        stuck,
        campaign.resubmits.load(Ordering::Relaxed),
        campaign.backpressure.load(Ordering::Relaxed),
        start.elapsed().as_secs_f64()
    );
    // Overload probes only measure refusals; in normal mode every request
    // must have terminated with a result or a typed error.
    if !overload && stuck > 0 {
        std::process::exit(1);
    }
}
