//! Regenerates the §3.6 overhead analysis: SAC's per-chip storage (620 B
//! conventional / 812 B sectored) and the NoC area/power comparison
//! (SM-side two-NoC vs memory-side vs SAC bypassing).

use mcgpu_noc::NocPhysical;
use mcgpu_types::MachineConfig;
use sac::overhead::HardwareOverhead;

fn main() {
    println!("== SAC per-chip storage (Table 3 baseline, 16 slices/chip) ==");
    for (label, o) in [
        ("conventional", HardwareOverhead::paper_conventional()),
        ("sectored", HardwareOverhead::paper_sectored()),
    ] {
        println!(
            "{label:13}: CRD {} B + LSU counters {} B + scalar counters {} B = {} B  (paper: {})",
            o.crd_bytes(),
            o.lsu_counter_bytes(),
            o.scalar_counter_bytes(),
            o.total_bytes(),
            if o.crd_bytes() == 544 {
                "620 B"
            } else {
                "812 B"
            }
        );
    }

    println!("\n== NoC physical model (DSENT-lite, calibrated to the paper's deltas) ==");
    let m = NocPhysical::new(&MachineConfig::paper_baseline());
    let mem = m.memory_side();
    let (a_sm, p_sm) = m.sm_side().relative_to(&mem);
    let (a_sac, p_sac) = m.sac().relative_to(&mem);
    println!(
        "SM-side two-NoC vs memory-side : area {:+.0}%  power {:+.0}%   (paper: +18% / +21%)",
        (a_sm - 1.0) * 100.0,
        (p_sm - 1.0) * 100.0
    );
    println!(
        "SAC bypassing vs memory-side   : area {:+.1}%  power {:+.1}%   (paper: +1.9% / +1.6%)",
        (a_sac - 1.0) * 100.0,
        (p_sac - 1.0) * 100.0
    );
    let (p_save, a_save) = m.sac_savings_vs_sm_side();
    println!(
        "SAC savings vs SM-side         : power -{:.0}%  area -{:.0}%   (paper: -21% / -18%)",
        p_save * 100.0,
        a_save * 100.0
    );
}
