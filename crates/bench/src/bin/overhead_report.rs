//! Regenerates the §3.6 overhead analysis: SAC's per-chip storage (620 B
//! conventional / 812 B sectored), how the CRD's presence vector scales
//! with the chip count (the scale-out axis), and the NoC area/power
//! comparison (SM-side two-NoC vs memory-side vs SAC bypassing).
//!
//! Runs through the sweep machinery, so `--journal PATH` / `--resume PATH`
//! / `--jobs N` work exactly as they do for the figure harnesses.

use mcgpu_noc::NocPhysical;
use mcgpu_types::MachineConfig;
use sac::overhead::HardwareOverhead;
use sac::Crd;
use sac_bench::{exit_on_quarantine, run_report_sections, ReportSection, SweepOptions};
use std::fmt::Write as _;

fn render_storage() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== SAC per-chip storage (Table 3 baseline, 16 slices/chip) =="
    );
    for (label, o) in [
        ("conventional", HardwareOverhead::paper_conventional()),
        ("sectored", HardwareOverhead::paper_sectored()),
    ] {
        let _ = writeln!(
            out,
            "{label:13}: CRD {} B + LSU counters {} B + scalar counters {} B = {} B  (paper: {})",
            o.crd_bytes(),
            o.lsu_counter_bytes(),
            o.scalar_counter_bytes(),
            o.total_bytes(),
            if o.crd_bytes() == 544 {
                "620 B"
            } else {
                "812 B"
            }
        );
    }
    out
}

fn render_crd_scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== CRD storage vs chip count (presence bits = chips x sectors) =="
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>14} {:>10}",
        "chips", "conventional", "sectored"
    );
    for chips in [4usize, 8, 16] {
        let conv = Crd::for_chips(chips, 128, false).storage_bytes();
        let sect = Crd::for_chips(chips, 128, true).storage_bytes();
        let _ = writeln!(out, "{chips:>6} | {conv:>12} B {sect:>8} B");
    }
    let _ = writeln!(
        out,
        "(per chip; the sharer vector widens with the machine, 4x under sectoring)"
    );
    out
}

fn render_noc() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n== NoC physical model (DSENT-lite, calibrated to the paper's deltas) =="
    );
    let m = NocPhysical::new(&MachineConfig::paper_baseline());
    let mem = m.memory_side();
    let (a_sm, p_sm) = m.sm_side().relative_to(&mem);
    let (a_sac, p_sac) = m.sac().relative_to(&mem);
    let _ = writeln!(
        out,
        "SM-side two-NoC vs memory-side : area {:+.0}%  power {:+.0}%   (paper: +18% / +21%)",
        (a_sm - 1.0) * 100.0,
        (p_sm - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "SAC bypassing vs memory-side   : area {:+.1}%  power {:+.1}%   (paper: +1.9% / +1.6%)",
        (a_sac - 1.0) * 100.0,
        (p_sac - 1.0) * 100.0
    );
    let (p_save, a_save) = m.sac_savings_vs_sm_side();
    let _ = writeln!(
        out,
        "SAC savings vs SM-side         : power -{:.0}%  area -{:.0}%   (paper: -21% / -18%)",
        p_save * 100.0,
        a_save * 100.0
    );
    out
}

fn main() {
    let opts = SweepOptions::from_args();
    let sections = [
        ReportSection {
            name: "sac-storage",
            inputs: "HardwareOverhead::paper_conventional|paper_sectored".to_string(),
            render: render_storage,
        },
        ReportSection {
            name: "crd-scaling",
            inputs: "Crd::for_chips(4|8|16, 128, conventional|sectored)".to_string(),
            render: render_crd_scaling,
        },
        ReportSection {
            name: "noc-physical",
            inputs: format!("{:?}", MachineConfig::paper_baseline()),
            render: render_noc,
        },
    ];
    for text in exit_on_quarantine(run_report_sections("overhead_report", &sections, &opts)) {
        print!("{text}");
    }
}
