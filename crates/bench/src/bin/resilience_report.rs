//! Resilience report: how each LLC organization rides out injected
//! hardware faults — inter-chip link degradation/failure, DRAM channel
//! faults, and LLC slice loss.
//!
//! For every (benchmark, fault scenario, organization) triple the report
//! runs the workload with the scenario's `FaultPlan`, checks that all work
//! is conserved, and measures *post-fault throughput* (accesses retired
//! per kilocycle after the first fault hits) — the figure of merit for
//! graceful degradation. SAC's divergence monitor may re-profile and
//! re-decide after a fault; the baselines keep their fixed policy.
//!
//! `cargo run --release -p sac-bench --bin resilience_report`
//! (pass `--quick` for a reduced-volume smoke run).

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig};

const SUBSET: [&str; 4] = ["SN", "BS", "SRAD", "GEMM"];

/// Cycle at which mid-run scenarios inject their first fault: early enough
/// that most of the run executes degraded (the fastest benchmarks finish
/// in under 10k cycles), late enough that SAC has completed its first
/// 2k-cycle profiling window and decided on healthy hardware first.
const FAULT_CYCLE: u64 = 3_000;

struct Scenario {
    name: &'static str,
    /// Scenarios whose dominant fault is inter-chip link degradation; the
    /// summary verdict checks SAC against the baselines on these.
    link_degradation: bool,
    fault_cycle: u64,
    events: Vec<FaultEvent>,
}

fn at(cycle: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent { cycle, kind }
}

fn scenarios(cfg: &MachineConfig) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "healthy",
            link_degradation: false,
            fault_cycle: 0,
            events: vec![],
        },
        Scenario {
            name: "link 0-1 at 25% bw",
            link_degradation: true,
            fault_cycle: FAULT_CYCLE,
            events: vec![at(
                FAULT_CYCLE,
                FaultKind::LinkDegrade {
                    a: ChipId(0),
                    b: ChipId(1),
                    factor: 0.25,
                },
            )],
        },
        Scenario {
            name: "links 0-1, 2-3 at 5% bw",
            link_degradation: true,
            fault_cycle: FAULT_CYCLE,
            events: vec![
                at(
                    FAULT_CYCLE,
                    FaultKind::LinkDegrade {
                        a: ChipId(0),
                        b: ChipId(1),
                        factor: 0.05,
                    },
                ),
                at(
                    FAULT_CYCLE,
                    FaultKind::LinkDegrade {
                        a: ChipId(2),
                        b: ChipId(3),
                        factor: 0.05,
                    },
                ),
            ],
        },
        Scenario {
            name: "link 1-2 failed",
            link_degradation: false,
            fault_cycle: FAULT_CYCLE,
            events: vec![at(
                FAULT_CYCLE,
                FaultKind::LinkFail {
                    a: ChipId(1),
                    b: ChipId(2),
                },
            )],
        },
        Scenario {
            name: "dram: chip1 -1ch, chip2 at 50%",
            link_degradation: false,
            fault_cycle: FAULT_CYCLE,
            events: vec![
                at(
                    FAULT_CYCLE,
                    FaultKind::DramFail {
                        chip: ChipId(1),
                        channel: 0,
                    },
                ),
                at(
                    FAULT_CYCLE,
                    FaultKind::DramThrottle {
                        chip: ChipId(2),
                        factor: 0.5,
                    },
                ),
            ],
        },
        Scenario {
            name: "chip0 LLC fused off",
            link_degradation: false,
            fault_cycle: 0,
            events: (0..cfg.slices_per_chip)
                .map(|s| {
                    at(
                        0,
                        FaultKind::LlcSliceDisable {
                            chip: ChipId(0),
                            slice: s,
                        },
                    )
                })
                .collect(),
        },
    ]
}

/// One run's outcome: post-fault throughput in accesses per kilocycle, or
/// the error string for runs the watchdog (or cycle budget) aborted.
enum Outcome {
    Done { post_tput: f64, conserved: bool },
    Failed(String),
}

fn short(org: LlcOrgKind) -> &'static str {
    match org {
        LlcOrgKind::MemorySide => "MemSide",
        LlcOrgKind::SmSide => "SmSide",
        LlcOrgKind::StaticHalf => "Static",
        LlcOrgKind::Dynamic => "Dynamic",
        LlcOrgKind::Sac => "SAC",
    }
}

fn main() {
    let cfg = sac_bench::experiment_config();
    // Volume is deliberately smaller than the figure harnesses: the report
    // measures fault *response*, and at this working-set size a severe link
    // fault flips which LLC side is best mid-run — exactly the situation
    // SAC's divergence monitor exists for.
    let params = TraceParams {
        // The fastest benchmarks retire ~6.5 accesses/cycle: stay well
        // above FAULT_CYCLE * 6.5 so every run is still going at the fault.
        total_accesses: if sac_bench::quick_mode() {
            25_000
        } else {
            40_000
        },
        ..TraceParams::quick()
    };
    let scenarios = scenarios(&cfg);

    println!("resilience report: post-fault throughput (accesses/kcycle)");
    println!(
        "machine: {} chips, {} benchmarks, {} accesses each\n",
        cfg.chips,
        SUBSET.len(),
        params.total_accesses
    );

    // (benchmark, scenario) -> per-organization outcome, printed as a row.
    let mut sac_beats_baselines_somewhere = false;
    for name in SUBSET {
        let profile = profiles::by_name(name).expect("profile");
        let wl = generate(&cfg, &profile, &params);
        let expected = {
            let stats = SimBuilder::new(cfg.clone())
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .expect("fault-free baseline completes");
            stats.reads + stats.writes
        };
        println!("== {name} ==");
        println!(
            "{:32} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "scenario",
            short(LlcOrgKind::MemorySide),
            short(LlcOrgKind::SmSide),
            short(LlcOrgKind::StaticHalf),
            short(LlcOrgKind::Dynamic),
            short(LlcOrgKind::Sac),
        );
        for sc in &scenarios {
            let outcomes: Vec<Outcome> = LlcOrgKind::ALL
                .iter()
                .map(|&org| {
                    let mut sim = SimBuilder::new(cfg.clone())
                        .organization(org)
                        .fault_plan(FaultPlan::new(sc.events.clone()))
                        .build()
                        .expect("valid machine configuration");
                    let mut done_at_fault = 0u64;
                    let fault_cycle = sc.fault_cycle;
                    let result = sim.run_observed(&wl, 500, |cycle, done, _| {
                        if cycle <= fault_cycle {
                            done_at_fault = done;
                        }
                    });
                    match result {
                        Ok(stats) if stats.cycles <= sc.fault_cycle => {
                            Outcome::Failed("finished before the fault hit".to_string())
                        }
                        Ok(stats) => {
                            let work = stats.reads + stats.writes;
                            let post_cycles = stats.cycles - sc.fault_cycle;
                            Outcome::Done {
                                post_tput: (work.saturating_sub(done_at_fault)) as f64 * 1000.0
                                    / post_cycles as f64,
                                conserved: work == expected,
                            }
                        }
                        Err(e) => Outcome::Failed(e.to_string()),
                    }
                })
                .collect();

            let cells: Vec<String> = outcomes
                .iter()
                .map(|o| match o {
                    Outcome::Done {
                        post_tput,
                        conserved: true,
                        ..
                    } => format!("{post_tput:.1}"),
                    Outcome::Done {
                        conserved: false, ..
                    } => "LOST!".to_string(),
                    Outcome::Failed(_) => "ERR".to_string(),
                })
                .collect();
            println!(
                "{:32} {:>10} {:>10} {:>10} {:>10} {:>10}",
                sc.name, cells[0], cells[1], cells[2], cells[3], cells[4]
            );
            for (org, o) in LlcOrgKind::ALL.iter().zip(&outcomes) {
                if let Outcome::Failed(e) = o {
                    println!("    {}: {e}", short(*org));
                }
                if let Outcome::Done {
                    conserved: false, ..
                } = o
                {
                    println!("    {}: work not conserved", short(*org));
                }
            }

            if sc.link_degradation {
                let tput = |i: usize| match &outcomes[i] {
                    Outcome::Done {
                        post_tput,
                        conserved: true,
                        ..
                    } => Some(*post_tput),
                    _ => None,
                };
                // ALL order: MemorySide, SmSide, StaticHalf, Dynamic, Sac.
                if let (Some(st), Some(dy), Some(sac)) = (tput(2), tput(3), tput(4)) {
                    let verdict = sac >= st && sac >= dy;
                    sac_beats_baselines_somewhere |= verdict;
                    println!(
                        "    post-fault: SAC {} Static ({:.1}) and Dynamic ({:.1}) -> {}",
                        if verdict { ">=" } else { "<" },
                        st,
                        dy,
                        if verdict {
                            "SAC sustains"
                        } else {
                            "SAC trails"
                        }
                    );
                }
            }
        }
        println!();
    }

    println!(
        "summary: SAC >= Static and Dynamic after a link-degradation fault: {}",
        if sac_beats_baselines_somewhere {
            "yes"
        } else {
            "NO"
        }
    );
}
