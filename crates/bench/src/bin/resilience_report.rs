//! Resilience report: how each LLC organization rides out injected
//! hardware faults — inter-chip link degradation/failure, DRAM channel
//! faults, and LLC slice loss.
//!
//! For every (benchmark, fault scenario, organization) triple the report
//! runs the workload with the scenario's `FaultPlan`, checks that all work
//! is conserved, and measures *post-fault throughput* (accesses retired
//! per kilocycle after the first fault hits) — the figure of merit for
//! graceful degradation. SAC's divergence monitor may re-profile and
//! re-decide after a fault; the baselines keep their fixed policy.
//!
//! The scenario set and per-run outcome logic live in
//! `sac_bench::resilience`, shared with the integration tests; the
//! (scenario × organization) grid fans out over the sweep pool.
//!
//! `cargo run --release -p sac-bench --bin resilience_report`
//! (pass `--quick` for a reduced-volume smoke run).

use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::LlcOrgKind;
use sac_bench::resilience::{run_grid, scenarios, Outcome};
use sac_bench::{exit_on_cell_failures, sweep, try_run_one};
use std::sync::Arc;

const SUBSET: [&str; 4] = ["SN", "BS", "SRAD", "GEMM"];

fn short(org: LlcOrgKind) -> &'static str {
    match org {
        LlcOrgKind::MemorySide => "MemSide",
        LlcOrgKind::SmSide => "SmSide",
        LlcOrgKind::StaticHalf => "Static",
        LlcOrgKind::Dynamic => "Dynamic",
        LlcOrgKind::Sac => "SAC",
    }
}

fn main() {
    let cfg = sac_bench::experiment_config();
    // Volume is deliberately smaller than the figure harnesses: the report
    // measures fault *response*, and at this working-set size a severe link
    // fault flips which LLC side is best mid-run — exactly the situation
    // SAC's divergence monitor exists for.
    let params = TraceParams {
        // The fastest benchmarks retire ~6.5 accesses/cycle: stay well
        // above FAULT_CYCLE * 6.5 so every run is still going at the fault.
        total_accesses: if sac_bench::quick_mode() {
            25_000
        } else {
            40_000
        },
        ..TraceParams::quick()
    };
    let scenarios = scenarios(&cfg);

    println!("resilience report: post-fault throughput (accesses/kcycle)");
    println!(
        "machine: {} chips, {} benchmarks, {} accesses each\n",
        cfg.chips,
        SUBSET.len(),
        params.total_accesses
    );

    // Workloads and their fault-free baselines fan out per benchmark; the
    // (scenario x organization) grid of each benchmark then fans out via
    // `run_grid`.
    let outcomes = sweep::map_isolated(SUBSET.to_vec(), |name, attempt| {
        let profile = profiles::by_name(name).expect("profile");
        let wl = generate(&cfg, &profile, &params);
        let mut scaled = cfg.clone();
        scaled.watchdog_cycles = sweep::escalate_budget(scaled.watchdog_cycles, attempt);
        let stats = try_run_one(&scaled, &wl, LlcOrgKind::MemorySide)?;
        Ok((Arc::new(wl), stats.reads + stats.writes))
    });
    let baselines: Vec<(Arc<Workload>, u64)> =
        exit_on_cell_failures(outcomes, |i| format!("{}/baseline", SUBSET[i]));

    let mut sac_beats_baselines_somewhere = false;
    for (name, (wl, expected)) in SUBSET.iter().zip(&baselines) {
        println!("== {name} ==");
        println!(
            "{:32} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "scenario",
            short(LlcOrgKind::MemorySide),
            short(LlcOrgKind::SmSide),
            short(LlcOrgKind::StaticHalf),
            short(LlcOrgKind::Dynamic),
            short(LlcOrgKind::Sac),
        );
        let grid = run_grid(&cfg, wl, *expected);
        for (sc, outcomes) in scenarios.iter().zip(&grid) {
            let cells: Vec<String> = outcomes
                .iter()
                .map(|o| match o {
                    Outcome::Done {
                        post_tput,
                        conserved: true,
                        ..
                    } => format!("{post_tput:.1}"),
                    Outcome::Done {
                        conserved: false, ..
                    } => "LOST!".to_string(),
                    Outcome::Failed(_) => "ERR".to_string(),
                })
                .collect();
            println!(
                "{:32} {:>10} {:>10} {:>10} {:>10} {:>10}",
                sc.name, cells[0], cells[1], cells[2], cells[3], cells[4]
            );
            for (org, o) in LlcOrgKind::ALL.iter().zip(outcomes) {
                if let Outcome::Failed(e) = o {
                    println!("    {}: {e}", short(*org));
                }
                if let Outcome::Done {
                    conserved: false, ..
                } = o
                {
                    println!("    {}: work not conserved", short(*org));
                }
            }

            if sc.link_degradation {
                let tput = |i: usize| match &outcomes[i] {
                    Outcome::Done {
                        post_tput,
                        conserved: true,
                        ..
                    } => Some(*post_tput),
                    _ => None,
                };
                // ALL order: MemorySide, SmSide, StaticHalf, Dynamic, Sac.
                if let (Some(st), Some(dy), Some(sac)) = (tput(2), tput(3), tput(4)) {
                    let verdict = sac >= st && sac >= dy;
                    sac_beats_baselines_somewhere |= verdict;
                    println!(
                        "    post-fault: SAC {} Static ({:.1}) and Dynamic ({:.1}) -> {}",
                        if verdict { ">=" } else { "<" },
                        st,
                        dy,
                        if verdict {
                            "SAC sustains"
                        } else {
                            "SAC trails"
                        }
                    );
                }
            }
        }
        println!();
    }

    println!(
        "summary: SAC >= Static and Dynamic after a link-degradation fault: {}",
        if sac_beats_baselines_somewhere {
            "yes"
        } else {
            "NO"
        }
    );
}
