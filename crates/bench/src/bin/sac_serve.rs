//! The sweep service daemon: a long-running HTTP/JSON front end for the
//! crash-safe sweep machinery (see `DESIGN.md`, "Sweep service daemon").
//!
//! ```text
//! sac_serve --state DIR [--addr HOST:PORT] [--max-queue N]
//!           [--stall-ms N] [--jobs N] [--checkpoint-interval N]
//! ```
//!
//! `--state DIR` (default `results/serve`) holds the run journal, the
//! request manifest and `serve.addr` (the bound address, for scripts;
//! `--addr 127.0.0.1:0` lets the OS pick a port). Restarting with the same
//! state directory recovers every acknowledged request: completed cells
//! replay byte-identically from the journal, interrupted ones re-execute.
//! `--max-queue N` bounds the admission queue (excess requests get 429 +
//! `Retry-After`); `--jobs N` bounds the simulation pool as in every other
//! harness binary; `--stall-ms N` is the chaos-test hook that delays each
//! fresh cell execution.
//!
//! `--checkpoint-interval N` (cycles; 0 = off, the default) enables
//! mid-cell engine checkpointing under `DIR/ckpt/`: a killed daemon's
//! in-flight cells resume mid-cycle from their latest snapshot on
//! restart, byte-identically to an uninterrupted run, and a background
//! reaper garbage-collects superseded or torn snapshots.
//!
//! API summary (one request per connection, JSON bodies):
//!
//! ```text
//! POST /v1/sweeps                       submit  {"id", "benchmarks", "orgs", ...}
//! GET  /v1/sweeps/<id>                  status document
//! GET  /v1/sweeps/<id>/events?from=N    chunked JSONL event stream
//! GET  /v1/sweeps/<id>/cells/<i>/stats  canonical stats JSON (byte-identical)
//! POST /v1/sweeps/<id>/cancel           cancel pending cells
//! GET  /v1/healthz                      liveness + queue depths
//! ```

use sac_bench::serve::{Server, ServerConfig};
use std::path::PathBuf;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let cfg = ServerConfig {
        addr: arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        state_dir: PathBuf::from(
            arg_value("--state").unwrap_or_else(|| "results/serve".to_string()),
        ),
        max_queue: arg_value("--max-queue")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        stall_ms: arg_value("--stall-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        ckpt_interval: arg_value("--checkpoint-interval")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };
    let state_dir = cfg.state_dir.clone();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sac_serve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // The scripted harness discovers the port from this line (and from
    // the `serve.addr` file in the state directory).
    println!("sac_serve listening http://{}", server.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "sac_serve: state {} | {} worker thread(s)",
        state_dir.display(),
        sac_bench::sweep::jobs()
    );
    server.join();
}
