//! Ad-hoc experiment CLI.
//!
//! ```text
//! sacsim [--bench NAME] [--org ORG] [--accesses N] [--input-scale X]
//!        [--chips N] [--topology ring|full|mesh2d]
//!        [--hw-coherence] [--sectored] [--json] [--jobs N] [--list-orgs]
//!        [--mode cycle|fast] [--skip-idle] [--list-modes]
//!        [--watchdog-cycles N] [--journal PATH] [--resume PATH]
//!        [--obs] [--obs-window N] [--obs-out PATH] [--trace-out PATH]
//!        [--checkpoint PATH] [--restore PATH] [--checkpoint-interval N]
//!        [--state-dir DIR] [--gc-state [--dry-run]]
//! ```
//!
//! ORG is any token or label from the LLC-organization registry
//! (`--list-orgs` prints them), or `all`. Prints the full run statistics;
//! `--org all` fans every organization out over the sweep pool and prints
//! a comparison table; `--json` prints the canonical golden-stat JSON
//! instead (single organization only).
//!
//! Machine shape: `--chips N` sets the chip count (default 4) and
//! `--topology` the inter-chip fabric (default `ring`; `full` and `mesh`
//! are accepted aliases of `fully-connected` and `mesh2d`). The combined
//! configuration is validated up front, so an over-wide machine or an
//! unknown label fails fast instead of quarantining sweep cells.
//!
//! Engine tier: `--mode cycle` (default) steps every cycle; `--mode fast`
//! evaluates cells with the analytic locality estimator instead (no cycle
//! simulation, so `--obs*`, `--trace-out`, `--checkpoint`, `--restore` and
//! `--state-dir` are rejected with it). `--skip-idle` turns on
//! event-driven idle-cycle skipping in cycle mode — byte-identical
//! statistics, purely a speed knob. `--list-modes` prints the registry.
//!
//! Robustness knobs: `--watchdog-cycles N` sets the forward-progress
//! watchdog window (`MCGPU_WATCHDOG_CYCLES` works too; `18446744073709551615`
//! = `u64::MAX` disables it). `--journal PATH` records every finished cell
//! to an append-only JSONL run journal; after an interruption,
//! `--resume PATH` replays completed cells byte-identically and re-runs
//! only missing or quarantined ones.
//!
//! Observability (single organization only; strictly read-only, so the
//! printed statistics stay byte-identical): `--obs` records latency
//! histograms and the epoch timeline, `--obs-window N` sets the timeline
//! window in cycles (default 10000), `--obs-out PATH` writes the canonical
//! observability JSON, and `--trace-out PATH` writes a Chrome `trace_event`
//! JSON (load in `chrome://tracing` or Perfetto). `--obs-out`/`--trace-out`
//! imply `--obs`; `--trace-out` raises the level to `trace`.
//!
//! Checkpoint/restore (single organization only): `--checkpoint PATH`
//! snapshots the full engine state to PATH every `--checkpoint-interval`
//! cycles (default 65536) and once more if the run aborts (watchdog,
//! cycle limit), so the budget can be extended across invocations;
//! `--restore PATH` resumes a run mid-cycle from a snapshot —
//! byte-identical output to the uninterrupted run. For sweeps,
//! `--state-dir DIR` checkpoints every cell under DIR and resumes
//! interrupted cells automatically; `--gc-state` (with `--state-dir`,
//! optionally `--resume JOURNAL` and `--dry-run`) reclaims superseded
//! snapshots, torn files and orphaned tmps instead of running anything.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, EngineMode, LlcOrgKind, ObsConfig, ResponseOrigin, TopologyKind};
use sac_bench::{
    exit_on_quarantine, run_benchmark, state, Journal, SweepOptions, DEFAULT_CKPT_INTERVAL,
};
use std::path::Path;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    if std::env::args().any(|a| a == "--list-orgs") {
        println!("{:8} {:12} summary", "token", "label");
        for d in &mcgpu_sim::org::REGISTRY {
            println!("{:8} {:12} {}", d.token, d.kind.label(), d.summary);
        }
        return;
    }
    if std::env::args().any(|a| a == "--list-modes") {
        println!("{:8} summary", "token");
        for d in &mcgpu_types::ENGINE_MODES {
            println!("{:8} {}", d.token, d.summary);
        }
        return;
    }
    if std::env::args().any(|a| a == "--gc-state") {
        let Some(dir) = arg_value("--state-dir") else {
            eprintln!("--gc-state needs --state-dir DIR");
            std::process::exit(2);
        };
        let journal = arg_value("--resume")
            .or_else(|| arg_value("--journal"))
            .map(|p| {
                Journal::open(&p).unwrap_or_else(|e| {
                    eprintln!("cannot open journal {p}: {e}");
                    std::process::exit(2);
                })
            });
        let dry_run = std::env::args().any(|a| a == "--dry-run");
        match state::gc_state(Path::new(&dir), journal.as_ref(), dry_run) {
            Ok(report) => print!("{}", report.render()),
            Err(e) => {
                eprintln!("gc-state failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let bench = arg_value("--bench").unwrap_or_else(|| "BFS".to_string());
    let org = match arg_value("--org").as_deref() {
        None => Some(LlcOrgKind::MemorySide),
        Some("all") => None,
        Some(other) => match mcgpu_sim::org::org_by_token(other) {
            Some(kind) => Some(kind),
            None => {
                let known: Vec<String> = mcgpu_sim::org::REGISTRY
                    .iter()
                    .map(|d| format!("{} ({})", d.token, d.kind.label()))
                    .collect();
                eprintln!(
                    "unknown organization {other}; known: {}, or `all` (see --list-orgs)",
                    known.join(", ")
                );
                std::process::exit(2);
            }
        },
    };
    let mut cfg = sac_bench::experiment_config();
    if std::env::args().any(|a| a == "--hw-coherence") {
        cfg.coherence = CoherenceKind::Hardware;
    }
    if std::env::args().any(|a| a == "--sectored") {
        cfg.sectored = true;
    }
    if let Some(n) = arg_value("--watchdog-cycles").and_then(|v| v.parse().ok()) {
        // Validated by MachineConfig::validate() when the simulator is
        // built; 0 is rejected there with a typed ConfigError.
        cfg.watchdog_cycles = n;
    }
    if let Some(v) = arg_value("--chips") {
        match v.parse::<usize>() {
            Ok(n) => cfg.chips = n,
            Err(_) => {
                eprintln!("--chips needs an unsigned integer, got `{v}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = arg_value("--topology") {
        match TopologyKind::from_label(&v) {
            Some(k) => cfg.topology = k,
            None => {
                let known: Vec<&str> = TopologyKind::ALL.iter().map(|t| t.label()).collect();
                eprintln!("unknown topology `{v}`; known: {}", known.join(", "));
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid machine configuration: {e}");
        std::process::exit(2);
    }
    let mut params = TraceParams::standard();
    if let Some(n) = arg_value("--accesses").and_then(|v| v.parse().ok()) {
        params.total_accesses = n;
    }
    if let Some(x) = arg_value("--input-scale").and_then(|v| v.parse().ok()) {
        params = params.with_input_scale(x);
    }

    let Some(profile) = profiles::by_name(&bench) else {
        eprintln!(
            "unknown benchmark {bench}; known: {:?}",
            profiles::all_profiles()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
        );
        std::process::exit(2);
    };
    let opts = SweepOptions::from_args();

    let trace_out = arg_value("--trace-out");
    let obs_out = arg_value("--obs-out");
    let obs_requested =
        std::env::args().any(|a| a == "--obs") || obs_out.is_some() || trace_out.is_some();
    let ckpt_path = arg_value("--checkpoint");
    let restore_path = arg_value("--restore");

    // The fast tier has no cycles, so there is nothing to observe, trace,
    // checkpoint or restore — reject the combination up front instead of
    // silently running the wrong engine.
    if opts.mode == EngineMode::Fast {
        if obs_requested {
            eprintln!("--mode fast has no cycle engine to observe; drop --obs/--obs-out/--trace-out or use --mode cycle");
            std::process::exit(2);
        }
        if ckpt_path.is_some() || restore_path.is_some() || opts.state_dir.is_some() {
            eprintln!("--mode fast runs have no mid-run state; drop --checkpoint/--restore/--state-dir or use --mode cycle");
            std::process::exit(2);
        }
    }

    let Some(org) = org else {
        if obs_requested {
            eprintln!("--obs/--obs-out/--trace-out need a single --org, not `all`");
            std::process::exit(2);
        }
        if ckpt_path.is_some() || restore_path.is_some() {
            eprintln!("--checkpoint/--restore need a single --org, not `all` (use --state-dir for sweeps)");
            std::process::exit(2);
        }
        // --org all: fan every organization out over the sweep pool and
        // print a comparison table relative to the memory-side baseline.
        let rows = exit_on_quarantine(run_benchmark(
            &cfg,
            &profile,
            &params,
            &LlcOrgKind::ALL,
            &opts,
        ));
        let mem_cycles = rows.runs[0].1.cycles;
        println!(
            "benchmark: {} ({} accesses, input x{}) on {} chips, {} fabric\n",
            bench,
            rows.workload.total_accesses(),
            params.input_scale,
            cfg.chips,
            cfg.topology.label()
        );
        println!(
            "{:12} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "organization", "cycles", "acc/cyc", "speedup", "LLC miss", "local"
        );
        for (org, s) in &rows.runs {
            println!(
                "{:12} {:>10} {:>10.3} {:>8.2}x {:>9.3} {:>9.3}",
                org.label(),
                s.cycles,
                s.perf(),
                mem_cycles as f64 / s.cycles as f64,
                s.llc_miss_rate(),
                s.llc_local_fraction
            );
        }
        return;
    };
    let (stats, report, total_accesses) =
        if obs_requested || ckpt_path.is_some() || restore_path.is_some() {
            // Direct single-simulator path: observability and/or explicit
            // checkpoint/restore of this one run.
            let mut obs = if trace_out.is_some() {
                ObsConfig::trace()
            } else if obs_requested {
                ObsConfig::metrics()
            } else {
                ObsConfig::off()
            };
            if let Some(w) = arg_value("--obs-window").and_then(|v| v.parse().ok()) {
                obs = obs.with_epoch_window(w);
            }
            let interval = arg_value("--checkpoint-interval")
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CKPT_INTERVAL);
            let wl = generate(&cfg, &profile, &params);
            let total = wl.total_accesses();
            let mut b = SimBuilder::new(cfg.clone())
                .organization(org)
                .skip_idle(opts.skip_idle)
                .observability(obs);
            if let Some(p) = &ckpt_path {
                b = b.checkpoint_to(p, interval);
            }
            let mut sim = b.build().unwrap_or_else(|e| {
                eprintln!("{bench}/{org}: {e}");
                std::process::exit(1);
            });
            if let Some(p) = &restore_path {
                // An explicit --restore failing is a user error, not a
                // fall-back situation: fail loudly instead of silently
                // re-running from cycle 0.
                sim.restore_from_file(Path::new(p), &wl)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot restore {p}: {e}");
                        std::process::exit(1);
                    });
                eprintln!("restored {p}; resuming at cycle {}", sim.cycle());
            }
            let stats = match sim.run(&wl) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{bench}/{org}: {e}");
                    // Leave a resume point behind an aborted budget (cycle
                    // limit, watchdog): `--restore` continues this exact run.
                    if let Some(p) = &ckpt_path {
                        match sim.write_checkpoint(Path::new(p), &wl) {
                            Ok(()) => eprintln!(
                                "wrote checkpoint {p} at cycle {}; resume with --restore {p}",
                                sim.cycle()
                            ),
                            Err(we) => eprintln!("cannot write checkpoint {p}: {we}"),
                        }
                    }
                    std::process::exit(1);
                }
            };
            let report = sim.take_obs_report();
            (stats, report, total)
        } else {
            let rows = exit_on_quarantine(run_benchmark(&cfg, &profile, &params, &[org], &opts));
            let total = rows.workload.total_accesses();
            (rows.stats(org).clone(), None, total)
        };
    let stats = &stats;
    if let Some(r) = &report {
        if let Some(path) = &obs_out {
            std::fs::write(path, r.to_canonical_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
        if let Some(path) = &trace_out {
            let trace = r.trace_json.as_deref().expect("trace level was requested");
            std::fs::write(path, trace).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        }
    }
    if std::env::args().any(|a| a == "--json") {
        print!("{}", stats.to_canonical_json());
        return;
    }

    println!(
        "benchmark          : {} ({} accesses, input x{})",
        bench, total_accesses, params.input_scale
    );
    println!(
        "machine            : {} chips, {} fabric",
        cfg.chips,
        cfg.topology.label()
    );
    println!("organization       : {}", org.label());
    println!("cycles             : {}", stats.cycles);
    println!("performance        : {:.3} accesses/cycle", stats.perf());
    println!("L1 miss rate       : {:.3}", stats.l1.miss_rate());
    println!("LLC miss rate      : {:.3}", stats.llc_miss_rate());
    println!("LLC local fraction : {:.3}", stats.llc_local_fraction);
    println!(
        "effective LLC bw   : {:.3} responses/cycle",
        stats.effective_llc_bandwidth()
    );
    for o in ResponseOrigin::ALL {
        println!(
            "  from {:10}    : {:.3}/cycle",
            o.label(),
            stats.response_rate(o)
        );
    }
    println!(
        "ring traffic       : {:.1} B/cycle",
        stats.ring_bytes as f64 / stats.cycles as f64
    );
    println!(
        "DRAM reads/writes  : {} / {}",
        stats.dram_reads, stats.dram_writes
    );
    println!("overhead cycles    : {}", stats.overhead_cycles);
    if !stats.sac_history.is_empty() {
        println!("SAC decisions:");
        for (i, r) in stats.sac_history.iter().enumerate() {
            println!("  kernel {i}: {} (EAB mem {:.0} vs sm {:.0}, R_local {:.2}, hitM {:.2}, hitS {:.2})",
                r.mode, r.eab_memory_side, r.eab_sm_side,
                r.inputs.r_local, r.inputs.llc_hit_memory_side, r.inputs.llc_hit_sm_side);
        }
    }
    if let Some(r) = &report {
        println!(
            "latency (cycles)   : {:>10} {:>9} {:>7} {:>7} {:>7}",
            "class", "count", "p50", "p90", "p99"
        );
        for o in ResponseOrigin::ALL {
            let h = r.class_histogram(o);
            println!(
                "  {:>18} {:>9} {:>7} {:>7} {:>7}",
                o.label(),
                h.count(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99)
            );
        }
        println!(
            "timeline           : {} epoch(s) of {} cycles",
            r.timeline.len(),
            r.epoch_window
        );
        if let Some(path) = &obs_out {
            println!("obs report         : wrote {path}");
        }
        if let Some(path) = &trace_out {
            println!("event trace        : wrote {path}");
        }
    }
}
