//! Ad-hoc experiment CLI.
//!
//! ```text
//! sacsim [--bench NAME] [--org ORG] [--accesses N] [--input-scale X] [--hw-coherence] [--sectored]
//! ```
//!
//! ORG in {mem, sm, static, dynamic, sac}. Prints the full run statistics.

use mcgpu_sim::SimBuilder;
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, ResponseOrigin};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let bench = arg_value("--bench").unwrap_or_else(|| "BFS".to_string());
    let org = match arg_value("--org").as_deref() {
        Some("mem") | None => LlcOrgKind::MemorySide,
        Some("sm") => LlcOrgKind::SmSide,
        Some("static") => LlcOrgKind::StaticHalf,
        Some("dynamic") => LlcOrgKind::Dynamic,
        Some("sac") => LlcOrgKind::Sac,
        Some(other) => {
            eprintln!("unknown organization {other}; use mem|sm|static|dynamic|sac");
            std::process::exit(2);
        }
    };
    let mut cfg = sac_bench::experiment_config();
    if std::env::args().any(|a| a == "--hw-coherence") {
        cfg.coherence = CoherenceKind::Hardware;
    }
    if std::env::args().any(|a| a == "--sectored") {
        cfg.sectored = true;
    }
    let mut params = TraceParams::standard();
    if let Some(n) = arg_value("--accesses").and_then(|v| v.parse().ok()) {
        params.total_accesses = n;
    }
    if let Some(x) = arg_value("--input-scale").and_then(|v| v.parse().ok()) {
        params = params.with_input_scale(x);
    }

    let Some(profile) = profiles::by_name(&bench) else {
        eprintln!(
            "unknown benchmark {bench}; known: {:?}",
            profiles::all_profiles()
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
        );
        std::process::exit(2);
    };
    let wl = generate(&cfg, &profile, &params);
    let stats = SimBuilder::new(cfg)
        .organization(org)
        .build()
        .expect("valid machine configuration")
        .run(&wl)
        .expect("run");

    println!(
        "benchmark          : {} ({} accesses, input x{})",
        bench,
        wl.total_accesses(),
        params.input_scale
    );
    println!("organization       : {}", org.label());
    println!("cycles             : {}", stats.cycles);
    println!("performance        : {:.3} accesses/cycle", stats.perf());
    println!("L1 miss rate       : {:.3}", stats.l1.miss_rate());
    println!("LLC miss rate      : {:.3}", stats.llc_miss_rate());
    println!("LLC local fraction : {:.3}", stats.llc_local_fraction);
    println!(
        "effective LLC bw   : {:.3} responses/cycle",
        stats.effective_llc_bandwidth()
    );
    for o in ResponseOrigin::ALL {
        println!(
            "  from {:10}    : {:.3}/cycle",
            o.label(),
            stats.response_rate(o)
        );
    }
    println!(
        "ring traffic       : {:.1} B/cycle",
        stats.ring_bytes as f64 / stats.cycles as f64
    );
    println!(
        "DRAM reads/writes  : {} / {}",
        stats.dram_reads, stats.dram_writes
    );
    println!("overhead cycles    : {}", stats.overhead_cycles);
    if !stats.sac_history.is_empty() {
        println!("SAC decisions:");
        for (i, r) in stats.sac_history.iter().enumerate() {
            println!("  kernel {i}: {} (EAB mem {:.0} vs sm {:.0}, R_local {:.2}, hitM {:.2}, hitS {:.2})",
                r.mode, r.eab_memory_side, r.eab_sm_side,
                r.inputs.r_local, r.inputs.llc_hit_memory_side, r.inputs.llc_hit_sm_side);
        }
    }
}
