//! Regenerates Table 3: the simulated baseline configuration, at paper
//! scale and at the experiment scale used by the figure harnesses.
//!
//! Runs through the sweep machinery, so `--journal PATH` / `--resume PATH`
//! / `--jobs N` work exactly as they do for the figure harnesses.

use mcgpu_types::MachineConfig;
use sac_bench::{exit_on_quarantine, run_report_sections, ReportSection, SweepOptions};
use std::fmt::Write as _;

fn render_cfg(label: &str, c: &MachineConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {label} ==");
    let _ = writeln!(out, "  chips                  : {}", c.chips);
    let _ = writeln!(
        out,
        "  SMs                    : {} per chip, {} total",
        c.clusters_per_chip * 2,
        c.chips * c.clusters_per_chip * 2
    );
    let _ = writeln!(
        out,
        "  SM clusters            : {} per chip",
        c.clusters_per_chip
    );
    let _ = writeln!(
        out,
        "  GPU frequency          : 1 GHz (1 GB/s == 1 B/cycle)"
    );
    let _ = writeln!(
        out,
        "  inter-chip bandwidth   : {:.0} GB/s per chip pair per direction ({} links/pair)",
        c.interchip_pair_gbs, c.links_per_pair
    );
    let _ = writeln!(
        out,
        "  LLC bandwidth          : {} slices x {:.0} GB/s = {:.0} GB/s total",
        c.total_slices(),
        c.llc_slice_gbs,
        c.llc_slice_gbs * c.total_slices() as f64
    );
    let _ = writeln!(
        out,
        "  DRAM bandwidth         : {} channels, {:.2} TB/s total ({})",
        c.chips * c.channels_per_chip,
        c.total_dram_gbs() / 1000.0,
        c.memory_interface.label()
    );
    let _ = writeln!(
        out,
        "  L1 data cache          : {} KiB per cluster, {}-way",
        c.l1_bytes_per_cluster >> 10,
        c.l1_assoc
    );
    let _ = writeln!(
        out,
        "  LLC capacity           : {} B lines, {} KiB per chip, {} KiB total, {}-way",
        c.line_size,
        c.llc_bytes_per_chip >> 10,
        c.total_llc_bytes() >> 10,
        c.llc_assoc
    );
    let _ = writeln!(
        out,
        "  page size / allocation : {} B, first-touch",
        c.page_size
    );
    let _ = writeln!(
        out,
        "  CTA allocation         : distributed CTA scheduling (bounded wave)"
    );
    let _ = writeln!(out, "  coherence              : {:?}", c.coherence);
    let _ = writeln!(out, "  MSHRs per cluster      : {}", c.mshrs_per_cluster);
    let _ = writeln!(
        out,
        "  scale                  : topology /{}, capacity /{}",
        c.scale.topology, c.scale.capacity
    );
    let _ = writeln!(out);
    out
}

fn main() {
    let opts = SweepOptions::from_args();
    let sections = [
        ReportSection {
            name: "paper-baseline",
            inputs: format!("{:?}", MachineConfig::paper_baseline()),
            render: || render_cfg("Table 3 (paper baseline)", &MachineConfig::paper_baseline()),
        },
        ReportSection {
            name: "experiment-baseline",
            inputs: format!("{:?}", sac_bench::experiment_config()),
            render: || {
                render_cfg(
                    "Experiment baseline (scaled; all ratios preserved)",
                    &sac_bench::experiment_config(),
                )
            },
        },
    ];
    for text in exit_on_quarantine(run_report_sections("table03_config", &sections, &opts)) {
        print!("{text}");
    }
}
