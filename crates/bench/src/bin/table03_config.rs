//! Regenerates Table 3: the simulated baseline configuration, at paper
//! scale and at the experiment scale used by the figure harnesses.

use mcgpu_types::MachineConfig;

fn print_cfg(label: &str, c: &MachineConfig) {
    println!("== {label} ==");
    println!("  chips                  : {}", c.chips);
    println!(
        "  SMs                    : {} per chip, {} total",
        c.clusters_per_chip * 2,
        c.chips * c.clusters_per_chip * 2
    );
    println!(
        "  SM clusters            : {} per chip",
        c.clusters_per_chip
    );
    println!("  GPU frequency          : 1 GHz (1 GB/s == 1 B/cycle)");
    println!(
        "  inter-chip bandwidth   : {:.0} GB/s per chip pair per direction ({} links/pair)",
        c.interchip_pair_gbs, c.links_per_pair
    );
    println!(
        "  LLC bandwidth          : {} slices x {:.0} GB/s = {:.0} GB/s total",
        c.total_slices(),
        c.llc_slice_gbs,
        c.llc_slice_gbs * c.total_slices() as f64
    );
    println!(
        "  DRAM bandwidth         : {} channels, {:.2} TB/s total ({})",
        c.chips * c.channels_per_chip,
        c.total_dram_gbs() / 1000.0,
        c.memory_interface.label()
    );
    println!(
        "  L1 data cache          : {} KiB per cluster, {}-way",
        c.l1_bytes_per_cluster >> 10,
        c.l1_assoc
    );
    println!(
        "  LLC capacity           : {} B lines, {} KiB per chip, {} KiB total, {}-way",
        c.line_size,
        c.llc_bytes_per_chip >> 10,
        c.total_llc_bytes() >> 10,
        c.llc_assoc
    );
    println!("  page size / allocation : {} B, first-touch", c.page_size);
    println!("  CTA allocation         : distributed CTA scheduling (bounded wave)");
    println!("  coherence              : {:?}", c.coherence);
    println!("  MSHRs per cluster      : {}", c.mshrs_per_cluster);
    println!(
        "  scale                  : topology /{}, capacity /{}",
        c.scale.topology, c.scale.capacity
    );
    println!();
}

fn main() {
    print_cfg("Table 3 (paper baseline)", &MachineConfig::paper_baseline());
    print_cfg(
        "Experiment baseline (scaled; all ratios preserved)",
        &sac_bench::experiment_config(),
    );
}
