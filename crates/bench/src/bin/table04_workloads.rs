//! Regenerates Table 4: CTAs, footprint, truly- and falsely-shared MB per
//! benchmark — the paper's published values next to what our generated
//! traces actually measure (paper-equivalent scale).
//!
//! `--json PATH` additionally writes the table's structured data as a
//! canonical `mcgpu-figdata-v1` document.

use mcgpu_trace::{analysis, generate, profiles};
use sac_bench::figdata::{emit, Table4Data};
use sac_bench::sweep;

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    // Generation + characterization of the 16 workloads fans out over the
    // sweep pool as isolated cells; rows come back in suite order and one
    // bad workload cannot sink the table.
    let outcomes = sweep::map_isolated(profiles::all_profiles(), |p, _attempt| {
        let wl = generate(&cfg, p, &params);
        Ok((p.clone(), analysis::characterize(&cfg, &wl)))
    });
    let rows = sac_bench::exit_on_cell_failures(outcomes, |i| {
        profiles::all_profiles()[i].name.to_string()
    });
    emit(&Table4Data::compute(&rows));
}
