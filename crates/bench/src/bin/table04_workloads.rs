//! Regenerates Table 4: CTAs, footprint, truly- and falsely-shared MB per
//! benchmark — the paper's published values next to what our generated
//! traces actually measure (paper-equivalent scale).

use mcgpu_trace::{analysis, generate, profiles};
use sac_bench::sweep;

fn main() {
    let cfg = sac_bench::experiment_config();
    let params = sac_bench::trace_params();
    println!(
        "{:6} {:>8} | {:>9} {:>9} | {:>8} {:>8} | {:>8} {:>8}",
        "bench", "CTAs", "fp(paper)", "fp(meas)", "TS(paper)", "TS(meas)", "FS(paper)", "FS(meas)"
    );
    // Generation + characterization of the 16 workloads fans out over the
    // sweep pool as isolated cells; rows come back in suite order and one
    // bad workload cannot sink the table.
    let outcomes = sweep::map_isolated(profiles::all_profiles(), |p, _attempt| {
        let wl = generate(&cfg, p, &params);
        Ok((p.clone(), analysis::characterize(&cfg, &wl)))
    });
    let rows = sac_bench::exit_on_cell_failures(outcomes, |i| {
        profiles::all_profiles()[i].name.to_string()
    });
    for (p, m) in rows {
        println!(
            "{:6} {:>8} | {:>9.0} {:>9.0} | {:>8.0} {:>8.1} | {:>8.0} {:>8.1}",
            p.name,
            p.ctas,
            p.footprint_mb,
            m.footprint_mb,
            p.true_shared_mb,
            m.true_shared_mb,
            p.false_shared_mb,
            m.false_shared_mb
        );
    }
    println!("\n(measured = from the generated trace, rescaled to paper-equivalent MB;");
    println!(" measured footprint covers only pages the trace volume actually touches)");
}
