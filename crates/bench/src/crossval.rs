//! Cycle-vs-fast cross-validation of the two-tier engine.
//!
//! Fast mode (`sacsim --mode fast`) predicts cell-level outcomes from an
//! analytic model instead of cycle simulation, so its accuracy has to be
//! *measured*, not assumed. This module runs every golden case (the same
//! fixed suite `tests/golden.rs` snapshots) through both engines and
//! tabulates the prediction error along three dimensions:
//!
//! * **LLC hit rate** — absolute error in hit-rate points;
//! * **fabric bytes** — relative error of inter-chip traffic;
//! * **DRAM traffic** — relative error of reads + writes.
//!
//! The `crossval` binary renders the table, folds the errors into the
//! shared [`crate::figcheck::Metrics`] lookup (as
//! [`mcgpu_types::expect::Metric::CrossvalErr`] values)
//! and scores them against `expectations/crossval.json` — band checks at
//! `shape` severity, so a fast-mode accuracy regression gates CI exactly
//! like a figure-shape regression.

use crate::figcheck::Metrics;
use crate::{fastmode, golden, sweep};
use mcgpu_sim::RunStats;
use mcgpu_trace::{generate, profiles};
use mcgpu_types::CrossvalField;

/// One golden case measured under both engines.
#[derive(Debug, Clone)]
pub struct CrossvalRow {
    /// Golden case name (`sn_sac`, …).
    pub case: &'static str,
    /// LLC hit rate under the cycle engine.
    pub cycle_hit_rate: f64,
    /// LLC hit rate predicted by fast mode.
    pub fast_hit_rate: f64,
    /// Inter-chip fabric bytes under the cycle engine.
    pub cycle_fabric: u64,
    /// Inter-chip fabric bytes predicted by fast mode.
    pub fast_fabric: u64,
    /// DRAM reads + writes under the cycle engine.
    pub cycle_dram: u64,
    /// DRAM reads + writes predicted by fast mode.
    pub fast_dram: u64,
}

fn hit_rate(s: &RunStats) -> f64 {
    if s.llc.accesses == 0 {
        0.0
    } else {
        s.llc.hits as f64 / s.llc.accesses as f64
    }
}

/// `|fast − cycle| / cycle`, with a unit floor on the denominator so a
/// zero-traffic reference cannot divide by zero (then the error is just
/// the stray byte count, which any sane band still catches).
fn rel_err(cycle: u64, fast: u64) -> f64 {
    (fast as f64 - cycle as f64).abs() / (cycle.max(1)) as f64
}

impl CrossvalRow {
    /// The error value of one [`CrossvalField`] dimension.
    pub fn error(&self, field: CrossvalField) -> f64 {
        match field {
            CrossvalField::LlcHitAbsErr => (self.fast_hit_rate - self.cycle_hit_rate).abs(),
            CrossvalField::FabricRelErr => rel_err(self.cycle_fabric, self.fast_fabric),
            CrossvalField::DramRelErr => rel_err(self.cycle_dram, self.fast_dram),
        }
    }
}

/// Run the full golden suite under both engines and tabulate the errors.
/// Cycle runs fan out over the sweep pool; the fast predictions are cheap
/// and run inline. Deterministic (both engines are).
pub fn crossval_rows() -> Vec<CrossvalRow> {
    let cases = golden::suite();
    sweep::map(cases.into_iter().collect(), |c| {
        let cfg = c.config();
        let profile = profiles::by_name(c.bench).expect("known benchmark");
        let wl = generate(&cfg, &profile, &golden::Case::params());
        let cycle = crate::try_run_one(&cfg, &wl, c.org).expect("golden case completes");
        let fast = fastmode::run_fast(&cfg, &wl, c.org);
        CrossvalRow {
            case: c.name,
            cycle_hit_rate: hit_rate(&cycle),
            fast_hit_rate: hit_rate(&fast),
            cycle_fabric: cycle.ring_bytes,
            fast_fabric: fast.ring_bytes,
            cycle_dram: cycle.dram_reads + cycle.dram_writes,
            fast_dram: fast.dram_reads + fast.dram_writes,
        }
    })
}

/// Fold the rows into a [`Metrics`] table keyed by case name and error
/// field, ready for [`crate::figcheck::evaluate`].
pub fn crossval_metrics(rows: &[CrossvalRow]) -> Metrics {
    let mut m = Metrics::new();
    for r in rows {
        for field in CrossvalField::ALL {
            m.insert_crossval_err(r.case, field, r.error(field));
        }
    }
    m
}

/// The human-readable error table: one line per golden case with both
/// engines' values and the derived errors.
pub fn render_table(rows: &[CrossvalRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:18} {:>7} {:>7} {:>6}  {:>12} {:>12} {:>6}  {:>10} {:>10} {:>6}",
        "case",
        "hit.cy",
        "hit.fa",
        "d.pts",
        "fabric.cy",
        "fabric.fa",
        "rel",
        "dram.cy",
        "dram.fa",
        "rel"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:18} {:>7.4} {:>7.4} {:>6.4}  {:>12} {:>12} {:>6.3}  {:>10} {:>10} {:>6.3}",
            r.case,
            r.cycle_hit_rate,
            r.fast_hit_rate,
            r.error(CrossvalField::LlcHitAbsErr),
            r.cycle_fabric,
            r.fast_fabric,
            r.error(CrossvalField::FabricRelErr),
            r.cycle_dram,
            r.fast_dram,
            r.error(CrossvalField::DramRelErr),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> CrossvalRow {
        CrossvalRow {
            case: "sn_sac",
            cycle_hit_rate: 0.50,
            fast_hit_rate: 0.46,
            cycle_fabric: 1_000,
            fast_fabric: 1_100,
            cycle_dram: 400,
            fast_dram: 300,
        }
    }

    #[test]
    fn errors_are_absolute_points_and_relative_fractions() {
        let r = row();
        assert!((r.error(CrossvalField::LlcHitAbsErr) - 0.04).abs() < 1e-12);
        assert!((r.error(CrossvalField::FabricRelErr) - 0.1).abs() < 1e-12);
        assert!((r.error(CrossvalField::DramRelErr) - 0.25).abs() < 1e-12);
        // A zero-traffic reference does not divide by zero.
        assert_eq!(rel_err(0, 0), 0.0);
        assert!(rel_err(0, 5) > 0.0);
    }

    #[test]
    fn metrics_table_carries_every_dimension_of_every_row() {
        let rows = vec![row()];
        let m = crossval_metrics(&rows);
        assert_eq!(m.len(), CrossvalField::ALL.len());
        let v = m.value(&mcgpu_types::Metric::CrossvalErr {
            case: "sn_sac".to_string(),
            field: CrossvalField::DramRelErr,
        });
        assert!((v.unwrap() - 0.25).abs() < 1e-12);
        let table = render_table(&rows);
        assert!(table.contains("sn_sac"), "{table}");
    }
}
