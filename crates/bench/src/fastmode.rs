//! Fast-mode cell evaluation (tier two of the two-tier engine).
//!
//! `run_fast` evaluates a (machine × workload × organization) cell without
//! cycle simulation: it filters each cluster's trace through a private L1
//! model once, aggregates per-kernel locality profiles
//! ([`sac::KernelProfile`]), and hands them to the analytic estimator in
//! [`sac::estimate`]. The result is packaged as a [`RunStats`] so the
//! sweep, journal, figure and figcheck machinery run unchanged in either
//! mode.
//!
//! The profile extraction is organization-independent (one pass per
//! workload regardless of how many organizations are swept) and fully
//! deterministic, so fast-mode cells replay byte-identically from a
//! journal exactly like cycle-mode cells.
//!
//! # What the fabricated `RunStats` means
//!
//! Estimated fields: `cycles`, `reads`/`writes`, the `l1` and `llc` hit
//! counters, `responses_by_origin` (split by the estimated hit rate and
//! local fraction), `llc_local_fraction`, `llc_occupancy`, `ring_bytes`,
//! `dram_reads`/`dram_writes`, per-kernel cycles and the SAC decision
//! history. Fields fast mode deliberately does **not** model are zero:
//! `overhead_cycles` (reconfiguration drains), `max_in_flight` (MSHR
//! pressure), and the LLC `evictions`/`fill_rejections` micro-counters.
//! Accuracy against the cycle engine is measured by the `crossval` binary
//! and pinned in `expectations/crossval.json` (see `EXPERIMENTS.md`).

use mcgpu_cache::CacheStats;
use mcgpu_sim::stats::{KernelStats, RunStats};
use mcgpu_trace::Workload;
use mcgpu_types::{AccessKind, LlcOrgKind, MachineConfig};
use sac::{estimate_cell, KernelProfile, SacConfig};
use std::collections::HashSet;

/// A minimal write-through, no-write-allocate set-associative L1 filter
/// mirroring the cycle engine's cluster cache geometry: reads fill on
/// miss, writes touch the line (refreshing recency) but never allocate.
struct L1Filter {
    /// Per set: resident line indices, least recently used first.
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl L1Filter {
    fn new(cfg: &MachineConfig) -> Self {
        let lines = (cfg.l1_bytes_per_cluster / cfg.line_size).max(1) as usize;
        let ways = cfg.l1_assoc.clamp(1, lines);
        L1Filter {
            sets: vec![Vec::with_capacity(ways); (lines / ways).max(1)],
            ways,
        }
    }

    /// Look up `line`; on a read miss, fill it. Returns whether it hit.
    fn access(&mut self, line: u64, kind: AccessKind) -> bool {
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            return true;
        }
        if kind == AccessKind::Read {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
        }
        false
    }
}

/// Extract one locality profile per kernel launch. L1 contents persist
/// across kernels, matching the cycle engine's private caches. Reuse is
/// tracked at granule granularity — a line, or a sector on sectored
/// machines (touching a new sector of a resident line is a sector miss in
/// the cycle engine, so it must not look like reuse here).
pub fn profile_workload(cfg: &MachineConfig, wl: &Workload) -> Vec<KernelProfile> {
    let chips = cfg.chips;
    let granule = if cfg.sectored {
        cfg.line_size / u64::from(cfg.sectors_per_line)
    } else {
        cfg.line_size
    };
    let mut l1s: Vec<L1Filter> = (0..chips * cfg.clusters_per_chip)
        .map(|_| L1Filter::new(cfg))
        .collect();
    // Cumulative post-L1 footprints, per home chip and per requester's
    // locally-homed set, merged at kernel boundaries so that membership
    // during a kernel reflects "seen in an *earlier* kernel".
    let mut ever_homed: Vec<HashSet<u64>> = vec![HashSet::new(); chips];
    let mut ever_local: Vec<HashSet<u64>> = vec![HashSet::new(); chips];
    let mut out = Vec::with_capacity(wl.kernels.len());
    for kernel in &wl.kernels {
        let mut p = KernelProfile {
            local_accesses: vec![0; chips],
            remote_accesses: vec![0; chips],
            distinct_local: vec![0; chips],
            distinct_remote: vec![0; chips],
            homed_accesses: vec![0; chips],
            distinct_homed: vec![0; chips],
            prior_homed: vec![0; chips],
            prior_local: vec![0; chips],
            cum_distinct_homed: vec![0; chips],
            cum_distinct_local: vec![0; chips],
            ..KernelProfile::default()
        };
        let mut seen_local: Vec<HashSet<u64>> = vec![HashSet::new(); chips];
        let mut seen_remote: Vec<HashSet<u64>> = vec![HashSet::new(); chips];
        let mut seen_homed: Vec<HashSet<u64>> = vec![HashSet::new(); chips];
        let slots = 1 + u64::from(kernel.behavior.compute_gap);
        for (flat, stream) in kernel.per_cluster.iter().enumerate() {
            let requester = flat / cfg.clusters_per_chip;
            p.issue_cycles = p.issue_cycles.max(stream.len() as u64 * slots);
            let l1 = &mut l1s[flat];
            for acc in stream.iter() {
                let g = acc.addr.raw() / granule;
                p.l1_accesses += 1;
                let hit = l1.access(g, acc.kind);
                if hit {
                    p.l1_hits += 1;
                }
                // Post-L1 traffic: read misses and every write (the L1 is
                // write-through).
                let reaches_llc = acc.kind == AccessKind::Write || !hit;
                if !reaches_llc {
                    continue;
                }
                let home = wl
                    .layout
                    .natural_home(acc.addr.page(cfg.page_size))
                    .map_or(requester, |c| c.index());
                if acc.kind == AccessKind::Write {
                    p.writes += 1;
                } else {
                    p.reads += 1;
                }
                p.homed_accesses[home] += 1;
                if ever_homed[home].contains(&g) {
                    p.prior_homed[home] += 1;
                }
                if seen_homed[home].insert(g) {
                    p.distinct_homed[home] += 1;
                }
                if home == requester {
                    p.local_accesses[requester] += 1;
                    if ever_local[requester].contains(&g) {
                        p.prior_local[requester] += 1;
                    }
                    if seen_local[requester].insert(g) {
                        p.distinct_local[requester] += 1;
                    }
                } else {
                    p.remote_accesses[requester] += 1;
                    if seen_remote[requester].insert(g) {
                        p.distinct_remote[requester] += 1;
                    }
                }
            }
        }
        for c in 0..chips {
            ever_homed[c].extend(seen_homed[c].iter().copied());
            ever_local[c].extend(seen_local[c].iter().copied());
            p.cum_distinct_homed[c] = ever_homed[c].len() as u64;
            p.cum_distinct_local[c] = ever_local[c].len() as u64;
        }
        out.push(p);
    }
    out
}

/// Evaluate one cell analytically, fabricating a [`RunStats`] from the
/// estimator's predictions. Deterministic: same inputs, same bytes.
pub fn run_fast(cfg: &MachineConfig, wl: &Workload, org: LlcOrgKind) -> RunStats {
    let profiles = profile_workload(cfg, wl);
    let est = estimate_cell(cfg, &SacConfig::for_machine(cfg), org, &profiles);

    // The L1 is write-through, so every trace-level write reaches the LLC:
    // the post-L1 write count *is* the completed write count, and trace
    // reads are everything else.
    let writes: u64 = profiles.iter().map(|p| p.writes).sum();
    let reads: u64 = profiles.iter().map(|p| p.l1_accesses).sum::<u64>() - writes;
    let l1_accesses: u64 = profiles.iter().map(|p| p.l1_accesses).sum();
    let l1_hits: u64 = profiles.iter().map(|p| p.l1_hits).sum();
    let llc_misses = est.llc_accesses - est.llc_hits;

    // Split read responses by the estimated hit rate and locality: LLC
    // hits come from a slice, misses from a memory partition, each side
    // divided local/remote by the mean local fraction.
    let read_frac = if est.llc_accesses == 0 {
        0.0
    } else {
        let post_l1_reads: u64 = profiles.iter().map(|p| p.reads).sum();
        post_l1_reads as f64 / est.llc_accesses as f64
    };
    let lf = est.llc_local_fraction;
    let hit_reads = est.llc_hits as f64 * read_frac;
    let miss_reads = llc_misses as f64 * read_frac;
    let responses_by_origin = [
        (hit_reads * lf).round() as u64,
        (hit_reads * (1.0 - lf)).round() as u64,
        (miss_reads * lf).round() as u64,
        (miss_reads * (1.0 - lf)).round() as u64,
    ];

    // Occupancy proxy: the largest kernel footprint against total LLC
    // capacity.
    let cap_lines = (cfg.llc_bytes_per_chip / cfg.line_size) * cfg.chips as u64;
    let footprint = profiles
        .iter()
        .map(KernelProfile::distinct_lines)
        .max()
        .unwrap_or(0);
    let llc_occupancy = if cap_lines == 0 {
        0.0
    } else {
        (footprint as f64 / cap_lines as f64).min(1.0)
    };

    RunStats {
        organization: org,
        cycles: est.cycles,
        reads,
        writes,
        l1: CacheStats {
            accesses: l1_accesses,
            hits: l1_hits,
            misses: l1_accesses - l1_hits,
            fills: l1_accesses - l1_hits,
            ..CacheStats::default()
        },
        llc: CacheStats {
            accesses: est.llc_accesses,
            hits: est.llc_hits,
            misses: llc_misses,
            fills: llc_misses,
            ..CacheStats::default()
        },
        responses_by_origin,
        llc_local_fraction: est.llc_local_fraction,
        llc_occupancy,
        ring_bytes: est.fabric_bytes,
        dram_reads: est.dram_reads,
        dram_writes: est.dram_writes,
        overhead_cycles: 0,
        max_in_flight: 0,
        kernels: est
            .kernels
            .iter()
            .enumerate()
            .map(|(index, k)| KernelStats {
                index,
                cycles: k.cycles,
                accesses: k.accesses,
                sac_mode: k.mode,
            })
            .collect(),
        sac_history: est.sac_history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_trace::{generate, profiles, TraceParams};

    fn quick_workload(bench: &str) -> (MachineConfig, Workload) {
        let cfg = MachineConfig::experiment_baseline();
        let p = profiles::by_name(bench).unwrap();
        let params = TraceParams {
            total_accesses: 12_000,
            ..TraceParams::quick()
        };
        let wl = generate(&cfg, &p, &params);
        (cfg, wl)
    }

    #[test]
    fn profiles_partition_the_post_l1_stream() {
        let (cfg, wl) = quick_workload("SN");
        let profs = profile_workload(&cfg, &wl);
        assert_eq!(profs.len(), wl.kernels.len());
        let l1_total: u64 = profs.iter().map(|p| p.l1_accesses).sum();
        assert_eq!(l1_total, wl.total_accesses() as u64);
        for p in &profs {
            let by_requester: u64 =
                p.local_accesses.iter().sum::<u64>() + p.remote_accesses.iter().sum::<u64>();
            let by_home: u64 = p.homed_accesses.iter().sum();
            assert_eq!(by_requester, by_home);
            assert_eq!(by_requester, p.reads + p.writes);
            assert!(p.l1_hits + p.reads + p.writes >= p.l1_accesses);
        }
    }

    #[test]
    fn fast_stats_are_deterministic_and_plausible() {
        let (cfg, wl) = quick_workload("CFD");
        for org in mcgpu_types::LlcOrgKind::ALL {
            let a = run_fast(&cfg, &wl, org);
            let b = run_fast(&cfg, &wl, org);
            assert_eq!(a.to_canonical_json(), b.to_canonical_json(), "{org:?}");
            assert_eq!(a.organization, org);
            assert!(a.cycles > 0);
            assert_eq!(a.reads + a.writes, wl.total_accesses() as u64);
            assert!(a.llc.hits <= a.llc.accesses);
            assert_eq!(a.kernels.len(), wl.kernels.len());
        }
    }

    #[test]
    fn sac_fast_mode_records_decisions() {
        let (cfg, wl) = quick_workload("SN");
        let s = run_fast(&cfg, &wl, LlcOrgKind::Sac);
        assert_eq!(s.sac_history.len(), wl.kernels.len());
        for (k, r) in s.kernels.iter().zip(&s.sac_history) {
            assert_eq!(k.sac_mode, Some(r.mode));
        }
        // The fabricated stats round-trip through canonical JSON like real
        // ones (the journal replay path depends on this).
        let json = s.to_canonical_json();
        let back = RunStats::from_canonical_json(&json).unwrap();
        assert_eq!(back, s);
    }
}
