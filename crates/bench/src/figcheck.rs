//! The figure-regression scorer: evaluates a paper [`ExpectationSet`]
//! against measured figure data and produces a deterministic
//! `mcgpu-figcheck-v1` [`Report`].
//!
//! The scorer never touches raw sweep output directly — it reads the same
//! [`crate::figdata`] structs the figure binaries render, collected into a
//! [`Metrics`] lookup table. That shared path is the whole point: a figure
//! and the expectation gating it can never disagree about a number.
//!
//! Two table constructors exist: [`suite_metrics`] for the full-suite
//! sweep the `figcheck` binary runs, and [`golden_metrics`] for the fixed
//! 8-case golden suite, whose report is snapshotted byte-for-byte under
//! `tests/golden/`.

use crate::figdata::{Fig08Data, Fig09Data, Fig10Data, Fig11Data, Fig15Data, Table4Data};
use crate::{golden, sweep, BenchRows};
use mcgpu_sim::RunStats;
use mcgpu_trace::{analysis, generate, profiles};
use mcgpu_types::{
    Check, CrossvalField, ExpectationSet, Finding, LlcOrgKind, MachineConfig, Metric, Report,
    ResponseOrigin, Severity, Verdict,
};
use std::collections::BTreeMap;

/// A lookup table from [`Metric`] identities to measured values.
///
/// Keys are the stable string labels of the vocabulary types (benchmark
/// name, organization label, origin label, …), so the table is agnostic to
/// where its values came from; a metric absent from the table scores as
/// [`Verdict::Error`].
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    speedup: BTreeMap<(String, String), f64>,
    hmean: BTreeMap<(String, String), f64>,
    local_fraction: BTreeMap<(String, String), f64>,
    bw_total: BTreeMap<(String, String), f64>,
    bw_share: BTreeMap<(String, String, String), f64>,
    working_set: BTreeMap<(String, u64), f64>,
    measured: BTreeMap<(String, String), f64>,
    scale_speedup: BTreeMap<(String, u64, String), f64>,
    fabric_bytes: BTreeMap<(String, u64), f64>,
    crossval: BTreeMap<(String, String), f64>,
}

impl Metrics {
    /// An empty table.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a speedup over the memory-side baseline.
    pub fn insert_speedup(&mut self, bench: &str, org: LlcOrgKind, v: f64) {
        self.speedup
            .insert((bench.to_string(), org.label().to_string()), v);
    }

    /// Record one cycle-vs-fast cross-validation error (the `crossval`
    /// binary's table).
    pub fn insert_crossval_err(&mut self, case: &str, field: CrossvalField, v: f64) {
        self.crossval
            .insert((case.to_string(), field.label().to_string()), v);
    }

    /// Record everything a single run's stats can support: the local
    /// fraction and the per-origin bandwidth shares. When `base` (the
    /// same workload under memory-side) is given, the normalized
    /// bandwidth total and the speedup are recorded too.
    pub fn insert_stats(
        &mut self,
        bench: &str,
        org: LlcOrgKind,
        stats: &RunStats,
        base: Option<&RunStats>,
    ) {
        let key = (bench.to_string(), org.label().to_string());
        self.local_fraction.insert(key, stats.llc_local_fraction);
        let total = stats.effective_llc_bandwidth();
        if total > 0.0 {
            for origin in ResponseOrigin::ALL {
                self.bw_share.insert(
                    (
                        bench.to_string(),
                        org.label().to_string(),
                        origin.label().to_string(),
                    ),
                    stats.response_rate(origin) / total,
                );
            }
        }
        if let Some(base) = base {
            let base_total = base.effective_llc_bandwidth();
            if base_total > 0.0 {
                self.bw_total.insert(
                    (bench.to_string(), org.label().to_string()),
                    total / base_total,
                );
            }
            self.insert_speedup(bench, org, stats.speedup_over(base));
        }
    }

    /// Fold a Fig. 8 table in: per-benchmark speedups and group harmonic
    /// means for every organization.
    pub fn add_fig08(&mut self, d: &Fig08Data) {
        for r in &d.rows {
            for (org, &v) in LlcOrgKind::ALL.iter().zip(&r.speedups) {
                self.insert_speedup(&r.bench, *org, v);
            }
        }
        for h in &d.hmeans {
            for (org, &v) in LlcOrgKind::ALL.iter().zip(&h.speedups) {
                self.hmean
                    .insert((h.group.clone(), org.label().to_string()), v);
            }
        }
    }

    /// Fold a Fig. 9 table in: local fractions per organization.
    pub fn add_fig09(&mut self, d: &Fig09Data) {
        for r in &d.rows {
            for (org, &v) in LlcOrgKind::ALL.iter().zip(&r.local_fraction) {
                self.local_fraction
                    .insert((r.bench.clone(), org.label().to_string()), v);
            }
        }
    }

    /// Fold a Fig. 10 table in: normalized bandwidth totals and
    /// per-origin shares of each organization's own total.
    pub fn add_fig10(&mut self, d: &Fig10Data) {
        for b in &d.benches {
            for row in &b.orgs {
                self.bw_total
                    .insert((b.bench.clone(), row.org.clone()), row.total);
                if row.total > 0.0 {
                    for (origin, &rate) in ResponseOrigin::ALL.iter().zip(&row.rates) {
                        self.bw_share.insert(
                            (b.bench.clone(), row.org.clone(), origin.label().to_string()),
                            rate / row.total,
                        );
                    }
                }
            }
        }
    }

    /// Fold a Fig. 11 table in: total working-set MB per window.
    pub fn add_fig11(&mut self, d: &Fig11Data) {
        for r in &d.rows {
            for p in &r.points {
                self.working_set
                    .insert((r.bench.clone(), p.window_cycles), p.total_mb());
            }
        }
    }

    /// Fold a Table 4 in: measured characteristics per benchmark.
    pub fn add_table04(&mut self, d: &Table4Data) {
        for r in &d.rows {
            for (field, v) in [
                ("footprint_mb", r.footprint_measured_mb),
                ("true_shared_mb", r.true_measured_mb),
                ("false_shared_mb", r.false_measured_mb),
            ] {
                self.measured
                    .insert((r.bench.clone(), field.to_string()), v);
            }
        }
    }

    /// Fold a Fig. 15 table in: per-(topology, chip count) harmonic-mean
    /// speedups and memory-side fabric traffic.
    pub fn add_fig15(&mut self, d: &Fig15Data) {
        for c in &d.curves {
            for p in &c.points {
                for (org, v) in [(LlcOrgKind::SmSide, p.sm_side), (LlcOrgKind::Sac, p.sac)] {
                    self.scale_speedup
                        .insert((c.topology.clone(), p.chips, org.label().to_string()), v);
                }
                self.fabric_bytes
                    .insert((c.topology.clone(), p.chips), p.fabric_bytes_per_cycle);
            }
        }
    }

    /// The measured value of `metric`, if this table carries it.
    pub fn value(&self, metric: &Metric) -> Option<f64> {
        match metric {
            Metric::Speedup { bench, org } => self
                .speedup
                .get(&(bench.clone(), org.label().to_string()))
                .copied(),
            Metric::HmeanSpeedup { group, org } => self
                .hmean
                .get(&(group.label().to_string(), org.label().to_string()))
                .copied(),
            Metric::LocalFraction { bench, org } => self
                .local_fraction
                .get(&(bench.clone(), org.label().to_string()))
                .copied(),
            Metric::BwTotal { bench, org } => self
                .bw_total
                .get(&(bench.clone(), org.label().to_string()))
                .copied(),
            Metric::BwShare { bench, org, origin } => self
                .bw_share
                .get(&(
                    bench.clone(),
                    org.label().to_string(),
                    origin.label().to_string(),
                ))
                .copied(),
            Metric::WorkingSetMb { bench, window } => {
                self.working_set.get(&(bench.clone(), *window)).copied()
            }
            Metric::MeasuredMb { bench, field } => self
                .measured
                .get(&(bench.clone(), field.label().to_string()))
                .copied(),
            Metric::ScaleSpeedup {
                topology,
                chips,
                org,
            } => self
                .scale_speedup
                .get(&(
                    topology.label().to_string(),
                    *chips,
                    org.label().to_string(),
                ))
                .copied(),
            Metric::FabricBytes { topology, chips } => self
                .fabric_bytes
                .get(&(topology.label().to_string(), *chips))
                .copied(),
            Metric::CrossvalErr { case, field } => self
                .crossval
                .get(&(case.clone(), field.label().to_string()))
                .copied(),
        }
    }

    /// Number of metric values in the table (diagnostics only).
    pub fn len(&self) -> usize {
        self.speedup.len()
            + self.hmean.len()
            + self.local_fraction.len()
            + self.bw_total.len()
            + self.bw_share.len()
            + self.working_set.len()
            + self.measured.len()
            + self.scale_speedup.len()
            + self.fabric_bytes.len()
            + self.crossval.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build the full-suite metric table the `figcheck` binary scores: Fig. 8,
/// 9, 10 and 11 data from an all-organizations suite plus measured
/// Table 4 characteristics. The per-benchmark working-set and
/// characterization analyses fan out over the sweep pool.
pub fn suite_metrics(cfg: &MachineConfig, rows: &[BenchRows]) -> Metrics {
    let fig08 = Fig08Data::compute(rows);
    let fig09 = Fig09Data::compute(rows);
    let fig10 = Fig10Data::compute(rows);
    let fig11 = Fig11Data::compute(cfg, rows);
    let t4_rows = sweep::map(rows.iter().collect(), |r| {
        (r.profile.clone(), analysis::characterize(cfg, &r.workload))
    });
    let table04 = Table4Data::compute(&t4_rows);

    let mut m = Metrics::new();
    m.add_fig08(&fig08);
    m.add_fig09(&fig09);
    m.add_fig10(&fig10);
    m.add_fig11(&fig11);
    m.add_table04(&table04);
    m
}

/// Build the metric table of the fixed golden suite (`golden::suite()`):
/// local fractions and bandwidth shares for all eight cases, plus
/// speedups and normalized bandwidth totals for the SN trio (the only
/// golden benchmark run under the memory-side baseline). The eight runs
/// fan out over the sweep pool.
pub fn golden_metrics() -> Metrics {
    golden_metrics_on(None)
}

/// [`golden_metrics`] on a dedicated pool of `jobs` threads instead of
/// the process-wide sweep pool. The report determinism tests compare the
/// 1-thread and N-thread tables byte-for-byte.
pub fn golden_metrics_with_jobs(jobs: usize) -> Metrics {
    golden_metrics_on(Some(jobs))
}

fn golden_metrics_on(jobs: Option<usize>) -> Metrics {
    let cases = golden::suite();
    let run = |c: &golden::Case| {
        let cfg = c.config();
        let profile = profiles::by_name(c.bench).expect("known benchmark");
        let wl = generate(&cfg, &profile, &golden::Case::params());
        crate::try_run_one(&cfg, &wl, c.org).expect("golden case completes")
    };
    let stats: Vec<RunStats> = match jobs {
        Some(n) => sweep::map_with_jobs(n, cases.iter().collect(), run),
        None => sweep::map(cases.iter().collect(), run),
    };
    let sn_mem = cases
        .iter()
        .zip(&stats)
        .find(|(c, _)| c.bench == "SN" && c.org == LlcOrgKind::MemorySide)
        .map(|(_, s)| s);
    let mut m = Metrics::new();
    for (c, s) in cases.iter().zip(&stats) {
        let base = if c.bench == "SN" { sn_mem } else { None };
        m.insert_stats(c.bench, c.org, s, base);
    }
    m
}

fn detail_for(check: &Check, observed: &[(String, f64)]) -> String {
    match check {
        Check::Band { lo, hi, .. } => {
            format!(
                "{} = {:.4} in [{lo:?}, {hi:?}]",
                observed[0].0, observed[0].1
            )
        }
        Check::Ordering { min_ratio, .. } => format!(
            "{} = {:.4}, {} = {:.4}, required ratio >= {min_ratio:?}",
            observed[0].0, observed[0].1, observed[1].0, observed[1].1
        ),
        Check::RelErr {
            reference, max_rel, ..
        } => format!(
            "{} = {:.4}, paper {reference:?}, rel err {:.3} (max {max_rel:?})",
            observed[0].0,
            observed[0].1,
            (observed[0].1 - reference).abs() / reference.abs()
        ),
        Check::Crossover { threshold, .. } => format!(
            "{} = {:.4} <= {threshold:?} <= {} = {:.4}",
            observed[0].0, observed[0].1, observed[1].0, observed[1].1
        ),
    }
}

/// Score every expectation of `set` against `metrics`.
///
/// A metric missing from the table yields [`Verdict::Error`] (with an
/// empty observed list), which gates CI exactly like a failure when the
/// expectation's severity is [`Severity::Shape`] — silently skipping a
/// gating check must not look like passing it.
pub fn evaluate(set: &ExpectationSet, metrics: &Metrics, volume: &str) -> Report {
    let findings = set
        .expectations
        .iter()
        .map(|e| {
            let mut observed = Vec::new();
            let mut missing = Vec::new();
            for m in e.check.metrics() {
                match metrics.value(m) {
                    Some(v) => observed.push((m.describe(), v)),
                    None => missing.push(m.describe()),
                }
            }
            let (verdict, observed, detail) = if missing.is_empty() {
                let values: Vec<f64> = observed.iter().map(|(_, v)| *v).collect();
                let verdict = if e.check.apply(&values) {
                    Verdict::Pass
                } else {
                    Verdict::Fail
                };
                let detail = detail_for(&e.check, &observed);
                (verdict, observed, detail)
            } else {
                (
                    Verdict::Error,
                    Vec::new(),
                    format!("metric unavailable: {}", missing.join(", ")),
                )
            };
            Finding {
                id: e.id.clone(),
                figure: e.figure.clone(),
                severity: e.severity,
                verdict,
                observed,
                detail,
            }
        })
        .collect();
    Report {
        source: set.source.clone(),
        volume: volume.to_string(),
        findings,
    }
}

/// Render the human-readable scorecard of a report: findings grouped by
/// figure (in first-appearance order), one verdict line each, a summary
/// and the gating verdict. Deterministic for a deterministic report.
pub fn scorecard(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "figure-regression scorecard — {} [{} volume]",
        report.source, report.volume
    );
    let mut figures: Vec<&str> = Vec::new();
    for f in &report.findings {
        if !figures.contains(&f.figure.as_str()) {
            figures.push(&f.figure);
        }
    }
    for figure in figures {
        let _ = writeln!(s, "\n{figure}:");
        for f in report.findings.iter().filter(|f| f.figure == figure) {
            let verdict = match f.verdict {
                Verdict::Pass => "PASS ",
                Verdict::Fail => "FAIL ",
                Verdict::Error => "ERROR",
            };
            let _ = writeln!(
                s,
                "  {verdict} {:9} {:44} {}",
                f.severity.label(),
                f.id,
                f.detail
            );
        }
    }
    let count = |sev, verdict| report.count(sev, verdict);
    let _ = writeln!(
        s,
        "\nsummary: {} expectations | shape: {} pass, {} fail, {} error | magnitude: {} pass, {} fail, {} error",
        report.findings.len(),
        count(Severity::Shape, Verdict::Pass),
        count(Severity::Shape, Verdict::Fail),
        count(Severity::Shape, Verdict::Error),
        count(Severity::Magnitude, Verdict::Pass),
        count(Severity::Magnitude, Verdict::Fail),
        count(Severity::Magnitude, Verdict::Error),
    );
    let gating = count(Severity::Shape, Verdict::Fail) + count(Severity::Shape, Verdict::Error);
    if report.gates() {
        let _ = writeln!(
            s,
            "verdict: SHAPE REGRESSION — {gating} gating expectation(s) violated"
        );
    } else {
        let _ = writeln!(s, "verdict: OK — all shape expectations hold");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Metrics {
        let mut m = Metrics::new();
        m.insert_speedup("RN", LlcOrgKind::SmSide, 1.86);
        m.insert_speedup("RN", LlcOrgKind::MemorySide, 1.0);
        m
    }

    fn set(json: &str) -> ExpectationSet {
        ExpectationSet::parse(json).expect("expectation set parses")
    }

    const ORDERING_SET: &str = r#"{
      "schema": "mcgpu-expect-v1",
      "source": "test",
      "expectations": [
        {
          "id": "fig08/RN/sm-beats-mem",
          "figure": "fig08",
          "severity": "shape",
          "check": {
            "kind": "ordering",
            "left": {"metric": "speedup", "bench": "RN", "org": "SM-side"},
            "right": {"metric": "speedup", "bench": "RN", "org": "memory-side"},
            "min_ratio": 1.05
          },
          "note": ""
        }
      ]
    }"#;

    #[test]
    fn passing_ordering_yields_a_pass_and_no_gate() {
        let report = evaluate(&set(ORDERING_SET), &table(), "quick");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].verdict, Verdict::Pass);
        assert!(!report.gates());
        let card = scorecard(&report);
        assert!(card.contains("PASS  shape"), "scorecard: {card}");
        assert!(card.contains("verdict: OK"), "scorecard: {card}");
    }

    #[test]
    fn missing_metric_yields_error_and_gates_shape() {
        let report = evaluate(&set(ORDERING_SET), &Metrics::new(), "quick");
        assert_eq!(report.findings[0].verdict, Verdict::Error);
        assert!(report.findings[0].observed.is_empty());
        assert!(report.gates(), "a gating check that cannot run must gate");
        let card = scorecard(&report);
        assert!(card.contains("metric unavailable"), "scorecard: {card}");
        assert!(card.contains("SHAPE REGRESSION"), "scorecard: {card}");
    }

    #[test]
    fn fig15_table_scores_scaleout_metrics() {
        use crate::figdata::{Fig15Curve, Fig15Point};
        use mcgpu_types::TopologyKind;

        let data = Fig15Data {
            curves: vec![Fig15Curve {
                topology: "ring".to_string(),
                points: vec![
                    Fig15Point {
                        chips: 4,
                        sm_side: 1.2,
                        sac: 1.4,
                        fabric_bytes_per_cycle: 100.0,
                        bisection_gbs: 384.0,
                    },
                    Fig15Point {
                        chips: 8,
                        sm_side: 1.1,
                        sac: 1.3,
                        fabric_bytes_per_cycle: 150.0,
                        bisection_gbs: 384.0,
                    },
                ],
            }],
        };
        let mut m = Metrics::new();
        m.add_fig15(&data);
        assert_eq!(
            m.value(&Metric::FabricBytes {
                topology: TopologyKind::Ring,
                chips: 8
            }),
            Some(150.0)
        );
        assert_eq!(
            m.value(&Metric::ScaleSpeedup {
                topology: TopologyKind::Ring,
                chips: 4,
                org: LlcOrgKind::Sac
            }),
            Some(1.4)
        );
        // A (topology, chips) point the sweep never ran is absent, which
        // scores as Verdict::Error rather than passing silently.
        assert_eq!(
            m.value(&Metric::FabricBytes {
                topology: TopologyKind::Mesh2D,
                chips: 4
            }),
            None
        );
    }

    #[test]
    fn report_round_trips_through_canonical_json() {
        let report = evaluate(&set(ORDERING_SET), &table(), "quick");
        let doc = report.to_canonical_json();
        let back = Report::parse(&doc).expect("report parses");
        assert_eq!(back.to_canonical_json(), doc);
    }
}
