//! Shared structured-stats layer for the figure/table binaries.
//!
//! Every figure binary used to interleave sweep calls with ad-hoc
//! `println!` formatting, which left the numbers a figure printed and the
//! numbers a regression check would score as two separate code paths.
//! This module splits each figure into three steps that cannot disagree:
//!
//! 1. **compute/collect** — build a plain-data struct (`Fig08Data`,
//!    `Table4Data`, …) from sweep results,
//! 2. **render** — format that struct into exactly the text the binary
//!    has always printed (byte-identical to the pre-refactor output), and
//! 3. **JSON** — serialize the same struct to a canonical
//!    `mcgpu-figdata-v1` document for machine consumers.
//!
//! Binaries call [`emit`], which prints the rendered text and honors a
//! `--json PATH` flag; the `figcheck` harness consumes the same structs
//! through [`crate::figcheck::Metrics`], so a figure and its expectations
//! always read one set of numbers.

use crate::{
    exit_on_quarantine, group_speedup, harmonic_mean, run_profiles, sweep, BenchRows, SweepOptions,
};
use mcgpu_trace::profiles::Preference;
use mcgpu_trace::{analysis, profiles, TraceParams};
use mcgpu_types::json::CanonicalWriter;
use mcgpu_types::{
    CoherenceKind, LlcOrgKind, MachineConfig, MemoryInterface, ResponseOrigin, TopologyKind,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Schema identifier of the structured figure-data documents.
pub const FIGDATA_SCHEMA: &str = "mcgpu-figdata-v1";

/// A figure's structured data: renderable to the binary's exact stdout
/// and serializable to a canonical JSON document.
pub trait FigData {
    /// Stable figure name (`"fig08"`, `"table04"`, …).
    fn figure(&self) -> &'static str;
    /// The exact text the figure binary prints.
    fn render(&self) -> String;
    /// Figure-specific members of the JSON document.
    fn write_fields(&self, w: &mut CanonicalWriter);
    /// The complete canonical `mcgpu-figdata-v1` document.
    fn to_canonical_json(&self) -> String {
        let mut w = CanonicalWriter::new();
        w.open();
        w.str_field("schema", FIGDATA_SCHEMA);
        w.str_field("figure", self.figure());
        self.write_fields(&mut w);
        w.close();
        w.finish()
    }
}

/// `--json PATH` (or `--json=PATH`) from the process arguments.
pub fn json_path_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--json" {
            return args.get(i + 1).map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(v));
        }
    }
    None
}

/// Print a figure's rendered text to stdout and, when `--json PATH` was
/// passed, write its canonical JSON document to `PATH`.
pub fn emit(data: &impl FigData) {
    print!("{}", data.render());
    if let Some(path) = json_path_arg() {
        std::fs::write(&path, data.to_canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!("  wrote {}", path.display());
    }
}

fn org_labels() -> Vec<&'static str> {
    LlcOrgKind::ALL.iter().map(|o| o.label()).collect()
}

fn sac_mode_string(stats: &mcgpu_sim::RunStats) -> String {
    stats
        .sac_history
        .iter()
        .map(|k| {
            if k.mode == sac::LlcMode::SmSide {
                'S'
            } else {
                'M'
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig01

/// One organization's row of a Fig. 1 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01Row {
    /// Organization label.
    pub org: String,
    /// SM-side-preferred group value.
    pub sp: f64,
    /// Memory-side-preferred group value.
    pub mp: f64,
    /// All-benchmark value (only the performance panel reports it).
    pub all: Option<f64>,
}

/// Fig. 1: performance, LLC miss rate and effective LLC bandwidth per
/// organization, grouped into SP and MP benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01Data {
    /// Panel (a): harmonic-mean speedup vs memory-side.
    pub performance: Vec<Fig01Row>,
    /// Panel (b): arithmetic-mean LLC miss rate.
    pub miss_rate: Vec<Fig01Row>,
    /// Panel (c): harmonic-mean normalized effective LLC bandwidth.
    pub bandwidth: Vec<Fig01Row>,
}

impl Fig01Data {
    /// Build from full-suite rows (all five organizations).
    pub fn compute(rows: &[BenchRows]) -> Fig01Data {
        let group_metric = |org, pref, f: &dyn Fn(&mcgpu_sim::RunStats) -> f64| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.profile.preference == pref)
                .map(|r| f(r.stats(org)))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let norm_bw = |org, pref| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.profile.preference == pref)
                .map(|r| {
                    r.stats(org).effective_llc_bandwidth()
                        / r.stats(LlcOrgKind::MemorySide).effective_llc_bandwidth()
                })
                .collect();
            harmonic_mean(&v)
        };
        Fig01Data {
            performance: LlcOrgKind::ALL
                .iter()
                .map(|&org| Fig01Row {
                    org: org.label().to_string(),
                    sp: group_speedup(rows, org, Some(Preference::SmSide)),
                    mp: group_speedup(rows, org, Some(Preference::MemorySide)),
                    all: Some(group_speedup(rows, org, None)),
                })
                .collect(),
            miss_rate: LlcOrgKind::ALL
                .iter()
                .map(|&org| Fig01Row {
                    org: org.label().to_string(),
                    sp: group_metric(org, Preference::SmSide, &|s| s.llc_miss_rate()),
                    mp: group_metric(org, Preference::MemorySide, &|s| s.llc_miss_rate()),
                    all: None,
                })
                .collect(),
            bandwidth: LlcOrgKind::ALL
                .iter()
                .map(|&org| Fig01Row {
                    org: org.label().to_string(),
                    sp: norm_bw(org, Preference::SmSide),
                    mp: norm_bw(org, Preference::MemorySide),
                    all: None,
                })
                .collect(),
        }
    }
}

impl FigData for Fig01Data {
    fn figure(&self) -> &'static str {
        "fig01"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "(a) performance normalized to memory-side (harmonic mean):"
        );
        let _ = writeln!(
            s,
            "{:14} {:>6} {:>6} {:>6}",
            "organization", "SP", "MP", "all"
        );
        for r in &self.performance {
            let _ = writeln!(
                s,
                "{:14} {:>6.2} {:>6.2} {:>6.2}",
                r.org,
                r.sp,
                r.mp,
                r.all.expect("performance rows carry the all-bench mean")
            );
        }
        let _ = writeln!(s, "\n(b) LLC miss rate (arithmetic mean):");
        let _ = writeln!(s, "{:14} {:>6} {:>6}", "organization", "SP", "MP");
        for r in &self.miss_rate {
            let _ = writeln!(s, "{:14} {:>6.2} {:>6.2}", r.org, r.sp, r.mp);
        }
        let _ = writeln!(
            s,
            "\n(c) effective LLC bandwidth, responses/cycle normalized to memory-side:"
        );
        let _ = writeln!(s, "{:14} {:>6} {:>6}", "organization", "SP", "MP");
        for r in &self.bandwidth {
            let _ = writeln!(s, "{:14} {:>6.2} {:>6.2}", r.org, r.sp, r.mp);
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        let panel = |w: &mut CanonicalWriter, key: &str, rows: &[Fig01Row]| {
            w.array_field(key, rows.len(), |w, i| {
                let r = &rows[i];
                w.open();
                w.str_field("org", &r.org);
                w.f64_field("sp", r.sp);
                w.f64_field("mp", r.mp);
                if let Some(all) = r.all {
                    w.f64_field("all", all);
                }
                w.close();
            });
        };
        panel(w, "performance", &self.performance);
        panel(w, "llc_miss_rate", &self.miss_rate);
        panel(w, "bandwidth", &self.bandwidth);
    }
}

// ---------------------------------------------------------------- fig08

/// One benchmark's row of Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Row {
    /// Benchmark name.
    pub bench: String,
    /// Preference-group label (`"SP"` / `"MP"`).
    pub pref: String,
    /// Speedup over memory-side, one per [`LlcOrgKind::ALL`] entry.
    pub speedups: Vec<f64>,
    /// SAC's per-kernel mode string (`S` = SM-side, `M` = memory-side).
    pub sac_modes: String,
}

/// One harmonic-mean row of Fig. 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Hmean {
    /// Group label (`"SP"` / `"MP"` / `"all"`).
    pub group: String,
    /// Harmonic-mean speedup, one per [`LlcOrgKind::ALL`] entry.
    pub speedups: Vec<f64>,
}

/// Fig. 8: per-benchmark speedup of each organization vs memory-side.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Data {
    /// One row per benchmark, in suite order.
    pub rows: Vec<Fig08Row>,
    /// Harmonic means for SP, MP and all benchmarks (in that order).
    pub hmeans: Vec<Fig08Hmean>,
}

impl Fig08Data {
    /// Build from full-suite rows (all five organizations).
    pub fn compute(rows: &[BenchRows]) -> Fig08Data {
        Fig08Data {
            rows: rows
                .iter()
                .map(|r| Fig08Row {
                    bench: r.profile.name.to_string(),
                    pref: r.profile.preference.label().to_string(),
                    speedups: LlcOrgKind::ALL.iter().map(|&o| r.speedup(o)).collect(),
                    sac_modes: sac_mode_string(r.stats(LlcOrgKind::Sac)),
                })
                .collect(),
            hmeans: [
                ("SP", Some(Preference::SmSide)),
                ("MP", Some(Preference::MemorySide)),
                ("all", None),
            ]
            .into_iter()
            .map(|(label, pref)| Fig08Hmean {
                group: label.to_string(),
                speedups: LlcOrgKind::ALL
                    .iter()
                    .map(|&o| group_speedup(rows, o, pref))
                    .collect(),
            })
            .collect(),
        }
    }

    /// Harmonic-mean speedup of `org` over the `group` label.
    pub fn hmean(&self, group: &str, org: LlcOrgKind) -> Option<f64> {
        let idx = LlcOrgKind::ALL.iter().position(|&o| o == org)?;
        self.hmeans
            .iter()
            .find(|h| h.group == group)
            .map(|h| h.speedups[idx])
    }
}

impl FigData for Fig08Data {
    fn figure(&self) -> &'static str {
        "fig08"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:6} {:>4} | {:>8} {:>8} {:>8} {:>8} {:>8} | SAC modes",
            "bench", "pref", "mem-side", "SM-side", "static", "dynamic", "SAC"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:6} {:>4} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | [{}]",
                r.bench,
                r.pref,
                r.speedups[0],
                r.speedups[1],
                r.speedups[2],
                r.speedups[3],
                r.speedups[4],
                r.sac_modes
            );
        }
        for h in &self.hmeans {
            let _ = write!(s, "hmean {:>4} |", h.group);
            for v in &h.speedups {
                let _ = write!(s, " {v:>8.2}");
            }
            let _ = writeln!(s);
        }
        let sac_all = self
            .hmean("all", LlcOrgKind::Sac)
            .expect("all-group hmean is always computed");
        let _ = writeln!(
            s,
            "\nSAC vs memory-side: {:+.0}%   (paper: +76%)",
            (sac_all - 1.0) * 100.0
        );
        for (org, paper) in [
            (LlcOrgKind::SmSide, "+12%"),
            (LlcOrgKind::StaticHalf, "+31%"),
            (LlcOrgKind::Dynamic, "+18%"),
        ] {
            let other = self
                .hmean("all", org)
                .expect("all-group hmean is always computed");
            let _ = writeln!(
                s,
                "SAC vs {:11}: {:+.0}%   (paper: {paper})",
                org.label(),
                (sac_all / other - 1.0) * 100.0
            );
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.str_array_field("orgs", &org_labels());
        w.array_field("rows", self.rows.len(), |w, i| {
            let r = &self.rows[i];
            w.open();
            w.str_field("bench", &r.bench);
            w.str_field("pref", &r.pref);
            w.f64_array_field("speedups", &r.speedups);
            w.str_field("sac_modes", &r.sac_modes);
            w.close();
        });
        w.array_field("hmeans", self.hmeans.len(), |w, i| {
            let h = &self.hmeans[i];
            w.open();
            w.str_field("group", &h.group);
            w.f64_array_field("speedups", &h.speedups);
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig09

/// One benchmark's row of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Row {
    /// Benchmark name.
    pub bench: String,
    /// Preference-group label.
    pub pref: String,
    /// Fraction of resident LLC lines holding local data, one per
    /// [`LlcOrgKind::ALL`] entry.
    pub local_fraction: Vec<f64>,
}

/// Fig. 9: local vs remote composition of the LLC per organization.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Data {
    /// One row per benchmark, in suite order.
    pub rows: Vec<Fig09Row>,
}

impl Fig09Data {
    /// Build from full-suite rows (all five organizations).
    pub fn compute(rows: &[BenchRows]) -> Fig09Data {
        Fig09Data {
            rows: rows
                .iter()
                .map(|r| Fig09Row {
                    bench: r.profile.name.to_string(),
                    pref: r.profile.preference.label().to_string(),
                    local_fraction: LlcOrgKind::ALL
                        .iter()
                        .map(|&o| r.stats(o).llc_local_fraction)
                        .collect(),
                })
                .collect(),
        }
    }
}

impl FigData for Fig09Data {
    fn figure(&self) -> &'static str {
        "fig09"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fraction of LLC caching LOCAL data (remainder = remote data):"
        );
        let _ = write!(s, "{:6} {:>4}", "bench", "pref");
        for org in LlcOrgKind::ALL {
            let _ = write!(s, " {:>11}", org.label());
        }
        let _ = writeln!(s);
        for r in &self.rows {
            let _ = write!(s, "{:6} {:>4}", r.bench, r.pref);
            for v in &r.local_fraction {
                let _ = write!(s, " {v:>11.2}");
            }
            let _ = writeln!(s);
        }
        let _ = writeln!(
            s,
            "\n(memory-side is 1.00 by construction; the static LLC pins a 50/50 way"
        );
        let _ = writeln!(
            s,
            " split; SAC caches only local data when it selects memory-side.)"
        );
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.str_array_field("orgs", &org_labels());
        w.array_field("rows", self.rows.len(), |w, i| {
            let r = &self.rows[i];
            w.open();
            w.str_field("bench", &r.bench);
            w.str_field("pref", &r.pref);
            w.f64_array_field("local_fraction", &r.local_fraction);
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig10

/// One organization's bandwidth row for one benchmark in Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10OrgRow {
    /// Organization label.
    pub org: String,
    /// Responses/cycle by [`ResponseOrigin::ALL`] origin, normalized to
    /// the benchmark's memory-side total.
    pub rates: Vec<f64>,
    /// Total responses/cycle, normalized likewise.
    pub total: f64,
}

/// One benchmark's block of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Bench {
    /// Benchmark name.
    pub bench: String,
    /// Preference-group label.
    pub pref: String,
    /// One row per [`LlcOrgKind::ALL`] organization.
    pub orgs: Vec<Fig10OrgRow>,
}

/// Fig. 10: effective LLC bandwidth broken down by response origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Data {
    /// One block per benchmark, in suite order.
    pub benches: Vec<Fig10Bench>,
}

impl Fig10Data {
    /// Build from full-suite rows (all five organizations).
    pub fn compute(rows: &[BenchRows]) -> Fig10Data {
        Fig10Data {
            benches: rows
                .iter()
                .map(|r| {
                    let base = r.stats(LlcOrgKind::MemorySide).effective_llc_bandwidth();
                    Fig10Bench {
                        bench: r.profile.name.to_string(),
                        pref: r.profile.preference.label().to_string(),
                        orgs: LlcOrgKind::ALL
                            .iter()
                            .map(|&org| {
                                let s = r.stats(org);
                                Fig10OrgRow {
                                    org: org.label().to_string(),
                                    rates: ResponseOrigin::ALL
                                        .iter()
                                        .map(|&o| s.response_rate(o) / base)
                                        .collect(),
                                    total: s.effective_llc_bandwidth() / base,
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

impl FigData for Fig10Data {
    fn figure(&self) -> &'static str {
        "fig10"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "per-benchmark responses/cycle by origin (normalized to the memory-side total):"
        );
        for b in &self.benches {
            let _ = writeln!(s, "{} ({}):", b.bench, b.pref);
            let _ = writeln!(
                s,
                "  {:12} {:>10} {:>10} {:>10} {:>10} {:>8}",
                "org", "local LLC", "remote LLC", "local mem", "remote mem", "total"
            );
            for row in &b.orgs {
                let _ = write!(s, "  {:12}", row.org);
                for v in &row.rates {
                    let _ = write!(s, " {v:>10.2}");
                }
                let _ = writeln!(s, " {:>8.2}", row.total);
            }
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        let origin_labels: Vec<&str> = ResponseOrigin::ALL.iter().map(|o| o.label()).collect();
        w.str_array_field("origins", &origin_labels);
        w.array_field("benches", self.benches.len(), |w, i| {
            let b = &self.benches[i];
            w.open();
            w.str_field("bench", &b.bench);
            w.str_field("pref", &b.pref);
            w.array_field("orgs", b.orgs.len(), |w, j| {
                let row = &b.orgs[j];
                w.open();
                w.str_field("org", &row.org);
                w.f64_array_field("rates", &row.rates);
                w.f64_field("total", row.total);
                w.close();
            });
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig11

/// The cycle windows Fig. 11 samples the working set at.
pub const FIG11_WINDOWS_CYCLES: [usize; 3] = [1_000, 10_000, 100_000];

/// One `(window, sharing breakdown)` sample of Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Point {
    /// Window length in cycles.
    pub window_cycles: u64,
    /// Truly-shared MB (paper scale).
    pub true_mb: f64,
    /// Falsely-shared MB (paper scale).
    pub false_mb: f64,
    /// Non-shared MB (paper scale).
    pub non_mb: f64,
}

impl Fig11Point {
    /// All sharing classes summed.
    pub fn total_mb(&self) -> f64 {
        self.true_mb + self.false_mb + self.non_mb
    }
}

/// One benchmark's working-set curve of Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Benchmark name.
    pub bench: String,
    /// Preference-group label.
    pub pref: String,
    /// One point per [`FIG11_WINDOWS_CYCLES`] window.
    pub points: Vec<Fig11Point>,
}

/// Fig. 11: per-time-window working-set size under the SM-side
/// organization, split by sharing class.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Data {
    /// One row per benchmark, in suite order.
    pub rows: Vec<Fig11Row>,
}

impl Fig11Data {
    /// Build from rows whose run set includes the SM-side organization.
    /// The paper's x-axis is cycles; windows are converted to access
    /// counts via each benchmark's measured SM-side issue rate, and the
    /// per-benchmark curve analyses fan out over the sweep pool.
    pub fn compute(cfg: &MachineConfig, rows: &[BenchRows]) -> Fig11Data {
        let curves = sweep::map(rows.iter().collect(), |r| {
            let rate = r.stats(LlcOrgKind::SmSide).perf();
            let windows_accesses: Vec<usize> = FIG11_WINDOWS_CYCLES
                .iter()
                .map(|&w| ((w as f64 * rate) as usize).max(100))
                .collect();
            analysis::working_set_curve(cfg, &r.workload, &windows_accesses)
        });
        Fig11Data {
            rows: rows
                .iter()
                .zip(curves)
                .map(|(r, curve)| Fig11Row {
                    bench: r.profile.name.to_string(),
                    pref: r.profile.preference.label().to_string(),
                    points: curve
                        .iter()
                        .enumerate()
                        .map(|(i, (_, ws))| {
                            let ws = ws.to_paper_scale(cfg);
                            Fig11Point {
                                window_cycles: FIG11_WINDOWS_CYCLES[i] as u64,
                                true_mb: ws.true_mb,
                                false_mb: ws.false_mb,
                                non_mb: ws.non_mb,
                            }
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl FigData for Fig11Data {
    fn figure(&self) -> &'static str {
        "fig11"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "mean per-window working set in paper-equivalent MB (SM-side organization);"
        );
        let _ = writeln!(s, "machine total LLC at paper scale = 16 MB\n");
        let _ = writeln!(
            s,
            "{:6} {:>4} | {:>9} | {:>8} {:>8} {:>8} | {:>8}",
            "bench", "pref", "window", "true", "false", "non", "total"
        );
        for r in &self.rows {
            for (i, p) in r.points.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "{:6} {:>4} | {:>7}cy | {:>8.1} {:>8.1} {:>8.1} | {:>8.1}",
                    if i == 0 { r.bench.as_str() } else { "" },
                    if i == 0 { r.pref.as_str() } else { "" },
                    p.window_cycles,
                    p.true_mb,
                    p.false_mb,
                    p.non_mb,
                    p.total_mb()
                );
            }
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.array_field("rows", self.rows.len(), |w, i| {
            let r = &self.rows[i];
            w.open();
            w.str_field("bench", &r.bench);
            w.str_field("pref", &r.pref);
            w.array_field("points", r.points.len(), |w, j| {
                let p = &r.points[j];
                w.open();
                w.u64_field("window_cycles", p.window_cycles);
                w.f64_field("true_mb", p.true_mb);
                w.f64_field("false_mb", p.false_mb);
                w.f64_field("non_mb", p.non_mb);
                w.close();
            });
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig12

/// One kernel's row of Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Kernel {
    /// Kernel launch index.
    pub index: u64,
    /// Alternating phase label (`"K1"` / `"K2"`).
    pub phase: String,
    /// SM-side per-kernel performance relative to memory-side.
    pub sm_side: f64,
    /// SAC per-kernel performance relative to memory-side.
    pub sac: f64,
    /// SAC's chosen mode for this kernel (`"-"` before the first
    /// decision).
    pub sac_mode: String,
}

/// Fig. 12: BFS's time-varying behaviour — per-kernel performance and
/// SAC's per-kernel organization choice.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Data {
    /// One row per kernel launch.
    pub kernels: Vec<Fig12Kernel>,
    /// Whole-application SM-side speedup vs memory-side.
    pub app_sm_side: f64,
    /// Whole-application SAC speedup vs memory-side.
    pub app_sac: f64,
}

impl Fig12Data {
    /// Build from a BFS row run under memory-side, SM-side and SAC.
    pub fn compute(rows: &BenchRows) -> Fig12Data {
        let mem = rows.stats(LlcOrgKind::MemorySide);
        let sm = rows.stats(LlcOrgKind::SmSide);
        let sac = rows.stats(LlcOrgKind::Sac);
        Fig12Data {
            kernels: (0..mem.kernels.len())
                .map(|i| {
                    let base = mem.kernels[i].perf();
                    Fig12Kernel {
                        index: i as u64,
                        phase: if i % 2 == 0 { "K1" } else { "K2" }.to_string(),
                        sm_side: sm.kernels[i].perf() / base,
                        sac: sac.kernels[i].perf() / base,
                        sac_mode: sac.kernels[i]
                            .sac_mode
                            .map(|m| m.label())
                            .unwrap_or("-")
                            .to_string(),
                    }
                })
                .collect(),
            app_sm_side: rows.speedup(LlcOrgKind::SmSide),
            app_sac: rows.speedup(LlcOrgKind::Sac),
        }
    }
}

impl FigData for Fig12Data {
    fn figure(&self) -> &'static str {
        "fig12"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "BFS per-kernel performance relative to memory-side:");
        let _ = writeln!(
            s,
            "{:>7} {:>10} {:>10} {:>10} {:>10}",
            "kernel", "phase", "SM-side", "SAC", "SAC mode"
        );
        for k in &self.kernels {
            let _ = writeln!(
                s,
                "{:>7} {:>10} {:>10.2} {:>10.2} {:>10}",
                k.index, k.phase, k.sm_side, k.sac, k.sac_mode
            );
        }
        let _ = writeln!(
            s,
            "\nwhole-application speedup vs memory-side: SM-side {:.2}x, SAC {:.2}x",
            self.app_sm_side, self.app_sac
        );
        let _ = writeln!(
            s,
            "(the paper's point: K1 prefers memory-side, K2 prefers SM-side, and SAC"
        );
        let _ = writeln!(
            s,
            " picks per kernel — beating the static choice of either organization.)"
        );
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.array_field("kernels", self.kernels.len(), |w, i| {
            let k = &self.kernels[i];
            w.open();
            w.u64_field("index", k.index);
            w.str_field("phase", &k.phase);
            w.f64_field("sm_side", k.sm_side);
            w.f64_field("sac", k.sac);
            w.str_field("sac_mode", &k.sac_mode);
            w.close();
        });
        w.object_field("application", |w| {
            w.f64_field("sm_side", self.app_sm_side);
            w.f64_field("sac", self.app_sac);
        });
    }
}

// ---------------------------------------------------------------- fig13

/// One `(input scale, speedups)` row of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Input scale factor relative to the Table 4 footprint.
    pub scale: f64,
    /// SM-side speedup vs memory-side at this scale.
    pub sm_side: f64,
    /// SAC speedup vs memory-side at this scale.
    pub sac: f64,
    /// SAC's per-kernel mode string.
    pub sac_modes: String,
}

/// One benchmark's scale sweep of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Bench {
    /// Benchmark name.
    pub bench: String,
    /// One row per swept input scale (largest first).
    pub rows: Vec<Fig13Row>,
}

/// One preference group of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Group {
    /// Group label (`"SM-side preferred"` / `"memory-side preferred"`).
    pub label: String,
    /// The group's benchmarks.
    pub benches: Vec<Fig13Bench>,
}

/// Fig. 13: input-set sensitivity over a representative benchmark subset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Data {
    /// SP group then MP group.
    pub groups: Vec<Fig13Group>,
}

impl Fig13Data {
    /// Generate, simulate and collect the full figure. Trace generation
    /// and every `(workload, organization)` run fan out over the sweep
    /// pool as isolated cells; a quarantined cell exits the process with
    /// the standard report (this is a binary-support path).
    pub fn collect(cfg: &MachineConfig, base: &TraceParams) -> Fig13Data {
        use crate::{exit_on_cell_failures, try_run_one};
        use mcgpu_trace::{generate, Workload};
        use std::sync::Arc;

        const ORGS: [LlcOrgKind; 3] = [LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac];
        let sp = ["RN", "CFD"];
        let mp = ["SRAD", "GEMM"];
        let sp_scales: &[f64] = &[8.0, 2.0, 1.0, 0.5, 0.25];
        let mp_scales: &[f64] = &[4.0, 1.0, 0.25, 1.0 / 16.0, 1.0 / 32.0];

        let combos: Vec<(&str, f64)> = [(&sp[..], sp_scales), (&mp[..], mp_scales)]
            .iter()
            .flat_map(|(names, scales)| {
                names
                    .iter()
                    .flat_map(move |&n| scales.iter().map(move |&s| (n, s)))
            })
            .collect();
        let workloads: Vec<Arc<Workload>> = sweep::map(combos.clone(), |(name, scale)| {
            let p = profiles::by_name(name).expect("profile");
            let params = TraceParams {
                input_scale: scale,
                ..*base
            };
            Arc::new(generate(cfg, &p, &params))
        });
        let pairs: Vec<(usize, LlcOrgKind)> = (0..combos.len())
            .flat_map(|i| ORGS.iter().map(move |&org| (i, org)))
            .collect();
        let outcomes = sweep::map_isolated(pairs.clone(), |&(i, org), attempt| {
            let mut scaled = cfg.clone();
            scaled.watchdog_cycles = sweep::escalate_budget(scaled.watchdog_cycles, attempt);
            try_run_one(&scaled, &workloads[i], org)
        });
        let stats = exit_on_cell_failures(outcomes, |k| {
            let (i, org) = pairs[k];
            let (name, scale) = combos[i];
            format!("{name}@x{scale}/{}", org.label())
        });
        let row = |i: usize| &stats[i * ORGS.len()..(i + 1) * ORGS.len()];

        let mut groups = Vec::new();
        let mut idx = 0;
        for (names, label) in [
            (&sp[..], "SM-side preferred"),
            (&mp[..], "memory-side preferred"),
        ] {
            let mut benches = Vec::new();
            for _ in names {
                let bench = combos[idx].0.to_string();
                let mut rows = Vec::new();
                loop {
                    let (name, scale) = combos[idx];
                    let [mem, sm, sac] = row(idx) else {
                        unreachable!("one stats row per combo")
                    };
                    rows.push(Fig13Row {
                        scale,
                        sm_side: sm.speedup_over(mem),
                        sac: sac.speedup_over(mem),
                        sac_modes: sac_mode_string(sac),
                    });
                    idx += 1;
                    if idx == combos.len() || combos[idx].0 != name {
                        break;
                    }
                }
                benches.push(Fig13Bench { bench, rows });
            }
            groups.push(Fig13Group {
                label: label.to_string(),
                benches,
            });
        }
        Fig13Data { groups }
    }
}

impl FigData for Fig13Data {
    fn figure(&self) -> &'static str {
        "fig13"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        for g in &self.groups {
            let _ = writeln!(s, "== {} benchmarks ==", g.label);
            let _ = writeln!(
                s,
                "{:6} {:>8} | {:>8} {:>8} | SAC modes",
                "bench", "input", "SM-side", "SAC"
            );
            for b in &g.benches {
                for r in &b.rows {
                    let _ = writeln!(
                        s,
                        "{:6} {:>7}x | {:>8.2} {:>8.2} | [{}]",
                        b.bench, r.scale, r.sm_side, r.sac, r.sac_modes
                    );
                }
                let _ = writeln!(s);
            }
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.array_field("groups", self.groups.len(), |w, i| {
            let g = &self.groups[i];
            w.open();
            w.str_field("label", &g.label);
            w.array_field("benches", g.benches.len(), |w, j| {
                let b = &g.benches[j];
                w.open();
                w.str_field("bench", &b.bench);
                w.array_field("rows", b.rows.len(), |w, k| {
                    let r = &b.rows[k];
                    w.open();
                    w.f64_field("scale", r.scale);
                    w.f64_field("sm_side", r.sm_side);
                    w.f64_field("sac", r.sac);
                    w.str_field("sac_modes", &r.sac_modes);
                    w.close();
                });
                w.close();
            });
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig14

/// The benchmark subset Fig. 14 sweeps.
pub const FIG14_SUBSET: [&str; 6] = ["RN", "SN", "CFD", "SRAD", "LUD", "GEMM"];

/// One configuration row of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Configuration label (`*` marks the default).
    pub label: String,
    /// Harmonic-mean SM-side speedup over the subset.
    pub sm_side: f64,
    /// Harmonic-mean SAC speedup over the subset.
    pub sac: f64,
}

/// One design-space axis of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Section {
    /// Axis title as printed (`-- inter-chip bandwidth ... --`).
    pub title: String,
    /// One row per swept configuration.
    pub rows: Vec<Fig14Row>,
}

/// Fig. 14: SAC sensitivity across the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Data {
    /// One section per design-space axis, in figure order.
    pub sections: Vec<Fig14Section>,
}

impl Fig14Data {
    /// Run all 19 configuration sweeps and collect the figure. Each sweep
    /// fans its `(benchmark × organization)` cells out over the pool;
    /// quarantined cells exit the process with the standard report.
    pub fn collect(base: &MachineConfig, params: &TraceParams, opts: &SweepOptions) -> Fig14Data {
        let subset: Vec<_> = FIG14_SUBSET
            .iter()
            .map(|n| profiles::by_name(n).expect("profile"))
            .collect();
        let run = |label: &str, cfg: &MachineConfig| -> Fig14Row {
            let rows = exit_on_quarantine(run_profiles(
                cfg,
                &subset,
                params,
                &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac],
                opts,
            ));
            let sm: Vec<f64> = rows.iter().map(|r| r.speedup(LlcOrgKind::SmSide)).collect();
            let sac: Vec<f64> = rows.iter().map(|r| r.speedup(LlcOrgKind::Sac)).collect();
            Fig14Row {
                label: label.to_string(),
                sm_side: harmonic_mean(&sm),
                sac: harmonic_mean(&sac),
            }
        };

        let mut sections = Vec::new();

        let mut rows = Vec::new();
        for (label, factor) in [
            ("PCIe-class (0.5x)", 0.5),
            ("NVLink2-class (1x) *", 1.0),
            ("NVLink3-class (2x)", 2.0),
            ("MCM-class (4x)", 4.0),
            ("MCM-class (8x)", 8.0),
        ] {
            let mut c = base.clone();
            c.interchip_pair_gbs *= factor;
            rows.push(run(label, &c));
        }
        sections.push(Fig14Section {
            title: "-- inter-chip bandwidth (default marked *) --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for (label, factor) in [("0.5x LLC", 0.5), ("1x LLC *", 1.0), ("2x LLC", 2.0)] {
            let mut c = base.clone();
            c.llc_bytes_per_chip = (c.llc_bytes_per_chip as f64 * factor) as u64;
            rows.push(run(label, &c));
        }
        sections.push(Fig14Section {
            title: "-- LLC capacity --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for iface in [
            MemoryInterface::Gddr5,
            MemoryInterface::Gddr6,
            MemoryInterface::Hbm2,
        ] {
            let mut c = base.clone().with_memory_interface(iface);
            c.dram_channel_gbs /= base.scale.topology as f64;
            let star = if iface == MemoryInterface::Gddr6 {
                " *"
            } else {
                ""
            };
            rows.push(run(&format!("{}{}", iface.label(), star), &c));
        }
        sections.push(Fig14Section {
            title: "-- memory interface --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for coh in [CoherenceKind::Software, CoherenceKind::Hardware] {
            let mut c = base.clone();
            c.coherence = coh;
            let star = if coh == CoherenceKind::Software {
                " *"
            } else {
                ""
            };
            rows.push(run(&format!("{:?}{}", coh, star), &c));
        }
        sections.push(Fig14Section {
            title: "-- coherence protocol --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for chips in [2usize, 4] {
            let mut c = base.clone();
            let total_pair_bw = c.interchip_pair_gbs * c.chips as f64;
            c.chips = chips;
            c.interchip_pair_gbs = total_pair_bw / chips as f64;
            let star = if chips == 4 { " *" } else { "" };
            rows.push(run(&format!("{} GPUs{}", chips, star), &c));
        }
        sections.push(Fig14Section {
            title: "-- GPU count (total inter-chip bandwidth held constant) --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for sectored in [false, true] {
            let mut c = base.clone();
            c.sectored = sectored;
            let star = if !sectored { " *" } else { "" };
            rows.push(run(&format!("sectored={}{}", sectored, star), &c));
        }
        sections.push(Fig14Section {
            title: "-- sectored cache --".to_string(),
            rows,
        });

        let mut rows = Vec::new();
        for ps in [2048u64, 4096, 8192] {
            let mut c = base.clone();
            c.page_size = ps;
            let star = if ps == 4096 { " *" } else { "" };
            rows.push(run(&format!("{} B pages{}", ps, star), &c));
        }
        sections.push(Fig14Section {
            title: "-- page size --".to_string(),
            rows,
        });

        Fig14Data { sections }
    }
}

impl FigData for Fig14Data {
    fn figure(&self) -> &'static str {
        "fig14"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "harmonic-mean speedup vs memory-side on {:?}:\n",
            FIG14_SUBSET
        );
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(s);
            }
            let _ = writeln!(s, "{}", section.title);
            for r in &section.rows {
                let _ = writeln!(
                    s,
                    "{:36} | SM-side {:>5.2} | SAC {:>5.2}",
                    r.label, r.sm_side, r.sac
                );
            }
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.str_array_field("subset", &FIG14_SUBSET);
        w.array_field("sections", self.sections.len(), |w, i| {
            let section = &self.sections[i];
            w.open();
            w.str_field("title", &section.title);
            w.array_field("rows", section.rows.len(), |w, j| {
                let r = &section.rows[j];
                w.open();
                w.str_field("label", &r.label);
                w.f64_field("sm_side", r.sm_side);
                w.f64_field("sac", r.sac);
                w.close();
            });
            w.close();
        });
    }
}

// ---------------------------------------------------------------- fig15

/// The benchmark subset the scale-out comparison sweeps (one SP + one MP).
pub const FIG15_SUBSET: [&str; 2] = ["SN", "SRAD"];

/// The chip counts the scale-out comparison sweeps per topology.
pub const FIG15_CHIPS: [usize; 3] = [4, 8, 16];

/// One chip-count sample of one topology's scale-out curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Point {
    /// Chip count.
    pub chips: u64,
    /// Harmonic-mean SM-side speedup over the subset.
    pub sm_side: f64,
    /// Harmonic-mean SAC speedup over the subset.
    pub sac: f64,
    /// Mean inter-chip fabric traffic of the memory-side baseline, in
    /// bytes per cycle, averaged over the subset.
    pub fabric_bytes_per_cycle: f64,
    /// The topology's bisection bandwidth at this chip count, in GB/s.
    pub bisection_gbs: f64,
}

/// One topology's scale-out curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Curve {
    /// Topology label (`"ring"` / `"full"` / `"mesh2d"`).
    pub topology: String,
    /// One point per [`FIG15_CHIPS`] entry.
    pub points: Vec<Fig15Point>,
}

/// Fig. 15 (scale-out, beyond the paper): the SAC-vs-baselines comparison
/// re-run at 4/8/16 chips on every inter-chip topology. Unlike the
/// Fig. 14 GPU-count axis (which holds *total* inter-chip bandwidth
/// constant), the scale-out sweep holds *per-link* bandwidth constant:
/// growing the machine adds links, and each topology's bisection grows
/// according to its structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Data {
    /// One curve per [`TopologyKind::ALL`] entry, in that order.
    pub curves: Vec<Fig15Curve>,
}

impl Fig15Data {
    /// Run the 9 `(topology × chip count)` sweeps and collect the figure.
    /// Each sweep fans its `(benchmark × organization)` cells out over
    /// the pool; quarantined cells exit the process with the standard
    /// report. With journaling, cells are keyed by the full machine
    /// config, so every `(topology, chips)` variant resumes independently.
    pub fn collect(base: &MachineConfig, params: &TraceParams, opts: &SweepOptions) -> Fig15Data {
        let subset: Vec<_> = FIG15_SUBSET
            .iter()
            .map(|n| profiles::by_name(n).expect("profile"))
            .collect();
        let curves = TopologyKind::ALL
            .iter()
            .map(|&kind| {
                let points = FIG15_CHIPS
                    .iter()
                    .map(|&chips| {
                        let mut c = base.clone();
                        c.topology = kind;
                        c.chips = chips;
                        let rows = exit_on_quarantine(run_profiles(
                            &c,
                            &subset,
                            params,
                            &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide, LlcOrgKind::Sac],
                            opts,
                        ));
                        let sm: Vec<f64> =
                            rows.iter().map(|r| r.speedup(LlcOrgKind::SmSide)).collect();
                        let sac: Vec<f64> =
                            rows.iter().map(|r| r.speedup(LlcOrgKind::Sac)).collect();
                        let fabric: Vec<f64> = rows
                            .iter()
                            .map(|r| {
                                let s = r.stats(LlcOrgKind::MemorySide);
                                s.ring_bytes as f64 / s.cycles as f64
                            })
                            .collect();
                        Fig15Point {
                            chips: chips as u64,
                            sm_side: harmonic_mean(&sm),
                            sac: harmonic_mean(&sac),
                            fabric_bytes_per_cycle: fabric.iter().sum::<f64>()
                                / fabric.len() as f64,
                            bisection_gbs: c.bisection_gbs(),
                        }
                    })
                    .collect();
                Fig15Curve {
                    topology: kind.label().to_string(),
                    points,
                }
            })
            .collect();
        Fig15Data { curves }
    }
}

impl FigData for Fig15Data {
    fn figure(&self) -> &'static str {
        "fig15"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "scale-out: hmean speedup vs memory-side on {FIG15_SUBSET:?};"
        );
        let _ = writeln!(
            s,
            "fabric traffic is the memory-side mean (per-link bandwidth held constant):\n"
        );
        for (i, c) in self.curves.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(s);
            }
            let _ = writeln!(s, "-- {} --", c.topology);
            let _ = writeln!(
                s,
                "{:>6} | {:>8} {:>6} | {:>11} | {:>14}",
                "chips", "SM-side", "SAC", "fabric B/cy", "bisection GB/s"
            );
            for p in &c.points {
                let _ = writeln!(
                    s,
                    "{:>6} | {:>8.2} {:>6.2} | {:>11.1} | {:>14.0}",
                    p.chips, p.sm_side, p.sac, p.fabric_bytes_per_cycle, p.bisection_gbs
                );
            }
        }
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.str_array_field("subset", &FIG15_SUBSET);
        w.array_field("curves", self.curves.len(), |w, i| {
            let c = &self.curves[i];
            w.open();
            w.str_field("topology", &c.topology);
            w.array_field("points", c.points.len(), |w, j| {
                let p = &c.points[j];
                w.open();
                w.u64_field("chips", p.chips);
                w.f64_field("sm_side", p.sm_side);
                w.f64_field("sac", p.sac);
                w.f64_field("fabric_bytes_per_cycle", p.fabric_bytes_per_cycle);
                w.f64_field("bisection_gbs", p.bisection_gbs);
                w.close();
            });
            w.close();
        });
    }
}

// -------------------------------------------------------------- table04

/// One benchmark's row of Table 4: the paper's published characteristics
/// next to what the generated trace measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4DataRow {
    /// Benchmark name.
    pub bench: String,
    /// CTA count (paper value, also used by the generator).
    pub ctas: u64,
    /// Published footprint in MB.
    pub footprint_paper_mb: f64,
    /// Measured footprint (paper-equivalent MB).
    pub footprint_measured_mb: f64,
    /// Published truly-shared MB.
    pub true_paper_mb: f64,
    /// Measured truly-shared MB.
    pub true_measured_mb: f64,
    /// Published falsely-shared MB.
    pub false_paper_mb: f64,
    /// Measured falsely-shared MB.
    pub false_measured_mb: f64,
}

/// Table 4: workload characteristics, published vs measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Data {
    /// One row per benchmark, in suite order.
    pub rows: Vec<Table4DataRow>,
}

impl Table4Data {
    /// Build from `(profile, measured characteristics)` pairs.
    pub fn compute(rows: &[(mcgpu_trace::BenchmarkProfile, analysis::Table4Row)]) -> Table4Data {
        Table4Data {
            rows: rows
                .iter()
                .map(|(p, m)| Table4DataRow {
                    bench: p.name.to_string(),
                    ctas: u64::from(p.ctas),
                    footprint_paper_mb: p.footprint_mb,
                    footprint_measured_mb: m.footprint_mb,
                    true_paper_mb: p.true_shared_mb,
                    true_measured_mb: m.true_shared_mb,
                    false_paper_mb: p.false_shared_mb,
                    false_measured_mb: m.false_shared_mb,
                })
                .collect(),
        }
    }
}

impl FigData for Table4Data {
    fn figure(&self) -> &'static str {
        "table04"
    }

    fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:6} {:>8} | {:>9} {:>9} | {:>8} {:>8} | {:>8} {:>8}",
            "bench",
            "CTAs",
            "fp(paper)",
            "fp(meas)",
            "TS(paper)",
            "TS(meas)",
            "FS(paper)",
            "FS(meas)"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:6} {:>8} | {:>9.0} {:>9.0} | {:>8.0} {:>8.1} | {:>8.0} {:>8.1}",
                r.bench,
                r.ctas,
                r.footprint_paper_mb,
                r.footprint_measured_mb,
                r.true_paper_mb,
                r.true_measured_mb,
                r.false_paper_mb,
                r.false_measured_mb
            );
        }
        let _ = writeln!(
            s,
            "\n(measured = from the generated trace, rescaled to paper-equivalent MB;"
        );
        let _ = writeln!(
            s,
            " measured footprint covers only pages the trace volume actually touches)"
        );
        s
    }

    fn write_fields(&self, w: &mut CanonicalWriter) {
        w.array_field("rows", self.rows.len(), |w, i| {
            let r = &self.rows[i];
            w.open();
            w.str_field("bench", &r.bench);
            w.u64_field("ctas", r.ctas);
            w.f64_field("footprint_paper_mb", r.footprint_paper_mb);
            w.f64_field("footprint_measured_mb", r.footprint_measured_mb);
            w.f64_field("true_paper_mb", r.true_paper_mb);
            w.f64_field("true_measured_mb", r.true_measured_mb);
            w.f64_field("false_paper_mb", r.false_paper_mb);
            w.f64_field("false_measured_mb", r.false_measured_mb);
            w.close();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::json::parse;

    #[test]
    fn canonical_json_documents_parse_and_carry_the_schema() {
        let data = Fig12Data {
            kernels: vec![Fig12Kernel {
                index: 0,
                phase: "K1".to_string(),
                sm_side: 0.61,
                sac: 1.0,
                sac_mode: "-".to_string(),
            }],
            app_sm_side: 1.19,
            app_sac: 1.07,
        };
        let doc = data.to_canonical_json();
        let v = parse(&doc).expect("canonical figdata parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(FIGDATA_SCHEMA)
        );
        assert_eq!(v.get("figure").and_then(|s| s.as_str()), Some("fig12"));
        let kernels = v.get("kernels").and_then(|k| k.as_array()).unwrap();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].get("phase").and_then(|p| p.as_str()), Some("K1"));
    }

    #[test]
    fn fig11_point_total_is_the_sum_of_classes() {
        let p = Fig11Point {
            window_cycles: 1_000,
            true_mb: 2.0,
            false_mb: 0.9,
            non_mb: 1.8,
        };
        assert!((p.total_mb() - 4.7).abs() < 1e-12);
    }

    #[test]
    fn fig13_render_groups_and_blank_lines_match_the_legacy_layout() {
        let data = Fig13Data {
            groups: vec![Fig13Group {
                label: "SM-side preferred".to_string(),
                benches: vec![Fig13Bench {
                    bench: "RN".to_string(),
                    rows: vec![Fig13Row {
                        scale: 0.5,
                        sm_side: 2.46,
                        sac: 1.51,
                        sac_modes: "SS".to_string(),
                    }],
                }],
            }],
        };
        let text = data.render();
        assert!(text.starts_with("== SM-side preferred benchmarks ==\n"));
        assert!(text.contains("RN         0.5x |     2.46     1.51 | [SS]\n"));
        assert!(
            text.ends_with("\n\n"),
            "each bench block ends with a blank line"
        );
    }
}
