//! The fixed golden-stats suite, shared between the byte-exact regression
//! test (`tests/golden.rs`) and the `golden_sweep` binary the CI
//! kill/resume job drives. One definition of the cases guarantees the
//! journaled sweep reproduces exactly the snapshots the test checks.

use mcgpu_sim::{SimBuilder, SimError};
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};
use std::path::Path;

/// One golden case: a machine variant, a benchmark, and an organization.
pub struct Case {
    /// Snapshot file stem under `tests/golden/`.
    pub name: &'static str,
    /// Benchmark profile name.
    pub bench: &'static str,
    /// LLC organization.
    pub org: LlcOrgKind,
    /// Run with hardware coherence instead of the software default.
    pub hardware_coherence: bool,
    /// Run with sectored caches.
    pub sectored: bool,
}

const fn case(name: &'static str, bench: &'static str, org: LlcOrgKind) -> Case {
    Case {
        name,
        bench,
        org,
        hardware_coherence: false,
        sectored: false,
    }
}

/// The fixed suite. Kept small enough for every-PR CI (quick trace volume)
/// while covering each organization, both coherence schemes, and sectored
/// caches.
pub fn suite() -> Vec<Case> {
    vec![
        case("sn_memside", "SN", LlcOrgKind::MemorySide),
        case("sn_smside", "SN", LlcOrgKind::SmSide),
        case("sn_sac", "SN", LlcOrgKind::Sac),
        case("cfd_static", "CFD", LlcOrgKind::StaticHalf),
        case("cfd_dynamic", "CFD", LlcOrgKind::Dynamic),
        case("srad_sac", "SRAD", LlcOrgKind::Sac),
        Case {
            hardware_coherence: true,
            ..case("rn_smside_hwcoh", "RN", LlcOrgKind::SmSide)
        },
        Case {
            sectored: true,
            ..case("gemm_sac_sectored", "GEMM", LlcOrgKind::Sac)
        },
    ]
}

impl Case {
    /// The machine variant this case runs on.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::experiment_baseline();
        if self.hardware_coherence {
            cfg.coherence = CoherenceKind::Hardware;
        }
        if self.sectored {
            cfg.sectored = true;
        }
        cfg
    }

    /// The trace volume every golden case uses.
    pub fn params() -> TraceParams {
        TraceParams {
            total_accesses: 15_000,
            ..TraceParams::quick()
        }
    }

    /// Run the case and serialize its stats to canonical JSON.
    ///
    /// # Panics
    /// Panics on any simulation error (golden cases are known-good).
    pub fn run(&self) -> String {
        self.try_run().expect("golden case completes")
    }

    /// Run the case, returning typed errors instead of panicking.
    ///
    /// # Errors
    /// [`crate::CellError`] on any simulation failure.
    pub fn try_run(&self) -> Result<String, crate::CellError> {
        self.try_run_ckpt(None)
    }

    /// Like [`Case::try_run`], but with optional mid-cell checkpointing:
    /// `snapshot` names the cell's snapshot file and the checkpoint
    /// cadence in cycles. An existing valid snapshot resumes the run
    /// mid-cycle; a missing, stale or corrupt one falls back to a full
    /// run from cycle 0 (byte-identical either way).
    ///
    /// # Errors
    /// [`crate::CellError`] on any simulation failure.
    pub fn try_run_ckpt(&self, snapshot: Option<(&Path, u64)>) -> Result<String, crate::CellError> {
        let cfg = self.config();
        let profile = profiles::by_name(self.bench).expect("known benchmark");
        let wl = generate(&cfg, &profile, &Self::params());
        let Some((path, interval)) = snapshot else {
            return Ok(crate::try_run_one(&cfg, &wl, self.org)?.to_canonical_json());
        };
        let build = || {
            SimBuilder::new(cfg.clone())
                .organization(self.org)
                .checkpoint_to(path, interval)
                .build()
        };
        let mut sim = build()?;
        if path.exists() {
            match sim.restore_from_file(path, &wl) {
                Ok(()) => eprintln!(
                    "  resumed {} from checkpoint at cycle {}",
                    self.name,
                    sim.cycle()
                ),
                Err(e) => {
                    eprintln!(
                        "  discarding unusable checkpoint for {} ({e}); running from cycle 0",
                        self.name
                    );
                    sim = build()?;
                }
            }
        }
        Ok(sim.run(&wl)?.to_canonical_json())
    }

    /// Crash-drill helper: run the case only to cycle `cut` and snapshot
    /// the interrupted simulator to `path` — exactly the on-disk state a
    /// SIGKILL between two periodic checkpoints leaves behind. Returns
    /// `true` if the cut interrupted the run (and the snapshot exists),
    /// `false` if the case finished before reaching it.
    ///
    /// # Errors
    /// [`crate::CellError`] on any simulation or snapshot-write failure.
    pub fn interrupt_at(
        &self,
        path: &Path,
        interval: u64,
        cut: u64,
    ) -> Result<bool, crate::CellError> {
        let cfg = self.config();
        let profile = profiles::by_name(self.bench).expect("known benchmark");
        let wl = generate(&cfg, &profile, &Self::params());
        let mut sim = SimBuilder::new(cfg.clone())
            .organization(self.org)
            .checkpoint_to(path, interval)
            .max_cycles(cut)
            .build()?;
        match sim.run(&wl) {
            Err(SimError::CycleLimit { .. }) => {
                sim.write_checkpoint(path, &wl)?;
                Ok(true)
            }
            Ok(_) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Journal key for this case (see [`crate::cell_config_hash`]).
    pub fn config_hash(&self) -> u64 {
        crate::cell_config_hash(&self.config(), &Self::params(), self.bench, self.org)
    }

    /// Full canonical configuration description whose hash is
    /// [`Case::config_hash`]; stored in the journal as the collision guard.
    pub fn config_desc(&self) -> String {
        crate::cell_config_desc(&self.config(), &Self::params(), self.bench, self.org)
    }
}
