//! Append-only JSONL run journal for crash-safe, resumable sweeps.
//!
//! Every sweep cell that finishes — successfully or quarantined — is
//! recorded as one JSON object per line, keyed by the cell's name and a
//! hash of everything that determines its result (machine configuration,
//! trace parameters, benchmark, organization). A later `--resume` run
//! replays completed cells whose key still matches and re-executes only
//! missing or quarantined ones; because the canonical `RunStats` JSON is
//! stored verbatim, a resumed sweep's output is byte-identical to an
//! uninterrupted run's.
//!
//! Durability: after every append the journal is rewritten through
//! [`mcgpu_types::fsio::atomic_write`] — tmp write, `fsync`, atomic
//! rename, parent-directory `fsync` — so a `SIGKILL` (or power loss) at
//! any instant leaves either the previous consistent file or the new one,
//! never a torn line at the point of the rename. A torn *tail* can still
//! exist if the kill lands inside the tmp write of a never-renamed file
//! from an older crash; [`Journal::open`] therefore stops at the first
//! malformed line and keeps every record before it. The fsio fail-point
//! tests below prove both halves of that contract.

use mcgpu_sim::RunStats;
use mcgpu_trace::TraceParams;
use mcgpu_types::fsio;
use mcgpu_types::json::{escape_into, parse, JsonValue};
use mcgpu_types::{JournalError, LlcOrgKind, MachineConfig};
use std::path::{Path, PathBuf};

/// How a journaled cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordOutcome {
    /// The cell completed; its payload is stored verbatim — the canonical
    /// stats JSON for simulation cells, the rendered text for report
    /// sections.
    Completed {
        /// Output of [`RunStats::to_canonical_json`] (simulation cells) or
        /// the section's rendered text (report-section cells).
        stats_json: String,
    },
    /// The cell exhausted its retries (or failed non-retryably).
    Quarantined {
        /// Machine-readable error class (`CellError::kind`).
        kind: String,
        /// Human-readable error message.
        error: String,
    },
}

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Cell name, unique within one sweep (e.g. `"SN/SAC"`).
    pub cell: String,
    /// [`cell_config_hash`] of the inputs that produced this outcome.
    pub config_hash: u64,
    /// The full canonical input description the hash was computed from
    /// (see [`cell_config_desc`]), stored alongside the 64-bit hash so a
    /// cache hit can verify it is not an FNV collision before replaying.
    /// `None` on records written before the field existed; such records
    /// match on hash alone (the pre-guard behaviour).
    pub config: Option<String>,
    /// Engine-mode token the cell ran under (`"cycle"` or `"fast"`), so a
    /// `--resume` refuses to mix fidelities within one journal. `None` on
    /// records written before the two-tier engine (and on non-simulation
    /// records such as report sections), which count as cycle mode.
    pub mode: Option<String>,
    /// Attempts executed before this outcome.
    pub attempts: u32,
    /// The outcome.
    pub outcome: RecordOutcome,
}

impl JournalRecord {
    /// Serialize as one JSONL line (no trailing newline).
    fn to_line(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"cell\": \"");
        escape_into(&self.cell, &mut s);
        s.push_str("\", \"config_hash\": \"");
        s.push_str(&format!("{:016x}", self.config_hash));
        s.push('"');
        if let Some(config) = &self.config {
            s.push_str(", \"config\": \"");
            escape_into(config, &mut s);
            s.push('"');
        }
        if let Some(mode) = &self.mode {
            s.push_str(", \"mode\": \"");
            escape_into(mode, &mut s);
            s.push('"');
        }
        s.push_str(&format!(", \"attempts\": {}", self.attempts));
        match &self.outcome {
            RecordOutcome::Completed { stats_json } => {
                s.push_str(", \"outcome\": \"completed\", \"stats\": \"");
                escape_into(stats_json, &mut s);
                s.push_str("\"}");
            }
            RecordOutcome::Quarantined { kind, error } => {
                s.push_str(", \"outcome\": \"quarantined\", \"kind\": \"");
                escape_into(kind, &mut s);
                s.push_str("\", \"error\": \"");
                escape_into(error, &mut s);
                s.push_str("\"}");
            }
        }
        s
    }

    /// Parse one JSONL line.
    fn from_line(line: &str) -> Result<JournalRecord, JournalError> {
        let v = parse(line)?;
        fn strf<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, JournalError> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| JournalError::new(format!("missing string field `{key}`")))
        }
        let config_hash = u64::from_str_radix(strf(&v, "config_hash")?, 16)
            .map_err(|_| JournalError::new("config_hash is not a 64-bit hex value"))?;
        let attempts = v
            .get("attempts")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| JournalError::new("missing integer field `attempts`"))?
            as u32;
        let outcome = match strf(&v, "outcome")? {
            "completed" => RecordOutcome::Completed {
                stats_json: strf(&v, "stats")?.to_string(),
            },
            "quarantined" => RecordOutcome::Quarantined {
                kind: strf(&v, "kind")?.to_string(),
                error: strf(&v, "error")?.to_string(),
            },
            other => return Err(JournalError::new(format!("unknown outcome `{other}`"))),
        };
        Ok(JournalRecord {
            cell: strf(&v, "cell")?.to_string(),
            config_hash,
            config: v
                .get("config")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            mode: v
                .get("mode")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            attempts,
            outcome,
        })
    }

    /// The engine-mode token this record was produced under; records
    /// predating the two-tier engine are cycle-mode by definition.
    pub fn mode_token(&self) -> &str {
        self.mode.as_deref().unwrap_or("cycle")
    }

    /// The recorded stats, if this cell completed.
    ///
    /// # Errors
    /// [`JournalError`] if the stored canonical JSON no longer parses
    /// (e.g. the journal was edited by hand).
    pub fn stats(&self) -> Result<Option<RunStats>, JournalError> {
        match &self.outcome {
            RecordOutcome::Completed { stats_json } => RunStats::from_canonical_json(stats_json)
                .map(Some)
                .map_err(JournalError::from),
            RecordOutcome::Quarantined { .. } => Ok(None),
        }
    }

    /// The recorded payload verbatim, if this cell completed. For cells
    /// that are not simulation runs (e.g. report sections), this is the
    /// accessor to use instead of [`JournalRecord::stats`].
    pub fn payload(&self) -> Option<&str> {
        match &self.outcome {
            RecordOutcome::Completed { stats_json } => Some(stats_json),
            RecordOutcome::Quarantined { .. } => None,
        }
    }
}

/// A sweep's run journal: in-memory records plus the on-disk JSONL file
/// they are persisted to.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<JournalRecord>,
}

impl Journal {
    /// Start a fresh journal at `path`, discarding any existing file.
    ///
    /// # Errors
    /// I/O errors creating the parent directory or the file.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let journal = Journal {
            path: path.into(),
            records: Vec::new(),
        };
        journal.persist()?;
        Ok(journal)
    }

    /// Open an existing journal, tolerating a truncated tail: loading stops
    /// at the first malformed line and keeps every record before it. A
    /// missing file yields an empty journal.
    ///
    /// # Errors
    /// I/O errors reading the file (other than it not existing).
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match JournalRecord::from_line(line) {
                Ok(r) => records.push(r),
                // Truncated tail from an interrupted write: everything
                // after the first torn line is unreachable garbage.
                Err(_) => break,
            }
        }
        Ok(Journal { path, records })
    }

    /// All records, in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The latest record for `cell`, provided it was produced by the same
    /// inputs (`config_hash` matches). A stale hash means the config or
    /// trace volume changed since the journal was written; such records
    /// are ignored so a resume never replays stats from a different
    /// experiment.
    pub fn lookup(&self, cell: &str, config_hash: u64) -> Option<&JournalRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.cell == cell && r.config_hash == config_hash)
    }

    /// [`Journal::lookup`] with a collision guard: the record must also
    /// carry the *same canonical input description* as `config`. A 64-bit
    /// FNV hash can collide, and latest-wins lookup would then silently
    /// serve a different experiment's stats from the cache; verifying the
    /// full description turns that into a cache miss (the caller falls
    /// back to re-simulation). Records written before the `config` field
    /// existed carry no description and match on hash alone.
    pub fn lookup_verified(
        &self,
        cell: &str,
        config_hash: u64,
        config: &str,
    ) -> Option<&JournalRecord> {
        self.records.iter().rev().find(|r| {
            r.cell == cell
                && r.config_hash == config_hash
                && r.config.as_deref().is_none_or(|c| c == config)
        })
    }

    /// Append one record and persist the journal atomically.
    ///
    /// # Errors
    /// I/O errors writing the tmp file or renaming it into place.
    pub fn append(&mut self, record: JournalRecord) -> std::io::Result<()> {
        self.records.push(record);
        self.persist()
    }

    /// Write all lines through [`mcgpu_types::fsio::atomic_write`] (tmp
    /// write, `fsync`, atomic rename, directory `fsync`): a crash at any
    /// instant leaves either the previous consistent file or the new one.
    fn persist(&self) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut text = String::new();
        for r in &self.records {
            text.push_str(&r.to_line());
            text.push('\n');
        }
        fsio::atomic_write(&self.path, text.as_bytes())
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical description of everything that determines a cell's result:
/// the machine configuration, the trace parameters, the benchmark name and
/// the LLC organization (all via their `Debug` forms, which cover every
/// field). [`cell_config_hash`] is the FNV-1a-64 of this string; the
/// string itself is stored in each [`JournalRecord`] so
/// [`Journal::lookup_verified`] can reject hash collisions.
pub fn cell_config_desc(
    cfg: &MachineConfig,
    params: &TraceParams,
    bench: &str,
    org: LlcOrgKind,
) -> String {
    format!("{cfg:?}|{params:?}|{bench}|{org:?}")
}

/// Hash of [`cell_config_desc`], used to invalidate journal records when
/// any input changes (and, with the stored description, to guard against
/// collisions on cache hits).
pub fn cell_config_hash(
    cfg: &MachineConfig,
    params: &TraceParams,
    bench: &str,
    org: LlcOrgKind,
) -> u64 {
    fnv1a_64(cell_config_desc(cfg, params, bench, org).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::fsio::FailPoint;

    fn completed(cell: &str, hash: u64, json: &str) -> JournalRecord {
        JournalRecord {
            cell: cell.to_string(),
            config_hash: hash,
            config: Some(format!("desc-{hash:x}")),
            mode: None,
            attempts: 1,
            outcome: RecordOutcome::Completed {
                stats_json: json.to_string(),
            },
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sac-journal-{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_reload_round_trips() {
        let path = tmp_path("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.append(completed("SN/SAC", 0xdead_beef, "{\n  \"cycles\": 12\n"))
            .unwrap();
        j.append(JournalRecord {
            cell: "CFD/dynamic".to_string(),
            config_hash: 7,
            config: None,
            mode: None,
            attempts: 3,
            outcome: RecordOutcome::Quarantined {
                kind: "deadlock".to_string(),
                error: "no forward progress for 1000 cycles".to_string(),
            },
        })
        .unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(back.records(), j.records());
        assert_eq!(
            back.lookup("SN/SAC", 0xdead_beef),
            Some(&j.records()[0]),
            "lookup finds the record under its exact key"
        );
        assert_eq!(
            back.lookup("SN/SAC", 0xdead_beee),
            None,
            "a stale config hash must not replay"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verified_lookup_rejects_a_hash_collision() {
        let path = tmp_path("collision");
        let mut j = Journal::create(&path).unwrap();
        // Two distinct experiments whose descriptions hash identically
        // (simulated collision: same stored hash, different description).
        let mut rec = completed("SN/SAC", 0x1234, "{\"cycles\": 1\n");
        rec.config = Some("experiment-A".to_string());
        j.append(rec).unwrap();

        let back = Journal::open(&path).unwrap();
        assert!(
            back.lookup_verified("SN/SAC", 0x1234, "experiment-A")
                .is_some(),
            "matching description replays"
        );
        assert!(
            back.lookup_verified("SN/SAC", 0x1234, "experiment-B")
                .is_none(),
            "a colliding hash with a different description must miss the \
             cache and fall back to re-simulation"
        );
        // Hash-only lookup still sees the record (resume compatibility).
        assert!(back.lookup("SN/SAC", 0x1234).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verified_lookup_accepts_legacy_records_without_config() {
        let path = tmp_path("legacy");
        let mut j = Journal::create(&path).unwrap();
        j.append(JournalRecord {
            cell: "a".to_string(),
            config_hash: 5,
            config: None,
            mode: None,
            attempts: 1,
            outcome: RecordOutcome::Completed {
                stats_json: "{}".to_string(),
            },
        })
        .unwrap();
        // A pre-guard record carries no description; it matches on hash
        // alone, exactly as it did before the field existed.
        let back = Journal::open(&path).unwrap();
        assert!(back.lookup_verified("a", 5, "anything").is_some());
        // And its line contains no config field at all.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("\"config\""), "line: {text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn config_desc_round_trips_through_the_journal() {
        let cfg = MachineConfig::experiment_baseline();
        let params = TraceParams::quick();
        let desc = cell_config_desc(&cfg, &params, "SN", LlcOrgKind::Sac);
        let path = tmp_path("desc-roundtrip");
        let mut j = Journal::create(&path).unwrap();
        j.append(JournalRecord {
            cell: "SN/SAC".to_string(),
            config_hash: fnv1a_64(desc.as_bytes()),
            config: Some(desc.clone()),
            mode: None,
            attempts: 1,
            outcome: RecordOutcome::Completed {
                stats_json: "{}".to_string(),
            },
        })
        .unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(back.records()[0].config.as_deref(), Some(desc.as_str()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_earlier_records() {
        let path = tmp_path("truncated");
        let mut j = Journal::create(&path).unwrap();
        j.append(completed("a", 1, "{}")).unwrap();
        j.append(completed("b", 2, "{}")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Cut the second line in half, as a crash mid-write would.
        let first_len = text.lines().next().unwrap().len();
        std::fs::write(&path, &text[..first_len + 1 + (text.len() - first_len) / 2]).unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(back.records().len(), 1);
        assert_eq!(back.records()[0].cell, "a");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_opens_empty() {
        let j = Journal::open(tmp_path("nonexistent")).unwrap();
        assert!(j.records().is_empty());
    }

    #[test]
    fn injected_write_failures_leave_the_previous_journal_readable() {
        // The atomicity contract under the fsio fault shim: whichever step
        // of the durable write dies, the on-disk journal still parses and
        // still holds every previously appended record.
        let path = tmp_path("failpoints");
        let mut j = Journal::create(&path).unwrap();
        j.append(completed("a", 1, "{}")).unwrap();
        for point in [FailPoint::ShortWrite, FailPoint::Fsync, FailPoint::Rename] {
            fsio::inject_failure(Some(point));
            let err = j
                .append(completed("b", 2, "{}"))
                .expect_err("armed fail point must surface as an I/O error");
            assert!(err.to_string().contains("injected"), "{point:?}: {err}");
            let back = Journal::open(&path).unwrap();
            assert_eq!(back.records().len(), 1, "{point:?}");
            assert_eq!(back.records()[0].cell, "a", "{point:?}");
            // The in-memory record from the failed append is still queued;
            // drop it so each fail point starts from the same state.
            j.records.pop();
        }
        // With the hook disarmed the next append goes through and the tmp
        // debris from the short write is renamed away.
        j.append(completed("b", 2, "{}")).unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(back.records().len(), 2);
        assert!(!fsio::tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn config_hash_tracks_every_input() {
        let cfg = MachineConfig::experiment_baseline();
        let params = TraceParams::quick();
        let h = cell_config_hash(&cfg, &params, "SN", LlcOrgKind::Sac);
        assert_eq!(h, cell_config_hash(&cfg, &params, "SN", LlcOrgKind::Sac));
        assert_ne!(h, cell_config_hash(&cfg, &params, "SN", LlcOrgKind::SmSide));
        assert_ne!(h, cell_config_hash(&cfg, &params, "CFD", LlcOrgKind::Sac));
        let mut cfg2 = cfg.clone();
        cfg2.watchdog_cycles += 1;
        assert_ne!(h, cell_config_hash(&cfg2, &params, "SN", LlcOrgKind::Sac));
        let params2 = TraceParams {
            total_accesses: params.total_accesses + 1,
            ..params
        };
        assert_ne!(h, cell_config_hash(&cfg, &params2, "SN", LlcOrgKind::Sac));
    }
}
