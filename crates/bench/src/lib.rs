//! Shared experiment runner for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). They share this runner: a scaled
//! baseline machine, the 16 Table 4 workloads, and helpers that run a
//! workload under each LLC organization and aggregate the statistics the
//! figures report.
//!
//! Run the binaries in release mode — e.g.
//! `cargo run --release -p sac-bench --bin fig08_speedup` — and pass
//! `--quick` for a reduced-volume smoke run.

use mcgpu_sim::{RunStats, SimBuilder};
use mcgpu_trace::{generate, profiles, BenchmarkProfile, TraceParams, Workload};
use mcgpu_types::{LlcOrgKind, MachineConfig};

pub use mcgpu_sim::stats::harmonic_mean;

/// The scaled baseline machine every figure uses unless it sweeps a
/// parameter (see `ScaleFactor::EXPERIMENT` for what "scaled" preserves).
pub fn experiment_config() -> MachineConfig {
    MachineConfig::experiment_baseline()
}

/// Trace volume: standard for figures, reduced with `--quick`.
pub fn trace_params() -> TraceParams {
    if quick_mode() {
        TraceParams {
            total_accesses: 150_000,
            ..TraceParams::standard()
        }
    } else {
        TraceParams::standard()
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Results of one benchmark under every requested organization.
pub struct BenchRows {
    /// The benchmark profile.
    pub profile: BenchmarkProfile,
    /// The generated workload (for trace-level analyses).
    pub workload: Workload,
    /// `(organization, stats)` in the order requested.
    pub runs: Vec<(LlcOrgKind, RunStats)>,
}

impl BenchRows {
    /// Stats for one organization.
    ///
    /// # Panics
    /// Panics if the organization was not part of the run set.
    pub fn stats(&self, org: LlcOrgKind) -> &RunStats {
        &self
            .runs
            .iter()
            .find(|(o, _)| *o == org)
            .expect("organization was run")
            .1
    }

    /// Speedup of `org` over the memory-side baseline.
    pub fn speedup(&self, org: LlcOrgKind) -> f64 {
        self.stats(org)
            .speedup_over(self.stats(LlcOrgKind::MemorySide))
    }
}

/// Run one benchmark under the given organizations on `cfg`.
pub fn run_benchmark(
    cfg: &MachineConfig,
    profile: &BenchmarkProfile,
    params: &TraceParams,
    orgs: &[LlcOrgKind],
) -> BenchRows {
    let workload = generate(cfg, profile, params);
    let runs = orgs
        .iter()
        .map(|&org| {
            let stats = SimBuilder::new(cfg.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&workload)
                .unwrap_or_else(|e| panic!("{}/{org}: {e}", profile.name));
            (org, stats)
        })
        .collect();
    BenchRows {
        profile: profile.clone(),
        workload,
        runs,
    }
}

/// Run the full 16-benchmark suite under the given organizations,
/// printing a progress line per benchmark to stderr.
pub fn run_suite(cfg: &MachineConfig, params: &TraceParams, orgs: &[LlcOrgKind]) -> Vec<BenchRows> {
    profiles::all_profiles()
        .iter()
        .map(|p| {
            eprintln!("  running {} ({} organizations)...", p.name, orgs.len());
            run_benchmark(cfg, p, params, orgs)
        })
        .collect()
}

/// Harmonic-mean speedup over `rows` filtered by preference (`None` = all).
pub fn group_speedup(
    rows: &[BenchRows],
    org: LlcOrgKind,
    pref: Option<profiles::Preference>,
) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| pref.is_none_or(|p| r.profile.preference == p))
        .map(|r| r.speedup(org))
        .collect();
    harmonic_mean(&v)
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_smoke() {
        let cfg = experiment_config();
        let params = TraceParams {
            total_accesses: 20_000,
            ..TraceParams::quick()
        };
        let p = profiles::by_name("SN").unwrap();
        let rows = run_benchmark(
            &cfg,
            &p,
            &params,
            &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide],
        );
        assert!((rows.speedup(LlcOrgKind::MemorySide) - 1.0).abs() < 1e-12);
        assert!(rows.speedup(LlcOrgKind::SmSide) > 0.0);
    }
}
