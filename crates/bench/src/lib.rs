//! Shared experiment runner for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). They share this runner: a scaled
//! baseline machine, the 16 Table 4 workloads, and helpers that run a
//! workload under each LLC organization and aggregate the statistics the
//! figures report.
//!
//! Run the binaries in release mode — e.g.
//! `cargo run --release -p sac-bench --bin fig08_speedup` — and pass
//! `--quick` for a reduced-volume smoke run. Every binary fans its
//! simulation runs out over the [`sweep`] thread pool; `--jobs N` (or
//! `MCGPU_JOBS=N`) bounds the parallelism, and results are identical for
//! every thread count.

use mcgpu_sim::{RunStats, SimBuilder};
use mcgpu_trace::{generate, profiles, BenchmarkProfile, TraceParams, Workload};
use mcgpu_types::{LlcOrgKind, MachineConfig};
use std::sync::Arc;

pub mod resilience;
pub mod sweep;

pub use mcgpu_sim::stats::harmonic_mean;

/// The scaled baseline machine every figure uses unless it sweeps a
/// parameter (see `ScaleFactor::EXPERIMENT` for what "scaled" preserves).
pub fn experiment_config() -> MachineConfig {
    MachineConfig::experiment_baseline()
}

/// Trace volume: standard for figures, reduced with `--quick`.
pub fn trace_params() -> TraceParams {
    if quick_mode() {
        TraceParams {
            total_accesses: 150_000,
            ..TraceParams::standard()
        }
    } else {
        TraceParams::standard()
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Results of one benchmark under every requested organization.
pub struct BenchRows {
    /// The benchmark profile.
    pub profile: BenchmarkProfile,
    /// The generated workload (for trace-level analyses). Shared rather
    /// than owned so the sweep's parallel runs read one copy.
    pub workload: Arc<Workload>,
    /// `(organization, stats)` in the order requested.
    pub runs: Vec<(LlcOrgKind, RunStats)>,
}

impl BenchRows {
    /// Stats for one organization.
    ///
    /// # Panics
    /// Panics if the organization was not part of the run set.
    pub fn stats(&self, org: LlcOrgKind) -> &RunStats {
        &self
            .runs
            .iter()
            .find(|(o, _)| *o == org)
            .expect("organization was run")
            .1
    }

    /// Speedup of `org` over the memory-side baseline.
    pub fn speedup(&self, org: LlcOrgKind) -> f64 {
        self.stats(org)
            .speedup_over(self.stats(LlcOrgKind::MemorySide))
    }
}

/// Run one `(workload, organization)` simulation — the unit of work every
/// sweep fans out.
pub fn run_one(cfg: &MachineConfig, workload: &Workload, org: LlcOrgKind) -> RunStats {
    SimBuilder::new(cfg.clone())
        .organization(org)
        .build()
        .expect("valid machine configuration")
        .run(workload)
        .unwrap_or_else(|e| panic!("{}/{org}: {e}", workload.name))
}

/// Run one benchmark under the given organizations on `cfg`, fanning the
/// per-organization runs out over the sweep pool.
pub fn run_benchmark(
    cfg: &MachineConfig,
    profile: &BenchmarkProfile,
    params: &TraceParams,
    orgs: &[LlcOrgKind],
) -> BenchRows {
    let workload = Arc::new(generate(cfg, profile, params));
    let runs = sweep::map(orgs.to_vec(), |org| (org, run_one(cfg, &workload, org)));
    BenchRows {
        profile: profile.clone(),
        workload,
        runs,
    }
}

/// Run the full 16-benchmark suite under the given organizations on the
/// sweep pool: trace generation fans out per benchmark, then every
/// (benchmark × organization) simulation fans out independently. Results
/// are collected in input order, so the rows are identical to the serial
/// loop's for any `--jobs` value.
pub fn run_suite(cfg: &MachineConfig, params: &TraceParams, orgs: &[LlcOrgKind]) -> Vec<BenchRows> {
    run_profiles(cfg, &profiles::all_profiles(), params, orgs)
}

/// [`run_suite`] over an explicit benchmark subset.
pub fn run_profiles(
    cfg: &MachineConfig,
    profs: &[BenchmarkProfile],
    params: &TraceParams,
    orgs: &[LlcOrgKind],
) -> Vec<BenchRows> {
    eprintln!(
        "  sweep: {} benchmarks x {} organizations on {} thread(s)",
        profs.len(),
        orgs.len(),
        sweep::jobs()
    );
    let workloads: Vec<Arc<Workload>> =
        sweep::map(profs.to_vec(), |p| Arc::new(generate(cfg, &p, params)));
    let pairs: Vec<(usize, LlcOrgKind)> = (0..profs.len())
        .flat_map(|pi| orgs.iter().map(move |&org| (pi, org)))
        .collect();
    let stats = sweep::map(pairs, |(pi, org)| {
        let s = run_one(cfg, &workloads[pi], org);
        eprintln!("  finished {} / {}", profs[pi].name, org.label());
        s
    });
    let mut stats = stats.into_iter();
    profs
        .iter()
        .zip(&workloads)
        .map(|(p, wl)| BenchRows {
            profile: p.clone(),
            workload: Arc::clone(wl),
            runs: orgs
                .iter()
                .map(|&org| (org, stats.next().expect("one result per pair")))
                .collect(),
        })
        .collect()
}

/// Harmonic-mean speedup over `rows` filtered by preference (`None` = all).
pub fn group_speedup(
    rows: &[BenchRows],
    org: LlcOrgKind,
    pref: Option<profiles::Preference>,
) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| pref.is_none_or(|p| r.profile.preference == p))
        .map(|r| r.speedup(org))
        .collect();
    harmonic_mean(&v)
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_smoke() {
        let cfg = experiment_config();
        let params = TraceParams {
            total_accesses: 20_000,
            ..TraceParams::quick()
        };
        let p = profiles::by_name("SN").unwrap();
        let rows = run_benchmark(
            &cfg,
            &p,
            &params,
            &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide],
        );
        assert!((rows.speedup(LlcOrgKind::MemorySide) - 1.0).abs() < 1e-12);
        assert!(rows.speedup(LlcOrgKind::SmSide) > 0.0);
    }
}
