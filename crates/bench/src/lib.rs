//! Shared experiment runner for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). They share this runner: a scaled
//! baseline machine, the 16 Table 4 workloads, and helpers that run a
//! workload under each LLC organization and aggregate the statistics the
//! figures report.
//!
//! Run the binaries in release mode — e.g.
//! `cargo run --release -p sac-bench --bin fig08_speedup` — and pass
//! `--quick` for a reduced-volume smoke run. Every binary fans its
//! simulation runs out over the [`sweep`] thread pool; `--jobs N` (or
//! `MCGPU_JOBS=N`) bounds the parallelism, and results are identical for
//! every thread count.
//!
//! # Crash safety and resume
//!
//! Each (benchmark × organization) cell runs in isolation: a panicking,
//! deadlocked or over-budget cell is retried with escalating budgets and,
//! if it keeps failing, quarantined with a typed [`sweep::CellError`] while
//! every sibling cell completes. Pass `--journal results/run.jsonl` to
//! record every finished cell in an append-only JSONL [`journal`], and
//! `--resume results/run.jsonl` after an interruption to replay completed
//! cells byte-identically and re-execute only missing or quarantined ones.

use mcgpu_sim::{ObsReport, RunStats, SimBuilder};
use mcgpu_trace::{generate, profiles, BenchmarkProfile, TraceParams, Workload};
use mcgpu_types::{EngineMode, LlcOrgKind, MachineConfig, ObsConfig};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

pub mod crossval;
pub mod fastmode;
pub mod figcheck;
pub mod figdata;
pub mod golden;
pub mod journal;
pub mod proto;
pub mod resilience;
pub mod serve;
pub mod state;
pub mod sweep;

pub use journal::{cell_config_desc, cell_config_hash, Journal, JournalRecord, RecordOutcome};
pub use mcgpu_sim::stats::harmonic_mean;
pub use sweep::{CellError, CellOutcome};

/// The scaled baseline machine every figure uses unless it sweeps a
/// parameter (see `ScaleFactor::EXPERIMENT` for what "scaled" preserves).
///
/// `MCGPU_WATCHDOG_CYCLES` overrides the forward-progress watchdog window
/// (validated by `MachineConfig::validate()` at build time; `u64::MAX`
/// disables the watchdog).
pub fn experiment_config() -> MachineConfig {
    let mut cfg = MachineConfig::experiment_baseline();
    if let Some(n) = std::env::var("MCGPU_WATCHDOG_CYCLES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        cfg.watchdog_cycles = n;
    }
    cfg
}

/// Trace volume: standard for figures, reduced with `--quick`.
pub fn trace_params() -> TraceParams {
    if quick_mode() {
        TraceParams {
            total_accesses: 150_000,
            ..TraceParams::standard()
        }
    } else {
        TraceParams::standard()
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Validate an `--mode` token against the engine-mode registry, exiting
/// with the registry-style diagnostic on an unknown token (mirrors the
/// binaries' `--org` validation).
pub fn parse_mode_or_exit(token: &str) -> EngineMode {
    EngineMode::from_token(token).unwrap_or_else(|| {
        eprintln!(
            "error: unknown engine mode `{token}`; known modes: {} (see --list-modes)",
            EngineMode::tokens().join(", ")
        );
        std::process::exit(2);
    })
}

/// Default mid-cell checkpoint cadence in simulated cycles; the engine
/// quantizes writes to its coarse deadline-check grid, so this is also the
/// finest cadence that costs nothing on the hot path.
pub const DEFAULT_CKPT_INTERVAL: u64 = 65_536;

/// Journal/resume options for a sweep, normally parsed from the command
/// line with [`SweepOptions::from_args`].
#[derive(Debug, Default)]
pub struct SweepOptions {
    /// Record finished cells to a fresh journal at this path.
    pub journal: Option<PathBuf>,
    /// Load this journal, replay its completed cells, re-run the rest, and
    /// keep recording to the same path. Takes precedence over `journal`.
    pub resume: Option<PathBuf>,
    /// Directory for mid-cell engine checkpoints. When set, every cell
    /// periodically snapshots its full simulator state here and a resumed
    /// (or crashed-and-restarted) sweep continues interrupted cells from
    /// their latest valid snapshot instead of from cycle 0; a missing,
    /// stale or corrupt snapshot silently falls back to a full re-run.
    /// `None` (the default) disables checkpointing entirely — no file is
    /// ever written and every output stays byte-identical.
    pub state_dir: Option<PathBuf>,
    /// Checkpoint cadence in cycles; `0` means [`DEFAULT_CKPT_INTERVAL`].
    /// Ignored unless `state_dir` is set.
    pub ckpt_interval: u64,
    /// How cells are evaluated: cycle-stepped simulation (the default) or
    /// the analytic fast estimator (see [`fastmode`]). Journal records are
    /// stamped with the mode, and a `--resume` in a different mode is
    /// refused rather than silently mixing fidelities.
    pub mode: EngineMode,
    /// Event-driven idle-cycle skipping for cycle-mode cells. Results are
    /// byte-identical either way (the engine's skip contract), so this is
    /// purely a speed knob and is *not* part of the journal cell identity.
    pub skip_idle: bool,
}

impl SweepOptions {
    /// No journaling (the default for tests and library callers).
    pub fn none() -> SweepOptions {
        SweepOptions::default()
    }

    /// Parse `--journal PATH` / `--resume PATH` / `--state-dir PATH` /
    /// `--checkpoint-interval N` (or `--flag=VALUE`) from the process
    /// arguments.
    pub fn from_args() -> SweepOptions {
        fn value(name: &str) -> Option<String> {
            let args: Vec<String> = std::env::args().collect();
            for (i, a) in args.iter().enumerate() {
                if a == name {
                    return args.get(i + 1).cloned();
                }
                if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                    return Some(v.to_string());
                }
            }
            None
        }
        SweepOptions {
            journal: value("--journal").map(PathBuf::from),
            resume: value("--resume").map(PathBuf::from),
            state_dir: value("--state-dir").map(PathBuf::from),
            ckpt_interval: value("--checkpoint-interval")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            mode: value("--mode").map_or(EngineMode::Cycle, |v| parse_mode_or_exit(&v)),
            skip_idle: std::env::args().any(|a| a == "--skip-idle"),
        }
    }

    /// The effective (state directory, checkpoint interval) pair, or
    /// `None` when mid-cell checkpointing is off.
    pub fn ckpt(&self) -> Option<(&Path, u64)> {
        self.state_dir.as_deref().map(|d| {
            (
                d,
                if self.ckpt_interval == 0 {
                    DEFAULT_CKPT_INTERVAL
                } else {
                    self.ckpt_interval
                },
            )
        })
    }

    /// Adapt for binaries that run *several* sweeps in sequence: a fresh
    /// `--journal` is truncated once, here, and then treated as a resume
    /// target so later sweeps append to it instead of truncating the
    /// records of earlier ones.
    pub fn sequential(self) -> SweepOptions {
        if let (Some(path), None) = (&self.journal, &self.resume) {
            Journal::create(path)
                .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display()));
            SweepOptions {
                journal: None,
                resume: Some(path.clone()),
                ..self
            }
        } else {
            self
        }
    }

    /// Open the journal these options describe, if any.
    ///
    /// Journal I/O failures abort the process: they are environment
    /// errors (full disk, bad path), not cell outcomes, and silently
    /// dropping durability would defeat the journal's purpose.
    fn open_journal(&self) -> Option<Mutex<Journal>> {
        if let Some(path) = &self.resume {
            let j = Journal::open(path)
                .unwrap_or_else(|e| panic!("cannot open journal {}: {e}", path.display()));
            eprintln!(
                "  resuming from {} ({} recorded cell(s))",
                path.display(),
                j.records().len()
            );
            Some(Mutex::new(j))
        } else if let Some(path) = &self.journal {
            let j = Journal::create(path)
                .unwrap_or_else(|e| panic!("cannot create journal {}: {e}", path.display()));
            Some(Mutex::new(j))
        } else {
            None
        }
    }
}

/// One quarantined cell of a failed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFailure {
    /// Cell name (`"BENCH/organization"`).
    pub cell: String,
    /// Attempts executed before giving up.
    pub attempts: u32,
    /// The final typed error.
    pub error: CellError,
}

/// A sweep finished with one or more quarantined cells. Every other cell
/// completed (and was journaled, if journaling was on); the error lists
/// exactly which cells need attention.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Cells that completed successfully.
    pub completed: usize,
    /// Cells that exhausted their retries.
    pub quarantined: Vec<CellFailure>,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sweep quarantined {} of {} cell(s):",
            self.quarantined.len(),
            self.completed + self.quarantined.len()
        )?;
        for q in &self.quarantined {
            writeln!(
                f,
                "  {} [{}] after {} attempt(s): {}",
                q.cell,
                q.error.kind(),
                q.attempts,
                q.error
            )?;
        }
        write!(
            f,
            "re-run with --resume <journal> to retry only the quarantined cells"
        )
    }
}

impl std::error::Error for SweepFailure {}

/// Unwrap a sweep result in a binary: print the quarantine report and exit
/// non-zero on failure.
pub fn exit_on_quarantine<T>(result: Result<T, SweepFailure>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// Collapse [`sweep::map_isolated`] outcomes in a binary: if any cell is
/// quarantined, print the full report (naming cell `i` via `name(i)`) and
/// exit non-zero; otherwise return the results in input order.
pub fn exit_on_cell_failures<R>(
    outcomes: Vec<CellOutcome<R>>,
    name: impl Fn(usize) -> String,
) -> Vec<R> {
    let quarantined: Vec<CellFailure> = outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| {
            o.result.as_ref().err().map(|e| CellFailure {
                cell: name(i),
                attempts: o.attempts,
                error: e.clone(),
            })
        })
        .collect();
    if !quarantined.is_empty() {
        eprintln!(
            "{}",
            SweepFailure {
                completed: outcomes.len() - quarantined.len(),
                quarantined,
            }
        );
        std::process::exit(1);
    }
    outcomes
        .into_iter()
        .map(|o| o.result.expect("quarantine handled above"))
        .collect()
}

/// Results of one benchmark under every requested organization.
pub struct BenchRows {
    /// The benchmark profile.
    pub profile: BenchmarkProfile,
    /// The generated workload (for trace-level analyses). Shared rather
    /// than owned so the sweep's parallel runs read one copy.
    pub workload: Arc<Workload>,
    /// `(organization, stats)` in the order requested.
    pub runs: Vec<(LlcOrgKind, RunStats)>,
}

impl BenchRows {
    /// Stats for one organization.
    ///
    /// # Panics
    /// Panics if the organization was not part of the run set.
    pub fn stats(&self, org: LlcOrgKind) -> &RunStats {
        &self
            .runs
            .iter()
            .find(|(o, _)| *o == org)
            .expect("organization was run")
            .1
    }

    /// Speedup of `org` over the memory-side baseline.
    pub fn speedup(&self, org: LlcOrgKind) -> f64 {
        self.stats(org)
            .speedup_over(self.stats(LlcOrgKind::MemorySide))
    }
}

/// Run one `(workload, organization)` simulation, returning typed errors
/// instead of panicking — the unit of work every crash-safe sweep fans out.
///
/// # Errors
/// [`CellError::Sim`] for configuration rejections and runtime aborts
/// (cycle limit, deadlock, wall-clock timeout, invariant violation).
pub fn try_run_one(
    cfg: &MachineConfig,
    workload: &Workload,
    org: LlcOrgKind,
) -> Result<RunStats, CellError> {
    try_run_cell(cfg, workload, org, EngineMode::Cycle, false)
}

/// [`try_run_one`] with the engine tier selected explicitly: cycle-stepped
/// simulation (optionally with idle-cycle skipping, which is
/// byte-identical) or the analytic fast estimator (`skip_idle` is
/// meaningless and ignored in fast mode).
///
/// # Errors
/// [`CellError::Sim`] for configuration rejections and runtime aborts;
/// fast-mode evaluation cannot abort.
pub fn try_run_cell(
    cfg: &MachineConfig,
    workload: &Workload,
    org: LlcOrgKind,
    mode: EngineMode,
    skip_idle: bool,
) -> Result<RunStats, CellError> {
    match mode {
        EngineMode::Fast => Ok(fastmode::run_fast(cfg, workload, org)),
        EngineMode::Cycle => Ok(SimBuilder::new(cfg.clone())
            .organization(org)
            .skip_idle(skip_idle)
            .build()?
            .run(workload)?),
    }
}

/// Run one `(workload, organization)` simulation.
///
/// # Panics
/// Panics on any simulation error; use [`try_run_one`] in sweeps.
pub fn run_one(cfg: &MachineConfig, workload: &Workload, org: LlcOrgKind) -> RunStats {
    try_run_one(cfg, workload, org).unwrap_or_else(|e| panic!("{}/{org}: {e}", workload.name))
}

/// Like [`try_run_one`], but with the observability layer configured by
/// `obs`: the returned [`ObsReport`] carries the run's latency histograms,
/// epoch timeline, and (at the trace level) the Chrome-trace JSON. The
/// report is `None` when `obs` is off. The [`RunStats`] are byte-identical
/// to an unobserved run at any level — the observer is strictly read-only.
///
/// # Errors
/// [`CellError::Sim`] for configuration rejections and runtime aborts.
pub fn try_run_one_observed(
    cfg: &MachineConfig,
    workload: &Workload,
    org: LlcOrgKind,
    obs: ObsConfig,
) -> Result<(RunStats, Option<ObsReport>), CellError> {
    let mut sim = SimBuilder::new(cfg.clone())
        .organization(org)
        .observability(obs)
        .build()?;
    let stats = sim.run(workload)?;
    Ok((stats, sim.take_obs_report()))
}

/// Run one observed `(workload, organization)` simulation.
///
/// # Panics
/// Panics on any simulation error; use [`try_run_one_observed`] in sweeps.
pub fn run_one_observed(
    cfg: &MachineConfig,
    workload: &Workload,
    org: LlcOrgKind,
    obs: ObsConfig,
) -> (RunStats, Option<ObsReport>) {
    try_run_one_observed(cfg, workload, org, obs)
        .unwrap_or_else(|e| panic!("{}/{org}: {e}", workload.name))
}

/// One isolated attempt of a sweep cell. Deterministic backoff: attempt
/// `n` runs with the watchdog window scaled by `2^n`, so a slow-but-live
/// run clears a spurious deadlock trip while a true deadlock still fails
/// every attempt identically. No wall-clock scheduling is involved, so
/// results remain a pure function of the inputs.
///
/// With `ckpt` set, the attempt periodically snapshots its full engine
/// state to the given path and — if a snapshot from an identically
/// configured interrupted attempt is already there — resumes from it
/// mid-kernel at the snapshot's exact cycle. Any restore failure
/// (missing, torn, corrupt or differently configured snapshot, including
/// one written under a different attempt's escalated watchdog) falls
/// back to a full run from cycle 0; restore-then-run is byte-identical
/// to the uninterrupted run, so the fallback is a cost, never a
/// correctness, decision.
fn run_cell_attempt(
    cfg: &MachineConfig,
    workload: &Workload,
    org: LlcOrgKind,
    attempt: u32,
    ckpt: Option<(&Path, u64)>,
    mode: EngineMode,
    skip_idle: bool,
) -> Result<RunStats, CellError> {
    if mode == EngineMode::Fast {
        // No cycles: nothing to watchdog, checkpoint, or escalate.
        return Ok(fastmode::run_fast(cfg, workload, org));
    }
    let mut c = cfg.clone();
    c.watchdog_cycles = sweep::escalate_budget(c.watchdog_cycles, attempt);
    let Some((path, interval)) = ckpt else {
        return try_run_cell(&c, workload, org, mode, skip_idle);
    };
    let build = || {
        SimBuilder::new(c.clone())
            .organization(org)
            .skip_idle(skip_idle)
            .checkpoint_to(path, interval)
            .build()
    };
    let mut sim = build()?;
    if path.exists() {
        match sim.restore_from_file(path, workload) {
            Ok(()) => eprintln!(
                "  resumed {}/{org} from checkpoint at cycle {}",
                workload.name,
                sim.cycle()
            ),
            Err(e) => {
                eprintln!(
                    "  discarding unusable checkpoint for {}/{org} ({e}); running from cycle 0",
                    workload.name
                );
                // A failed restore may have partially overwritten the
                // simulator; rebuild rather than trust it.
                sim = build()?;
            }
        }
    }
    Ok(sim.run(workload)?)
}

/// Run one benchmark under the given organizations on `cfg`, fanning the
/// per-organization runs out over the sweep pool.
///
/// # Errors
/// [`SweepFailure`] listing every quarantined cell; sibling cells still
/// completed (and were journaled, if `opts` enables journaling).
pub fn run_benchmark(
    cfg: &MachineConfig,
    profile: &BenchmarkProfile,
    params: &TraceParams,
    orgs: &[LlcOrgKind],
    opts: &SweepOptions,
) -> Result<BenchRows, SweepFailure> {
    let mut rows = run_profiles(cfg, std::slice::from_ref(profile), params, orgs, opts)?;
    Ok(rows.pop().expect("one profile yields one row"))
}

/// Run the full 16-benchmark suite under the given organizations on the
/// sweep pool: trace generation fans out per benchmark, then every
/// (benchmark × organization) simulation fans out independently. Results
/// are collected in input order, so the rows are identical to the serial
/// loop's for any `--jobs` value.
///
/// # Errors
/// [`SweepFailure`] listing every quarantined cell.
pub fn run_suite(
    cfg: &MachineConfig,
    params: &TraceParams,
    orgs: &[LlcOrgKind],
    opts: &SweepOptions,
) -> Result<Vec<BenchRows>, SweepFailure> {
    run_profiles(cfg, &profiles::all_profiles(), params, orgs, opts)
}

/// [`run_suite`] over an explicit benchmark subset.
///
/// Every (benchmark × organization) cell runs isolated with bounded
/// retries (see [`sweep::run_cell`]); with journaling enabled, each cell's
/// outcome is persisted the moment it finishes, and cells recorded as
/// completed by a matching earlier run are replayed instead of re-run.
///
/// # Errors
/// [`SweepFailure`] listing every quarantined cell.
pub fn run_profiles(
    cfg: &MachineConfig,
    profs: &[BenchmarkProfile],
    params: &TraceParams,
    orgs: &[LlcOrgKind],
    opts: &SweepOptions,
) -> Result<Vec<BenchRows>, SweepFailure> {
    eprintln!(
        "  sweep: {} benchmarks x {} organizations on {} thread(s)",
        profs.len(),
        orgs.len(),
        sweep::jobs()
    );
    let journal = opts.open_journal();
    // A journal records results of exactly one fidelity. Refuse to resume
    // in a different mode instead of silently mixing cycle-accurate and
    // estimated cells in one result set.
    if let Some(j) = &journal {
        let guard = j.lock().expect("journal lock");
        if let Some(r) = guard
            .records()
            .iter()
            .find(|r| r.mode_token() != opts.mode.token())
        {
            panic!(
                "cannot resume journal in `{}` mode: cell `{}` was recorded in `{}` mode; \
                 re-run with --mode {} or start a fresh journal",
                opts.mode.token(),
                r.cell,
                r.mode_token(),
                r.mode_token(),
            );
        }
    }
    let ckpt = opts.ckpt();
    if let Some((dir, _)) = ckpt {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create state dir {}: {e}", dir.display()));
    }
    let workloads: Vec<Arc<Workload>> =
        sweep::map(profs.to_vec(), |p| Arc::new(generate(cfg, &p, params)));
    let pairs: Vec<(usize, LlcOrgKind)> = (0..profs.len())
        .flat_map(|pi| orgs.iter().map(move |&org| (pi, org)))
        .collect();
    let outcomes = sweep::map(pairs, |(pi, org)| {
        let name = format!("{}/{}", profs[pi].name, org.label());
        // Fast-mode cells get a distinct identity so a fast journal can
        // never replay into a cycle sweep (or vice versa); cycle-mode
        // descs are unchanged so existing journals stay valid. Idle
        // skipping is byte-identical by contract and so is *not* part of
        // the identity.
        let mut desc = cell_config_desc(cfg, params, profs[pi].name, org);
        if opts.mode != EngineMode::Cycle {
            desc.push_str("|mode:");
            desc.push_str(opts.mode.token());
        }
        let hash = journal::fnv1a_64(desc.as_bytes());
        // A prior journal record either replays (completed) or seeds the
        // attempt counter (quarantined), so a resume continues the budget
        // escalation where the interrupted run stopped instead of
        // restarting it from zero.
        let mut prior_attempts = 0;
        if let Some(j) = &journal {
            let guard = j.lock().expect("journal lock");
            if let Some(r) = guard.lookup_verified(&name, hash, &desc) {
                match &r.outcome {
                    RecordOutcome::Completed { .. } => {
                        if let Ok(Some(stats)) = r.stats() {
                            eprintln!("  replayed {name} from journal");
                            return (
                                name,
                                CellOutcome {
                                    attempts: 0,
                                    result: Ok(stats),
                                },
                            );
                        }
                    }
                    RecordOutcome::Quarantined { .. } => {
                        prior_attempts = r.attempts;
                        eprintln!("  retrying quarantined {name} from attempt {prior_attempts}");
                    }
                }
            }
        }
        let snapshot =
            ckpt.map(|(dir, interval)| (state::cell_snapshot_path(dir, &name, hash), interval));
        let out = sweep::run_cell_from(prior_attempts, |attempt| {
            run_cell_attempt(
                cfg,
                &workloads[pi],
                org,
                attempt,
                snapshot.as_ref().map(|(p, i)| (p.as_path(), *i)),
                opts.mode,
                opts.skip_idle,
            )
        });
        // A terminal outcome supersedes the cell's snapshot: a completed
        // cell replays from the journal and a quarantined one re-runs
        // under a different escalated budget, so the snapshot can never
        // be consumed again (`state::gc_state` reaps any we miss here).
        if let Some((p, _)) = &snapshot {
            let _ = std::fs::remove_file(p);
        }
        if let Some(j) = &journal {
            let outcome = match &out.result {
                Ok(stats) => RecordOutcome::Completed {
                    stats_json: stats.to_canonical_json(),
                },
                Err(e) => RecordOutcome::Quarantined {
                    kind: e.kind().to_string(),
                    error: e.to_string(),
                },
            };
            j.lock()
                .expect("journal lock")
                .append(JournalRecord {
                    cell: name.clone(),
                    config_hash: hash,
                    config: Some(desc),
                    mode: Some(opts.mode.token().to_string()),
                    attempts: out.attempts,
                    outcome,
                })
                .expect("write run journal");
        }
        match &out.result {
            Ok(_) => eprintln!("  finished {name}"),
            Err(e) => eprintln!(
                "  QUARANTINED {name} after {} attempt(s): {e}",
                out.attempts
            ),
        }
        (name, out)
    });

    let quarantined: Vec<CellFailure> = outcomes
        .iter()
        .filter_map(|(name, out)| {
            out.result.as_ref().err().map(|e| CellFailure {
                cell: name.clone(),
                attempts: out.attempts,
                error: e.clone(),
            })
        })
        .collect();
    if !quarantined.is_empty() {
        return Err(SweepFailure {
            completed: outcomes.len() - quarantined.len(),
            quarantined,
        });
    }

    let mut stats = outcomes
        .into_iter()
        .map(|(_, out)| out.result.expect("quarantine handled above"));
    Ok(profs
        .iter()
        .zip(&workloads)
        .map(|(p, wl)| BenchRows {
            profile: p.clone(),
            workload: Arc::clone(wl),
            runs: orgs
                .iter()
                .map(|&org| (org, stats.next().expect("one result per pair")))
                .collect(),
        })
        .collect())
}

/// One independently rendered section of a report binary (e.g. a table or
/// a model dump), runnable as a sweep cell so report binaries get the same
/// isolation, retry, and journal/resume machinery as simulation sweeps.
#[derive(Debug, Clone)]
pub struct ReportSection {
    /// Stable section name; the journal cell is `"{report}/{name}"`.
    pub name: &'static str,
    /// Debug dump of everything that determines the rendered text. It is
    /// hashed into the journal key, so a section whose inputs changed is
    /// re-rendered instead of replayed from a stale record.
    pub inputs: String,
    /// Render the section to the exact text the binary should print.
    pub render: fn() -> String,
}

/// Render every section of `report` through the sweep machinery and return
/// the rendered texts in input order.
///
/// Each section runs isolated with bounded retries (see
/// [`sweep::run_cell`]); with journaling enabled the rendered text is
/// persisted verbatim the moment a section finishes, and sections recorded
/// by a matching earlier run are replayed instead of re-rendered.
///
/// # Errors
/// [`SweepFailure`] listing every quarantined section.
pub fn run_report_sections(
    report: &str,
    sections: &[ReportSection],
    opts: &SweepOptions,
) -> Result<Vec<String>, SweepFailure> {
    let journal = opts.open_journal();
    let outcomes = sweep::map(sections.to_vec(), |s| {
        let name = format!("{report}/{}", s.name);
        let desc = format!("{report}|{}|{}", s.name, s.inputs);
        let hash = journal::fnv1a_64(desc.as_bytes());
        if let Some(j) = &journal {
            let replay = j
                .lock()
                .expect("journal lock")
                .lookup_verified(&name, hash, &desc)
                .and_then(|r| r.payload().map(str::to_string));
            if let Some(text) = replay {
                eprintln!("  replayed {name} from journal");
                return (
                    name,
                    CellOutcome {
                        attempts: 0,
                        result: Ok(text),
                    },
                );
            }
        }
        let out = sweep::run_cell(|_| Ok((s.render)()));
        if let Some(j) = &journal {
            let outcome = match &out.result {
                Ok(text) => RecordOutcome::Completed {
                    stats_json: text.clone(),
                },
                Err(e) => RecordOutcome::Quarantined {
                    kind: e.kind().to_string(),
                    error: e.to_string(),
                },
            };
            j.lock()
                .expect("journal lock")
                .append(JournalRecord {
                    cell: name.clone(),
                    config_hash: hash,
                    config: Some(desc),
                    mode: None,
                    attempts: out.attempts,
                    outcome,
                })
                .expect("write run journal");
        }
        (name, out)
    });

    let quarantined: Vec<CellFailure> = outcomes
        .iter()
        .filter_map(|(name, out)| {
            out.result.as_ref().err().map(|e| CellFailure {
                cell: name.clone(),
                attempts: out.attempts,
                error: e.clone(),
            })
        })
        .collect();
    if !quarantined.is_empty() {
        return Err(SweepFailure {
            completed: outcomes.len() - quarantined.len(),
            quarantined,
        });
    }
    Ok(outcomes
        .into_iter()
        .map(|(_, out)| out.result.expect("quarantine handled above"))
        .collect())
}

/// Harmonic-mean speedup over `rows` filtered by preference (`None` = all).
pub fn group_speedup(
    rows: &[BenchRows],
    org: LlcOrgKind,
    pref: Option<profiles::Preference>,
) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| pref.is_none_or(|p| r.profile.preference == p))
        .map(|r| r.speedup(org))
        .collect();
    harmonic_mean(&v)
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_smoke() {
        let cfg = experiment_config();
        let params = TraceParams {
            total_accesses: 20_000,
            ..TraceParams::quick()
        };
        let p = profiles::by_name("SN").unwrap();
        let rows = run_benchmark(
            &cfg,
            &p,
            &params,
            &[LlcOrgKind::MemorySide, LlcOrgKind::SmSide],
            &SweepOptions::none(),
        )
        .expect("healthy cells never quarantine");
        assert!((rows.speedup(LlcOrgKind::MemorySide) - 1.0).abs() < 1e-12);
        assert!(rows.speedup(LlcOrgKind::SmSide) > 0.0);
    }

    #[test]
    fn journaled_run_records_and_replays_cells() {
        let cfg = experiment_config();
        let params = TraceParams {
            total_accesses: 10_000,
            ..TraceParams::quick()
        };
        let p = profiles::by_name("SN").unwrap();
        let path =
            std::env::temp_dir().join(format!("sac-bench-journal-{}.jsonl", std::process::id()));
        let orgs = [LlcOrgKind::MemorySide, LlcOrgKind::Sac];

        let fresh = run_benchmark(
            &cfg,
            &p,
            &params,
            &orgs,
            &SweepOptions {
                journal: Some(path.clone()),
                ..SweepOptions::none()
            },
        )
        .unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records().len(), 2, "one record per cell");

        // Resuming replays both cells byte-identically without re-running.
        let resumed = run_benchmark(
            &cfg,
            &p,
            &params,
            &orgs,
            &SweepOptions {
                resume: Some(path.clone()),
                ..SweepOptions::none()
            },
        )
        .unwrap();
        for org in orgs {
            assert_eq!(
                resumed.stats(org).to_canonical_json(),
                fresh.stats(org).to_canonical_json()
            );
        }
        assert_eq!(
            Journal::open(&path).unwrap().records().len(),
            2,
            "replayed cells are not re-journaled"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn report_sections_record_and_replay() {
        let path =
            std::env::temp_dir().join(format!("sac-bench-report-{}.jsonl", std::process::id()));
        let sections = [
            ReportSection {
                name: "alpha",
                inputs: "v1".to_string(),
                render: || "alpha text\n".to_string(),
            },
            ReportSection {
                name: "beta",
                inputs: "v1".to_string(),
                render: || "beta text\n".to_string(),
            },
        ];

        let fresh = run_report_sections(
            "demo",
            &sections,
            &SweepOptions {
                journal: Some(path.clone()),
                ..SweepOptions::none()
            },
        )
        .unwrap();
        assert_eq!(fresh, vec!["alpha text\n", "beta text\n"]);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.records().len(), 2, "one record per section");
        assert_eq!(j.records()[0].payload(), Some("alpha text\n"));

        // A resume replays both sections verbatim without re-rendering.
        let resumed = run_report_sections(
            "demo",
            &sections,
            &SweepOptions {
                resume: Some(path.clone()),
                ..SweepOptions::none()
            },
        )
        .unwrap();
        assert_eq!(resumed, fresh);
        assert_eq!(Journal::open(&path).unwrap().records().len(), 2);

        // Changed inputs invalidate the stale record and re-render.
        let changed = [ReportSection {
            name: "alpha",
            inputs: "v2".to_string(),
            render: || "alpha v2\n".to_string(),
        }];
        let rerun = run_report_sections(
            "demo",
            &changed,
            &SweepOptions {
                resume: Some(path.clone()),
                ..SweepOptions::none()
            },
        )
        .unwrap();
        assert_eq!(rerun, vec!["alpha v2\n"]);
        std::fs::remove_file(&path).unwrap();
    }
}
