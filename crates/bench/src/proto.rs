//! Minimal HTTP/1.1 layer for the sweep service daemon (`sac_serve`).
//!
//! The workspace has no registry access, so the daemon cannot pull a web
//! framework; this module implements just enough of RFC 9112 over
//! `std::net::TcpStream` for a loopback control-plane API: one request per
//! connection (`Connection: close`), `Content-Length` bodies with hard size
//! caps on both the header block and the body, and chunked transfer
//! encoding for the event-streaming endpoint. Both halves live here — the
//! server side used by [`crate::serve`] and the client side used by the
//! `loadgen` load generator and the integration tests — so a single parser
//! is exercised from both directions.
//!
//! Everything is generic over [`std::io::BufRead`]/[`std::io::Write`], so
//! the unit tests drive the exact production code paths from in-memory
//! buffers.

use std::io::{BufRead, Read, Write};

/// Hard cap on the request line + header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Hard cap on a request or response body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A failure reading or parsing an HTTP message.
#[derive(Debug)]
pub enum ProtoError {
    /// The header block or body exceeds its size cap.
    TooLarge,
    /// The bytes are not a well-formed HTTP/1.1 message.
    Malformed(String),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::TooLarge => write!(f, "message exceeds size cap"),
            ProtoError::Malformed(why) => write!(f, "malformed HTTP message: {why}"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn malformed(why: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(why.into())
}

/// A parsed HTTP request (server side).
#[derive(Debug)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/v1/sweeps`).
    pub path: String,
    /// Decoded query parameters, in source order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in source order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`, if any.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read the header block (request line / status line + headers) up to the
/// blank line, enforcing [`MAX_HEADER_BYTES`].
fn read_header_block<R: BufRead>(r: &mut R) -> Result<Vec<String>, ProtoError> {
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(malformed("connection closed before end of headers"));
        }
        total += n;
        if total > MAX_HEADER_BYTES {
            return Err(ProtoError::TooLarge);
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}

fn parse_headers(lines: &[String]) -> Result<Vec<(String, String)>, ProtoError> {
    lines
        .iter()
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .ok_or_else(|| malformed(format!("header line without `:`: {l}")))?;
            Ok((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect()
}

fn content_length(headers: &[(String, String)]) -> Result<usize, ProtoError> {
    match headers.iter().find(|(k, _)| k == "content-length") {
        None => Ok(0),
        Some((_, v)) => {
            let n: usize = v
                .parse()
                .map_err(|_| malformed(format!("bad Content-Length `{v}`")))?;
            if n > MAX_BODY_BYTES {
                return Err(ProtoError::TooLarge);
            }
            Ok(n)
        }
    }
}

fn read_exact_body<R: BufRead>(r: &mut R, len: usize) -> Result<Vec<u8>, ProtoError> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| malformed("connection closed before end of body"))?;
    Ok(body)
}

/// Decode `%xx` escapes and `+` in a query component. Invalid escapes are
/// kept verbatim — the daemon's identifiers never contain `%` anyway.
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse one HTTP/1.1 request from `r`, enforcing the size caps.
///
/// # Errors
/// [`ProtoError::TooLarge`] when a cap is exceeded (the server maps it to
/// 413), [`ProtoError::Malformed`] for anything else unparsable (mapped to
/// 400).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<HttpRequest, ProtoError> {
    let lines = read_header_block(r)?;
    let request_line = lines.first().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| malformed("missing method"))?
        .to_string();
    let target = parts.next().ok_or_else(|| malformed("missing path"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version `{version}`")));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect();
    let headers = parse_headers(&lines[1..])?;
    let body = read_exact_body(r, content_length(&headers)?)?;
    Ok(HttpRequest {
        method,
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` response with a `Content-Length`
/// body.
///
/// # Errors
/// I/O errors writing to `w`.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", status_reason(status))?;
    write!(w, "content-type: {content_type}\r\n")?;
    write!(w, "content-length: {}\r\n", body.len())?;
    write!(w, "connection: close\r\n")?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer response body (the event-streaming endpoint).
///
/// [`ChunkedBody::start`] writes the response head; each [`ChunkedBody::chunk`]
/// is flushed immediately so a client sees events as they happen;
/// [`ChunkedBody::finish`] writes the terminating zero-length chunk.
pub struct ChunkedBody<W: Write> {
    w: W,
}

impl<W: Write> ChunkedBody<W> {
    /// Write the response head and return the chunk writer.
    ///
    /// # Errors
    /// I/O errors writing to `w`.
    pub fn start(mut w: W, status: u16, content_type: &str) -> std::io::Result<ChunkedBody<W>> {
        write!(w, "HTTP/1.1 {status} {}\r\n", status_reason(status))?;
        write!(w, "content-type: {content_type}\r\n")?;
        write!(w, "transfer-encoding: chunked\r\n")?;
        write!(w, "connection: close\r\n\r\n")?;
        w.flush()?;
        Ok(ChunkedBody { w })
    }

    /// Write one chunk and flush it.
    ///
    /// # Errors
    /// I/O errors writing to the transport (e.g. the client hung up).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the body
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminate the body.
    ///
    /// # Errors
    /// I/O errors writing to the transport.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A parsed HTTP response (client side).
#[derive(Debug)]
pub struct HttpResponse {
    /// Numeric status code.
    pub status: u16,
    /// Headers with lower-cased names, in source order.
    pub headers: Vec<(String, String)>,
    /// The body, with chunked transfer encoding already decoded.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header named `name` (lower-case), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Parse one HTTP/1.1 response from `r`, decoding `Content-Length`,
/// chunked, and read-to-EOF bodies.
///
/// # Errors
/// [`ProtoError`] when the bytes are not a well-formed response or a size
/// cap is exceeded.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<HttpResponse, ProtoError> {
    let lines = read_header_block(r)?;
    let status_line = lines.first().ok_or_else(|| malformed("empty response"))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version `{version}`")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("missing status code"))?;
    let headers = parse_headers(&lines[1..])?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(r)?
    } else if headers.iter().any(|(k, _)| k == "content-length") {
        read_exact_body(r, content_length(&headers)?)?
    } else {
        // No framing: body runs to connection close.
        let mut body = Vec::new();
        r.take(MAX_BODY_BYTES as u64 + 1).read_to_end(&mut body)?;
        if body.len() > MAX_BODY_BYTES {
            return Err(ProtoError::TooLarge);
        }
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn read_chunked_body<R: BufRead>(r: &mut R) -> Result<Vec<u8>, ProtoError> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if r.read_line(&mut size_line)? == 0 {
            return Err(malformed("connection closed inside chunked body"));
        }
        let size_str = size_line.trim();
        let size = usize::from_str_radix(size_str.split(';').next().unwrap_or(""), 16)
            .map_err(|_| malformed(format!("bad chunk size `{size_str}`")))?;
        if size == 0 {
            // Trailer section (we send none) ends with a blank line.
            let mut trailer = String::new();
            let _ = r.read_line(&mut trailer);
            return Ok(body);
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(ProtoError::TooLarge);
        }
        let mut chunk = vec![0u8; size + 2]; // data + CRLF
        r.read_exact(&mut chunk)
            .map_err(|_| malformed("connection closed inside chunk"))?;
        body.extend_from_slice(&chunk[..size]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body_and_query() {
        let raw = b"POST /v1/sweeps?from=3&flag HTTP/1.1\r\n\
                    Host: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweeps");
        assert_eq!(req.query("from"), Some("3"));
        assert_eq!(req.query("flag"), Some(""));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_headers_and_bodies() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            read_request(&mut Cursor::new(huge_header.as_bytes())),
            Err(ProtoError::TooLarge)
        ));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            read_request(&mut Cursor::new(huge_body.as_bytes())),
            Err(ProtoError::TooLarge)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_request(&mut Cursor::new(&b"not http\r\n\r\n"[..])).is_err());
        assert!(read_request(&mut Cursor::new(&b"GET /\r\n\r\n"[..])).is_err());
        assert!(read_request(&mut Cursor::new(&b""[..])).is_err());
    }

    #[test]
    fn response_round_trips_through_writer_and_parser() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            429,
            &[("retry-after", "1".to_string())],
            "application/json",
            br#"{"error": "queue-full"}"#,
        )
        .unwrap();
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), r#"{"error": "queue-full"}"#);
    }

    #[test]
    fn chunked_body_round_trips() {
        let mut wire = Vec::new();
        {
            let mut body = ChunkedBody::start(&mut wire, 200, "application/jsonl").unwrap();
            body.chunk(b"{\"seq\": 0}\n").unwrap();
            body.chunk(b"").unwrap(); // ignored, must not terminate
            body.chunk(b"{\"seq\": 1}\n").unwrap();
            body.finish().unwrap();
        }
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "{\"seq\": 0}\n{\"seq\": 1}\n");
    }

    #[test]
    fn url_decoding_handles_escapes() {
        assert_eq!(url_decode("a%2Fb+c"), "a/b c");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
    }
}
