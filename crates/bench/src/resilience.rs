//! Fault-injection scenarios shared by the `resilience_report` binary and
//! the resilience integration tests.
//!
//! Each [`Scenario`] is a named [`FaultPlan`] plus the cycle its first
//! fault lands; [`run_scenario`] executes one (workload, organization,
//! scenario) triple and reduces it to an [`Outcome`] — the post-fault
//! throughput figure of merit, or the abort reason. Scenario runs are pure
//! functions of their inputs, so they fan out over [`crate::sweep`]
//! unchanged.

use crate::sweep;
use mcgpu_sim::SimBuilder;
use mcgpu_trace::Workload;
use mcgpu_types::fault::{FaultEvent, FaultKind, FaultPlan};
use mcgpu_types::{ChipId, LlcOrgKind, MachineConfig};

/// Cycle at which mid-run scenarios inject their first fault: early enough
/// that most of the run executes degraded (the fastest benchmarks finish
/// in under 10k cycles), late enough that SAC has completed its first
/// 2k-cycle profiling window and decided on healthy hardware first.
pub const FAULT_CYCLE: u64 = 3_000;

/// One named fault schedule.
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: &'static str,
    /// Scenarios whose dominant fault is inter-chip link degradation; the
    /// report's summary verdict checks SAC against the baselines on these.
    pub link_degradation: bool,
    /// Cycle the first fault lands (0 for from-boot scenarios).
    pub fault_cycle: u64,
    /// The fault schedule.
    pub events: Vec<FaultEvent>,
}

fn at(cycle: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent { cycle, kind }
}

/// The standard scenario set for `cfg`.
pub fn scenarios(cfg: &MachineConfig) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "healthy",
            link_degradation: false,
            fault_cycle: 0,
            events: vec![],
        },
        Scenario {
            name: "link 0-1 at 25% bw",
            link_degradation: true,
            fault_cycle: FAULT_CYCLE,
            events: vec![at(
                FAULT_CYCLE,
                FaultKind::LinkDegrade {
                    a: ChipId(0),
                    b: ChipId(1),
                    factor: 0.25,
                },
            )],
        },
        Scenario {
            name: "links 0-1, 2-3 at 5% bw",
            link_degradation: true,
            fault_cycle: FAULT_CYCLE,
            events: vec![
                at(
                    FAULT_CYCLE,
                    FaultKind::LinkDegrade {
                        a: ChipId(0),
                        b: ChipId(1),
                        factor: 0.05,
                    },
                ),
                at(
                    FAULT_CYCLE,
                    FaultKind::LinkDegrade {
                        a: ChipId(2),
                        b: ChipId(3),
                        factor: 0.05,
                    },
                ),
            ],
        },
        Scenario {
            name: "link 1-2 failed",
            link_degradation: false,
            fault_cycle: FAULT_CYCLE,
            events: vec![at(
                FAULT_CYCLE,
                FaultKind::LinkFail {
                    a: ChipId(1),
                    b: ChipId(2),
                },
            )],
        },
        Scenario {
            name: "dram: chip1 -1ch, chip2 at 50%",
            link_degradation: false,
            fault_cycle: FAULT_CYCLE,
            events: vec![
                at(
                    FAULT_CYCLE,
                    FaultKind::DramFail {
                        chip: ChipId(1),
                        channel: 0,
                    },
                ),
                at(
                    FAULT_CYCLE,
                    FaultKind::DramThrottle {
                        chip: ChipId(2),
                        factor: 0.5,
                    },
                ),
            ],
        },
        Scenario {
            name: "chip0 LLC fused off",
            link_degradation: false,
            fault_cycle: 0,
            events: (0..cfg.slices_per_chip)
                .map(|s| {
                    at(
                        0,
                        FaultKind::LlcSliceDisable {
                            chip: ChipId(0),
                            slice: s,
                        },
                    )
                })
                .collect(),
        },
    ]
}

/// One run's outcome: post-fault throughput in accesses per kilocycle, or
/// the error string for runs the watchdog (or cycle budget) aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The run completed.
    Done {
        /// Accesses retired per kilocycle after the first fault hit.
        post_tput: f64,
        /// Whether all of the fault-free baseline's work was retired.
        conserved: bool,
    },
    /// The run aborted (watchdog, cycle budget, or it finished before the
    /// fault landed).
    Failed(String),
}

/// Run `wl` under `org` with the scenario's fault plan and reduce the run
/// to its [`Outcome`]. `expected_work` is the fault-free run's retired
/// access count, used for the conservation check.
pub fn run_scenario(
    cfg: &MachineConfig,
    wl: &Workload,
    org: LlcOrgKind,
    sc: &Scenario,
    expected_work: u64,
) -> Outcome {
    let mut sim = SimBuilder::new(cfg.clone())
        .organization(org)
        .fault_plan(FaultPlan::new(sc.events.clone()))
        .build()
        .expect("valid machine configuration");
    let mut done_at_fault = 0u64;
    let fault_cycle = sc.fault_cycle;
    let result = sim.run_observed(wl, 500, |cycle, done, _| {
        if cycle <= fault_cycle {
            done_at_fault = done;
        }
    });
    match result {
        Ok(stats) if stats.cycles <= sc.fault_cycle => {
            Outcome::Failed("finished before the fault hit".to_string())
        }
        Ok(stats) => {
            let work = stats.reads + stats.writes;
            let post_cycles = stats.cycles - sc.fault_cycle;
            Outcome::Done {
                post_tput: (work.saturating_sub(done_at_fault)) as f64 * 1000.0
                    / post_cycles as f64,
                conserved: work == expected_work,
            }
        }
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

/// Fan one workload's full (scenario × organization) grid out over the
/// sweep pool: for each scenario, the outcomes of every organization in
/// [`LlcOrgKind::ALL`] order.
pub fn run_grid(cfg: &MachineConfig, wl: &Workload, expected_work: u64) -> Vec<Vec<Outcome>> {
    let scenarios = scenarios(cfg);
    let jobs: Vec<(usize, LlcOrgKind)> = (0..scenarios.len())
        .flat_map(|si| LlcOrgKind::ALL.iter().map(move |&org| (si, org)))
        .collect();
    let outcomes = sweep::map(jobs, |(si, org)| {
        run_scenario(cfg, wl, org, &scenarios[si], expected_work)
    });
    outcomes
        .chunks(LlcOrgKind::ALL.len())
        .map(<[Outcome]>::to_vec)
        .collect()
}
