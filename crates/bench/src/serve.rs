//! The sweep service daemon behind the `sac_serve` binary.
//!
//! `sac_serve` turns the crash-safe sweep machinery into a long-running,
//! multi-tenant service: clients `POST` sweep requests (benchmark ×
//! organization grids with optional budgets) over a minimal HTTP/1.1 API
//! ([`crate::proto`]), the daemon schedules the cells onto the shared
//! [`crate::sweep::map_isolated`] pool, and every result or typed failure
//! is durably journaled before it is acknowledged. See `DESIGN.md`,
//! "Sweep service daemon" for the full contract. The load/chaos harness
//! (`scripts/ci_serve_chaos.sh` + the `loadgen` binary) exercises it end
//! to end, including a `SIGKILL` mid-campaign.
//!
//! The architecture, in one breath: a listener thread accepts connections
//! and answers the control-plane endpoints; a scheduler thread drains the
//! bounded admission queue in batches through `map_isolated`, publishing
//! each cell's outcome (journal append first, then state update) the
//! moment it is known; a reaper thread expires per-request wall-clock
//! budgets by raising the cells' cooperative cancellation flags. All
//! shared state sits behind one mutex with two condvars (`work` wakes the
//! scheduler, `progress` wakes status pollers and event streams).
//!
//! Durability and identity guarantees:
//!
//! - a request is acknowledged (`202`) only after its manifest record is
//!   fsynced, so an acknowledged request survives `SIGKILL`;
//! - identical cells — same `(cell name, config hash)` with a verified
//!   full-config match ([`Journal::lookup_verified`]) — are simulated
//!   once, ever: concurrent duplicates subscribe to the in-flight job and
//!   later duplicates replay the journal byte-identically;
//! - after a crash and restart, accepted-but-unfinished requests are
//!   re-adopted: journaled completions replay byte-identically, journaled
//!   *retryable* quarantines re-execute, non-retryable ones stay
//!   quarantined ([`CellError::kind_retryable`]);
//! - budget trips (cycle limit, watchdog, cancellation) travel through the
//!   normal retry taxonomy and end as typed quarantined cells, never as
//!   silently dropped work.

use crate::journal::{cell_config_desc, fnv1a_64, Journal, JournalRecord, RecordOutcome};
use crate::proto::{self, ChunkedBody, HttpRequest, ProtoError};
use crate::state;
use crate::sweep::{self, CellError};
use mcgpu_sim::{org, SimBuilder, SimError};
use mcgpu_trace::{generate, profiles, TraceParams};
use mcgpu_types::json::{escape_into, parse, JsonValue};
use mcgpu_types::{
    fsio, CellPhase, LlcOrgKind, MachineConfig, ObsConfig, RequestPhase, ServeErrorCode,
};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on `total_accesses` a request may ask for, so one tenant
/// cannot park the pool on a gigantic trace.
pub const MAX_TOTAL_ACCESSES: u64 = 5_000_000;

/// `Retry-After` seconds advertised with a 429.
const RETRY_AFTER_SECS: u64 = 1;

// ---------------------------------------------------------------------------
// Sweep specification
// ---------------------------------------------------------------------------

/// A validated sweep request: the (benchmark × organization) grid plus
/// optional budgets. Parsed from the `POST /v1/sweeps` body and stored in
/// canonical form in the request manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Canonical benchmark names (validated against the profile registry).
    pub benchmarks: Vec<String>,
    /// Organizations, in request order.
    pub orgs: Vec<LlcOrgKind>,
    /// Trace volume per cell.
    pub total_accesses: u64,
    /// Per-cell simulated-cycle budget (escalated on retries); `None`
    /// means unbounded.
    pub max_cycles: Option<u64>,
    /// Watchdog window override (`u64::MAX` disables the watchdog).
    pub watchdog_cycles: Option<u64>,
    /// Wall-clock budget for the whole request; on expiry every pending
    /// cell is cancelled through the retry taxonomy. A restart resets the
    /// clock for re-adopted requests.
    pub deadline_ms: Option<u64>,
}

impl SweepSpec {
    /// Parse and validate the spec fields of a JSON object (everything but
    /// the request id). Unknown fields are ignored.
    ///
    /// # Errors
    /// A human-readable reason, reported to the client as `bad-request`.
    pub fn from_json(v: &JsonValue) -> Result<SweepSpec, String> {
        let bench_vals = v
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `benchmarks`")?;
        let mut benchmarks = Vec::new();
        for b in bench_vals {
            let name = b.as_str().ok_or("`benchmarks` entries must be strings")?;
            let profile =
                profiles::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            benchmarks.push(profile.name.to_string());
        }
        let org_vals = v
            .get("orgs")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field `orgs`")?;
        let mut orgs = Vec::new();
        for o in org_vals {
            let token = o.as_str().ok_or("`orgs` entries must be strings")?;
            let kind = org::org_by_token(token).ok_or_else(|| {
                format!(
                    "unknown organization `{token}` (valid: {})",
                    org::tokens().join(", ")
                )
            })?;
            orgs.push(kind);
        }
        if benchmarks.is_empty() || orgs.is_empty() {
            return Err("`benchmarks` and `orgs` must be non-empty".to_string());
        }
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("`{key}` must be an unsigned integer")),
            }
        };
        let total_accesses = uint("total_accesses")?.unwrap_or(15_000);
        if total_accesses == 0 || total_accesses > MAX_TOTAL_ACCESSES {
            return Err(format!(
                "`total_accesses` must be in 1..={MAX_TOTAL_ACCESSES}"
            ));
        }
        let spec = SweepSpec {
            benchmarks,
            orgs,
            total_accesses,
            max_cycles: uint("max_cycles")?,
            watchdog_cycles: uint("watchdog_cycles")?,
            deadline_ms: uint("deadline_ms")?,
        };
        // The same validation path every harness uses: a simulator must
        // actually build on this machine for each requested organization.
        let cfg = spec.machine();
        for &o in &spec.orgs {
            SimBuilder::new(cfg.clone())
                .organization(o)
                .build()
                .map_err(|e| format!("configuration rejected for {o}: {e}"))?;
        }
        Ok(spec)
    }

    /// Canonical JSON form: stable field order and canonical benchmark /
    /// organization spellings, so spec equality (idempotent resubmission
    /// vs `spec-conflict`) is a byte comparison.
    pub fn canonical_json(&self) -> String {
        let mut s = String::from("{\"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            escape_into(b, &mut s);
            s.push('"');
        }
        s.push_str("], \"orgs\": [");
        for (i, &o) in self.orgs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(org::descriptor(o).token);
            s.push('"');
        }
        s.push_str(&format!("], \"total_accesses\": {}", self.total_accesses));
        for (key, val) in [
            ("max_cycles", self.max_cycles),
            ("watchdog_cycles", self.watchdog_cycles),
            ("deadline_ms", self.deadline_ms),
        ] {
            match val {
                Some(n) => s.push_str(&format!(", \"{key}\": {n}")),
                None => s.push_str(&format!(", \"{key}\": null")),
            }
        }
        s.push('}');
        s
    }

    /// The machine every cell of this request runs on.
    pub fn machine(&self) -> MachineConfig {
        let mut cfg = MachineConfig::experiment_baseline();
        if let Some(w) = self.watchdog_cycles {
            cfg.watchdog_cycles = w;
        }
        cfg
    }

    /// The trace volume every cell of this request uses.
    pub fn params(&self) -> TraceParams {
        TraceParams {
            total_accesses: self.total_accesses as usize,
            ..TraceParams::quick()
        }
    }

    /// The request's cells in grid order: `(cell name, config hash, full
    /// config description)` per (benchmark × organization) pair.
    ///
    /// Budgets (`max_cycles`, `deadline_ms`) are deliberately *not* part
    /// of the identity: they are abort-only knobs that can never change a
    /// completed run's statistics, so two requests differing only in
    /// budgets share cells and cache hits.
    pub fn cells(&self) -> Vec<(String, u64, String)> {
        let cfg = self.machine();
        let params = self.params();
        let mut out = Vec::new();
        for bench in &self.benchmarks {
            for &o in &self.orgs {
                let name = format!("{bench}/{}", org::descriptor(o).token);
                let desc = cell_config_desc(&cfg, &params, bench, o);
                out.push((name, fnv1a_64(desc.as_bytes()), desc));
            }
        }
        out
    }
}

/// Validate a client-chosen request id: non-empty, bounded, and safe to
/// embed in paths and JSON (`[A-Za-z0-9._-]`).
pub fn valid_request_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

/// Daemon tuning knobs, normally set from the `sac_serve` command line.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (use port 0 to let the OS pick).
    pub addr: String,
    /// Directory holding `journal.jsonl`, `manifest.jsonl` and
    /// `serve.addr`. Restarting with the same directory recovers all
    /// acknowledged work.
    pub state_dir: PathBuf,
    /// Backpressure threshold: a request is refused with 429 while at
    /// least this many cells are already queued (a single request may
    /// overshoot the threshold, so requests larger than the cap are still
    /// admittable on an idle server).
    pub max_queue: usize,
    /// Test hook: sleep this long at the start of every *fresh* cell
    /// execution so a chaos harness can reliably `SIGKILL` mid-campaign.
    /// Delays execution only; cannot change any result.
    pub stall_ms: u64,
    /// Mid-cell checkpoint cadence in simulated cycles; `0` (the default)
    /// disables engine checkpointing. When enabled, every running cell
    /// periodically snapshots its full simulator state under
    /// `state_dir/ckpt/`, and after a crash a re-adopted cell resumes
    /// mid-cycle from its latest valid snapshot — byte-identically to an
    /// uninterrupted run — instead of restarting from cycle 0.
    pub ckpt_interval: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("results/serve"),
            max_queue: 256,
            stall_ms: 0,
            ckpt_interval: 0,
        }
    }
}

/// One cell of one request, as seen by clients.
#[derive(Debug, Clone)]
struct Cell {
    name: String,
    hash: u64,
    desc: String,
    phase: CellPhase,
    attempts: u32,
    /// Served from the journal / shared cache instead of freshly simulated.
    cached: bool,
    stats: Option<Arc<String>>,
    error: Option<(String, String)>, // (kind, message)
}

#[derive(Debug)]
struct RequestState {
    spec: SweepSpec,
    spec_canon: String,
    phase: RequestPhase,
    cells: Vec<Cell>,
    cancelled: bool,
    deadline: Option<Instant>,
    events: Vec<String>,
    /// A `done` manifest op for this request is already on disk.
    done_recorded: bool,
}

type JobKey = (String, u64); // (cell name, config hash)

/// One unit of simulation work, shared by every request that asked for the
/// same cell.
#[derive(Debug)]
struct Job {
    bench: String,
    orgk: LlcOrgKind,
    machine: MachineConfig,
    params: TraceParams,
    desc: String,
    max_cycles: Option<u64>,
    cancel: Arc<AtomicBool>,
    subscribers: Vec<(String, usize)>, // (request id, cell index)
}

#[derive(Debug, Default)]
struct State {
    requests: HashMap<String, RequestState>,
    jobs: HashMap<JobKey, Job>,
    queue: VecDeque<JobKey>,
    running: usize,
    shutting_down: bool,
}

struct Inner {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Wakes the scheduler when the queue grows or shutdown begins.
    work: Condvar,
    /// Wakes status pollers / event streams when any request progresses.
    progress: Condvar,
    journal: Mutex<Journal>,
    /// Path of the request manifest; appends go through
    /// [`fsio::append_durable`] under this lock so concurrent handlers
    /// never interleave lines.
    manifest: Mutex<PathBuf>,
}

impl Inner {
    /// The engine-checkpoint directory, when checkpointing is enabled.
    fn ckpt_dir(&self) -> Option<PathBuf> {
        (self.cfg.ckpt_interval > 0).then(|| self.cfg.state_dir.join("ckpt"))
    }

    /// The snapshot path for one job, when checkpointing is enabled.
    fn snapshot_path(&self, key: &JobKey) -> Option<PathBuf> {
        self.ckpt_dir()
            .map(|d| state::cell_snapshot_path(&d, &key.0, key.1))
    }
}

/// A running daemon instance. Dropping the handle does not stop the
/// daemon; call [`Server::stop`] (tests) or block on [`Server::join`]
/// (the binary).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    listener: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start the daemon: recover state from `cfg.state_dir`, bind the
    /// listener, and spawn the scheduler and reaper threads.
    ///
    /// # Errors
    /// I/O errors creating the state directory or binding the address.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let journal = Journal::open(cfg.state_dir.join("journal.jsonl"))?;
        let manifest_path = cfg.state_dir.join("manifest.jsonl");
        let recovered = load_manifest(&manifest_path);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            progress: Condvar::new(),
            journal: Mutex::new(journal),
            manifest: Mutex::new(manifest_path),
        });

        // With checkpointing on, reap stale state left by the previous
        // incarnation before any re-adopted cell goes looking for its
        // snapshot: superseded snapshots, torn files, orphaned tmps.
        if let Some(dir) = inner.ckpt_dir() {
            std::fs::create_dir_all(&dir)?;
            let journal = inner.journal.lock().expect("journal lock");
            match state::gc_state(&dir, Some(&journal), false) {
                Ok(r) if !r.reclaimable.is_empty() => {
                    eprintln!(
                        "sac_serve: reaped {} stale state file(s) from {}",
                        r.reclaimable.len(),
                        dir.display()
                    );
                }
                Ok(_) => {}
                Err(e) => eprintln!("sac_serve: state GC failed: {e}"),
            }
        }

        // Re-adopt every acknowledged request before accepting traffic:
        // completed cells replay from the journal byte-identically,
        // retryable quarantines and never-run cells re-enter the queue.
        {
            let mut st = inner.state.lock().expect("state lock");
            for (id, (canon, done_phase)) in recovered {
                let parsed = parse(&canon)
                    .ok()
                    .and_then(|v| SweepSpec::from_json(&v).ok());
                let Some(spec) = parsed else {
                    eprintln!("sac_serve: dropping unreadable manifest spec for `{id}`");
                    continue;
                };
                admit_locked(&inner, &mut st, id.clone(), spec, done_phase.is_some());
                if let Some(req) = st.requests.get_mut(&id) {
                    req.done_recorded = done_phase.is_some();
                    push_event(
                        &id,
                        req,
                        &format!("\"recovered\": true, \"phase\": \"{}\"", req.phase),
                    );
                }
            }
            let n = st.requests.len();
            if n > 0 {
                eprintln!("sac_serve: re-adopted {n} request(s) from the manifest");
            }
        }

        // Scheduler.
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || scheduler_loop(&inner));
        }
        // Reaper for per-request wall-clock budgets.
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || reaper_loop(&inner));
        }
        // Listener.
        let listener_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || listener_loop(&inner, &listener))
        };

        // Publish the bound address for scripts (the port may be
        // OS-assigned); written durably and atomically so a concurrently
        // restarting client never reads a torn or vanishing line.
        fsio::atomic_write(
            &inner.cfg.state_dir.join("serve.addr"),
            format!("{addr}\n").as_bytes(),
        )?;

        Ok(Server {
            inner,
            addr,
            listener: Some(listener_thread),
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the listener exits (i.e. forever, in the binary).
    pub fn join(mut self) {
        if let Some(t) = self.listener.take() {
            let _ = t.join();
        }
    }

    /// Best-effort graceful stop for in-process tests: refuse new work,
    /// wake every waiter, and unblock the accept loop. In-flight batches
    /// finish in the background.
    pub fn stop(mut self) {
        {
            let mut st = self.inner.state.lock().expect("state lock");
            st.shutting_down = true;
            self.inner.work.notify_all();
            self.inner.progress.notify_all();
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.listener.take() {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Load the request manifest: `id -> (canonical spec JSON, done phase)`.
/// Stops at the first malformed line (torn tail from a crash mid-append).
fn load_manifest(path: &std::path::Path) -> Vec<(String, (String, Option<RequestPhase>))> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut order: Vec<String> = Vec::new();
    let mut map: HashMap<String, (String, Option<RequestPhase>)> = HashMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse(line) else { break };
        let op = v.get("op").and_then(JsonValue::as_str);
        let id = v.get("id").and_then(JsonValue::as_str);
        match (op, id) {
            (Some("accepted"), Some(id)) => {
                let Some(spec) = v.get("spec").and_then(JsonValue::as_str) else {
                    break;
                };
                if !map.contains_key(id) {
                    order.push(id.to_string());
                }
                map.insert(id.to_string(), (spec.to_string(), None));
            }
            (Some("done"), Some(id)) => {
                let phase = v
                    .get("phase")
                    .and_then(JsonValue::as_str)
                    .and_then(RequestPhase::parse);
                if let Some(entry) = map.get_mut(id) {
                    entry.1 = phase;
                }
            }
            _ => break,
        }
    }
    order
        .into_iter()
        .filter_map(|id| map.remove_entry(&id))
        .collect()
}

/// Append one manifest op durably ([`fsio::append_durable`]: write +
/// `fsync`). Manifest I/O failures abort the process — they are
/// environment errors, and acknowledging work that is not durable would
/// defeat the manifest's purpose.
fn manifest_append(inner: &Inner, line: &str) {
    let path = inner.manifest.lock().expect("manifest lock");
    fsio::append_durable(&path, format!("{line}\n").as_bytes()).expect("write request manifest");
}

fn manifest_accepted_line(id: &str, spec_canon: &str) -> String {
    let mut s = String::from("{\"op\": \"accepted\", \"id\": \"");
    escape_into(id, &mut s);
    s.push_str("\", \"spec\": \"");
    escape_into(spec_canon, &mut s);
    s.push_str("\"}");
    s
}

fn manifest_done_line(id: &str, phase: RequestPhase) -> String {
    let mut s = String::from("{\"op\": \"done\", \"id\": \"");
    escape_into(id, &mut s);
    s.push_str(&format!("\", \"phase\": \"{phase}\"}}"));
    s
}

// ---------------------------------------------------------------------------
// Admission and publication
// ---------------------------------------------------------------------------

/// Append an event line to a request's log. `fields` is the inner JSON
/// fragment (already escaped by the caller).
fn push_event(id: &str, req: &mut RequestState, fields: &str) {
    let seq = req.events.len();
    let mut line = format!("{{\"seq\": {seq}, \"request\": \"");
    escape_into(id, &mut line);
    line.push_str("\", ");
    line.push_str(fields);
    line.push('}');
    req.events.push(line);
}

fn cell_event(phase: CellPhase, cell: &Cell, extra: &str) -> String {
    let mut s = String::from("\"cell\": \"");
    escape_into(&cell.name, &mut s);
    s.push_str(&format!(
        "\", \"phase\": \"{phase}\", \"attempts\": {}, \"cached\": {}",
        cell.attempts, cell.cached
    ));
    s.push_str(extra);
    s
}

/// Build a request's cells, resolving each against the journal cache and
/// subscribing the rest to (possibly pre-existing) jobs. Shared by live
/// admission and restart recovery; the caller holds the state lock.
///
/// `adopt_only` (restart of a request already marked done) resolves cells
/// from the journal without enqueueing anything new — with one exception:
/// a done request whose journal record went missing re-enqueues the cell
/// rather than invent a result.
fn admit_locked(inner: &Inner, st: &mut State, id: String, spec: SweepSpec, adopt_only: bool) {
    let mut cells = Vec::new();
    let grid = spec.cells();
    {
        let journal = inner.journal.lock().expect("journal lock");
        for (name, hash, desc) in grid {
            let mut cell = Cell {
                name,
                hash,
                desc,
                phase: CellPhase::Queued,
                attempts: 0,
                cached: false,
                stats: None,
                error: None,
            };
            if let Some(r) = journal.lookup_verified(&cell.name, hash, &cell.desc) {
                match &r.outcome {
                    RecordOutcome::Completed { stats_json } => {
                        cell.phase = CellPhase::Completed;
                        cell.cached = true;
                        cell.attempts = r.attempts;
                        cell.stats = Some(Arc::new(stats_json.clone()));
                    }
                    RecordOutcome::Quarantined { kind, error } => {
                        // Retryable (or unclassifiable) quarantines are
                        // re-executed on adoption; permanent ones stand.
                        if CellError::kind_retryable(kind) == Some(false) || adopt_only {
                            cell.phase = CellPhase::Quarantined;
                            cell.attempts = r.attempts;
                            cell.cached = true;
                            cell.error = Some((kind.clone(), error.clone()));
                        }
                    }
                }
            }
            cells.push(cell);
        }
    }

    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut req = RequestState {
        spec_canon: spec.canonical_json(),
        spec,
        phase: RequestPhase::Active,
        cells,
        cancelled: false,
        deadline,
        events: Vec::new(),
        done_recorded: false,
    };

    // Subscribe every unresolved cell to its job, creating and queueing
    // jobs that do not exist yet.
    let mut queued_any = false;
    for idx in 0..req.cells.len() {
        if req.cells[idx].phase.terminal() {
            let line = cell_event(req.cells[idx].phase, &req.cells[idx], "");
            push_event(&id, &mut req, &line);
            continue;
        }
        let key = (req.cells[idx].name.clone(), req.cells[idx].hash);
        match st.jobs.get_mut(&key) {
            Some(job) => {
                job.subscribers.push((id.clone(), idx));
                // A deduped job runs under the loosest subscriber budget
                // (budgets are abort-only; relaxing can never corrupt a
                // result, only let it complete).
                job.max_cycles = match (job.max_cycles, req.spec.max_cycles) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
            }
            None => {
                let (bench, _) = req.cells[idx]
                    .name
                    .split_once('/')
                    .expect("cell names are BENCH/org");
                let orgk = req.spec.orgs[idx % req.spec.orgs.len()];
                st.jobs.insert(
                    key.clone(),
                    Job {
                        bench: bench.to_string(),
                        orgk,
                        machine: req.spec.machine(),
                        params: req.spec.params(),
                        desc: req.cells[idx].desc.clone(),
                        max_cycles: req.spec.max_cycles,
                        cancel: Arc::new(AtomicBool::new(false)),
                        subscribers: vec![(id.clone(), idx)],
                    },
                );
                st.queue.push_back(key);
                queued_any = true;
            }
        }
        let line = cell_event(CellPhase::Queued, &req.cells[idx], "");
        push_event(&id, &mut req, &line);
    }

    st.requests.insert(id.clone(), req);
    finalize_if_terminal(inner, st, &id);
    if queued_any {
        inner.work.notify_all();
    }
    inner.progress.notify_all();
}

/// If every cell of `id` is terminal, set the request's terminal phase and
/// record the `done` manifest op (once). Caller holds the state lock.
fn finalize_if_terminal(inner: &Inner, st: &mut State, id: &str) {
    let Some(req) = st.requests.get_mut(id) else {
        return;
    };
    if req.phase.terminal() || !req.cells.iter().all(|c| c.phase.terminal()) {
        return;
    }
    let failed = req.cells.iter().any(|c| c.phase == CellPhase::Quarantined);
    req.phase = if failed {
        RequestPhase::Failed
    } else {
        RequestPhase::Completed
    };
    let phase = req.phase;
    push_event(id, req, &format!("\"phase\": \"{phase}\""));
    if !req.done_recorded {
        req.done_recorded = true;
        manifest_append(inner, &manifest_done_line(id, phase));
    }
    inner.progress.notify_all();
}

/// Deliver a finished job to every subscriber. Caller holds the state
/// lock; the journal record was already appended.
fn deliver_locked(
    inner: &Inner,
    st: &mut State,
    key: &JobKey,
    attempts: u32,
    outcome: &RecordOutcome,
    obs_json: Option<&str>,
) {
    let Some(job) = st.jobs.remove(key) else {
        return;
    };
    st.running = st.running.saturating_sub(1);
    let stats = match outcome {
        RecordOutcome::Completed { stats_json } => Some(Arc::new(stats_json.clone())),
        RecordOutcome::Quarantined { .. } => None,
    };
    for (id, idx) in job.subscribers {
        let Some(req) = st.requests.get_mut(&id) else {
            continue;
        };
        let cell = &mut req.cells[idx];
        cell.attempts = attempts;
        match outcome {
            RecordOutcome::Completed { .. } => {
                cell.phase = CellPhase::Completed;
                cell.stats = stats.clone();
            }
            RecordOutcome::Quarantined { kind, error } => {
                cell.phase = CellPhase::Quarantined;
                cell.error = Some((kind.clone(), error.clone()));
            }
        }
        let extra = match (&cell.error, obs_json) {
            (Some((kind, error)), _) => {
                let mut s = format!(", \"kind\": \"{kind}\", \"error\": \"");
                escape_into(error, &mut s);
                s.push('"');
                s
            }
            (None, Some(obs)) => {
                // The run's mcgpu-obs-v1 epoch timeline, streamed with the
                // completion event.
                let mut s = String::from(", \"obs\": \"");
                escape_into(obs, &mut s);
                s.push('"');
                s
            }
            (None, None) => String::new(),
        };
        let line = cell_event(req.cells[idx].phase, &req.cells[idx], &extra);
        push_event(&id, req, &line);
        finalize_if_terminal(inner, st, &id);
    }
    inner.progress.notify_all();
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

/// What the scheduler snapshots per job before releasing the state lock.
struct RunItem {
    key: JobKey,
    bench: String,
    orgk: LlcOrgKind,
    machine: MachineConfig,
    params: TraceParams,
    desc: String,
    max_cycles: Option<u64>,
    cancel: Arc<AtomicBool>,
}

fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        let batch: Vec<RunItem> = {
            let mut st = inner.state.lock().expect("state lock");
            loop {
                if st.shutting_down {
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                st = inner.work.wait(st).expect("state lock");
            }
            let keys: Vec<JobKey> = st.queue.drain(..).collect();
            st.running += keys.len();
            let mut items = Vec::with_capacity(keys.len());
            for key in keys {
                let job = st.jobs.get(&key).expect("queued job exists");
                items.push(RunItem {
                    bench: job.bench.clone(),
                    orgk: job.orgk,
                    machine: job.machine.clone(),
                    params: job.params,
                    desc: job.desc.clone(),
                    max_cycles: job.max_cycles,
                    cancel: Arc::clone(&job.cancel),
                    key,
                });
                // Mark every subscriber cell running.
                let subs = st
                    .jobs
                    .get(&items.last().expect("just pushed").key)
                    .map(|j| j.subscribers.clone())
                    .unwrap_or_default();
                for (id, idx) in subs {
                    if let Some(req) = st.requests.get_mut(&id) {
                        req.cells[idx].phase = CellPhase::Running;
                        let line = cell_event(CellPhase::Running, &req.cells[idx], "");
                        push_event(&id, req, &line);
                    }
                }
            }
            inner.progress.notify_all();
            items
        };

        // Fan the batch out; each completion is published from inside the
        // closure the moment it is known, so event streams and duplicate
        // requests see it without waiting for the whole batch. Keys are
        // snapshotted first because `map_isolated` consumes the batch.
        let keys: Vec<JobKey> = batch.iter().map(|i| i.key.clone()).collect();
        let outcomes = sweep::map_isolated(batch, |item, attempt| {
            let out = run_job_attempt(inner, item, attempt)?;
            publish_completed(inner, item, attempt + 1, out);
            Ok(())
        });
        // Quarantines are only final once `run_cell` stops retrying, so
        // they are published after the batch.
        for (key, out) in keys.iter().zip(&outcomes) {
            if let Err(e) = &out.result {
                publish_quarantined(inner, key, out.attempts, e);
            }
        }
    }
}

/// One attempt of one job: generate the trace, build the simulator with
/// the cooperative cancellation flag and escalated budgets, run, and
/// return the canonical stats plus the obs-v1 report.
///
/// With checkpointing enabled the simulator periodically snapshots its
/// full state under `state_dir/ckpt/`; if a snapshot from an interrupted
/// identically-configured attempt exists (a `SIGKILL` mid-campaign), the
/// re-adopted job resumes mid-cycle from it — byte-identically to an
/// uninterrupted run. Any restore failure falls back to a full run.
fn run_job_attempt(
    inner: &Inner,
    item: &RunItem,
    attempt: u32,
) -> Result<(String, Option<String>), CellError> {
    if item.cancel.load(Ordering::Relaxed) {
        // Cancelled before it ever started: same taxonomy as a mid-run
        // abort, without paying for trace generation.
        return Err(CellError::Sim(SimError::Cancelled { cycle: 0 }));
    }
    if inner.cfg.stall_ms > 0 {
        std::thread::sleep(Duration::from_millis(inner.cfg.stall_ms));
    }
    let profile = profiles::by_name(&item.bench).expect("benchmark validated at admission");
    let mut cfg = item.machine.clone();
    cfg.watchdog_cycles = sweep::escalate_budget(cfg.watchdog_cycles, attempt);
    let wl = generate(&item.machine, &profile, &item.params);
    let snapshot = inner.snapshot_path(&item.key);
    let build = |cfg: MachineConfig| {
        let mut b = SimBuilder::new(cfg)
            .organization(item.orgk)
            .observability(ObsConfig::metrics())
            .cancel_flag(Arc::clone(&item.cancel));
        if let Some(p) = &snapshot {
            b = b.checkpoint_to(p, inner.cfg.ckpt_interval);
        }
        if let Some(m) = item.max_cycles {
            b = b.max_cycles(sweep::escalate_budget(m, attempt));
        }
        b.build()
    };
    let mut sim = build(cfg.clone())?;
    if let Some(p) = &snapshot {
        if p.exists() {
            match sim.restore_from_file(p, &wl) {
                Ok(()) => eprintln!(
                    "sac_serve: resumed {} from checkpoint at cycle {}",
                    item.key.0,
                    sim.cycle()
                ),
                Err(e) => {
                    eprintln!(
                        "sac_serve: discarding unusable checkpoint for {} ({e})",
                        item.key.0
                    );
                    // A failed restore may have partially overwritten the
                    // simulator; rebuild rather than trust it.
                    sim = build(cfg)?;
                }
            }
        }
    }
    let stats = sim.run(&wl)?;
    let obs = sim.take_obs_report().map(|r| r.to_canonical_json());
    Ok((stats.to_canonical_json(), obs))
}

/// Journal a completed job, then deliver it to subscribers.
fn publish_completed(inner: &Inner, item: &RunItem, attempts: u32, out: (String, Option<String>)) {
    let (stats_json, obs_json) = out;
    let outcome = RecordOutcome::Completed {
        stats_json: stats_json.clone(),
    };
    inner
        .journal
        .lock()
        .expect("journal lock")
        .append(JournalRecord {
            cell: item.key.0.clone(),
            config_hash: item.key.1,
            config: Some(item.desc.clone()),
            mode: None,
            attempts,
            outcome: outcome.clone(),
        })
        .expect("write run journal");
    // The journaled result supersedes the job's mid-run snapshot (future
    // duplicates replay from the journal); the startup/reaper GC catches
    // any unlink we lose to a crash right here.
    if let Some(p) = inner.snapshot_path(&item.key) {
        let _ = std::fs::remove_file(p);
    }
    let mut st = inner.state.lock().expect("state lock");
    deliver_locked(
        inner,
        &mut st,
        &item.key,
        attempts,
        &outcome,
        obs_json.as_deref(),
    );
}

/// Journal a quarantined job, then deliver the typed failure.
fn publish_quarantined(inner: &Inner, key: &JobKey, attempts: u32, err: &CellError) {
    let outcome = RecordOutcome::Quarantined {
        kind: err.kind().to_string(),
        error: err.to_string(),
    };
    let desc = {
        let st = inner.state.lock().expect("state lock");
        st.jobs.get(key).map(|j| j.desc.clone())
    };
    inner
        .journal
        .lock()
        .expect("journal lock")
        .append(JournalRecord {
            cell: key.0.clone(),
            config_hash: key.1,
            config: desc,
            mode: None,
            attempts,
            outcome: outcome.clone(),
        })
        .expect("write run journal");
    // A quarantined cell's snapshot is dead weight: a future retry runs
    // under an escalated budget the snapshot's fingerprint would reject.
    if let Some(p) = inner.snapshot_path(key) {
        let _ = std::fs::remove_file(p);
    }
    let mut st = inner.state.lock().expect("state lock");
    deliver_locked(inner, &mut st, key, attempts, &outcome, None);
}

/// How many 50 ms reaper ticks between stale-state GC passes (~10 s).
const GC_EVERY_TICKS: u32 = 200;

/// Expire per-request wall-clock budgets and propagate cancellation to
/// jobs all of whose subscribers have been cancelled. A job shared with a
/// still-live request keeps running — delivering a completed result to an
/// expired request is strictly better than quarantining it.
///
/// The reaper also owns periodic stale-state GC: every ~10 s it sweeps
/// the checkpoint directory for superseded snapshots, corrupt files and
/// orphaned tmps ([`state::gc_state`]), so missed unlinks (crash between
/// journal append and snapshot removal) cannot accumulate.
fn reaper_loop(inner: &Arc<Inner>) {
    let mut ticks: u32 = 0;
    loop {
        std::thread::sleep(Duration::from_millis(50));
        ticks = ticks.wrapping_add(1);
        if ticks.is_multiple_of(GC_EVERY_TICKS) {
            if let Some(dir) = inner.ckpt_dir() {
                let journal = inner.journal.lock().expect("journal lock");
                if let Err(e) = state::gc_state(&dir, Some(&journal), false) {
                    eprintln!("sac_serve: state GC failed: {e}");
                }
            }
        }
        let mut st = inner.state.lock().expect("state lock");
        if st.shutting_down {
            return;
        }
        let now = Instant::now();
        let expired: Vec<String> = st
            .requests
            .iter()
            .filter(|(_, r)| {
                !r.cancelled && !r.phase.terminal() && r.deadline.is_some_and(|d| d <= now)
            })
            .map(|(id, _)| id.clone())
            .collect();
        for id in expired {
            if let Some(req) = st.requests.get_mut(&id) {
                req.cancelled = true;
                push_event(&id, req, "\"cancelled\": true, \"reason\": \"deadline\"");
            }
        }
        propagate_cancellations(&mut st);
        inner.progress.notify_all();
    }
}

/// Raise the cancel flag of every job whose subscribers are all cancelled.
fn propagate_cancellations(st: &mut State) {
    for job in st.jobs.values() {
        let all_cancelled = !job.subscribers.is_empty()
            && job.subscribers.iter().all(|(id, _)| {
                st.requests
                    .get(id)
                    .is_none_or(|r| r.cancelled || r.phase.terminal())
            });
        if all_cancelled {
            job.cancel.store(true, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------------

fn listener_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if inner.state.lock().expect("state lock").shutting_down {
            return;
        }
        let Ok(stream) = conn else { continue };
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            let _ = handle_connection(&inner, stream);
        });
    }
}

fn error_body(code: ServeErrorCode, detail: &str) -> String {
    let mut s = format!("{{\"error\": \"{code}\", \"detail\": \"");
    escape_into(detail, &mut s);
    s.push_str("\"}");
    s
}

fn send_error(stream: &mut TcpStream, code: ServeErrorCode, detail: &str) -> std::io::Result<()> {
    let extra: &[(&str, String)] = if code == ServeErrorCode::QueueFull {
        &[("retry-after", RETRY_AFTER_SECS.to_string())]
    } else {
        &[]
    };
    proto::write_response(
        stream,
        code.http_status(),
        extra,
        "application/json",
        error_body(code, detail).as_bytes(),
    )
}

fn send_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    proto::write_response(stream, status, &[], "application/json", body.as_bytes())
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let req = {
        let mut reader = BufReader::new(stream.try_clone()?);
        match proto::read_request(&mut reader) {
            Ok(r) => r,
            Err(ProtoError::TooLarge) => {
                return send_error(
                    &mut stream,
                    ServeErrorCode::PayloadTooLarge,
                    "request exceeds size cap",
                )
            }
            Err(e) => return send_error(&mut stream, ServeErrorCode::BadRequest, &e.to_string()),
        }
    };

    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => handle_healthz(inner, &mut stream),
        ("POST", ["v1", "sweeps"]) => handle_submit(inner, &req, &mut stream),
        ("GET", ["v1", "sweeps", id]) => handle_status(inner, id, &mut stream),
        ("GET", ["v1", "sweeps", id, "events"]) => handle_events(inner, id, &req, stream),
        ("GET", ["v1", "sweeps", id, "cells", idx, "stats"]) => {
            handle_cell_stats(inner, id, idx, &mut stream)
        }
        ("POST", ["v1", "sweeps", id, "cancel"]) => handle_cancel(inner, id, &mut stream),
        (_, ["v1", "healthz"] | ["v1", "sweeps", ..]) => send_error(
            &mut stream,
            ServeErrorCode::MethodNotAllowed,
            &format!("{} not supported here", req.method),
        ),
        _ => send_error(
            &mut stream,
            ServeErrorCode::NotFound,
            &format!("no route for {}", req.path),
        ),
    }
}

fn handle_healthz(inner: &Inner, stream: &mut TcpStream) -> std::io::Result<()> {
    let st = inner.state.lock().expect("state lock");
    let body = format!(
        "{{\"status\": \"ok\", \"queued\": {}, \"running\": {}, \"requests\": {}}}",
        st.queue.len(),
        st.running,
        st.requests.len()
    );
    drop(st);
    send_json(stream, 200, &body)
}

fn handle_submit(inner: &Inner, req: &HttpRequest, stream: &mut TcpStream) -> std::io::Result<()> {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return send_error(stream, ServeErrorCode::BadRequest, "body is not UTF-8");
    };
    let v = match parse(body) {
        Ok(v) => v,
        Err(e) => return send_error(stream, ServeErrorCode::BadRequest, &e.to_string()),
    };
    let Some(id) = v.get("id").and_then(JsonValue::as_str).map(str::to_string) else {
        return send_error(
            stream,
            ServeErrorCode::BadRequest,
            "missing string field `id`",
        );
    };
    if !valid_request_id(&id) {
        return send_error(
            stream,
            ServeErrorCode::BadRequest,
            "`id` must be 1..=128 chars of [A-Za-z0-9._-]",
        );
    }
    let spec = match SweepSpec::from_json(&v) {
        Ok(s) => s,
        Err(why) => return send_error(stream, ServeErrorCode::BadRequest, &why),
    };
    let canon = spec.canonical_json();

    let mut st = inner.state.lock().expect("state lock");
    if st.shutting_down {
        return send_error(
            stream,
            ServeErrorCode::ShuttingDown,
            "daemon is shutting down",
        );
    }
    if let Some(existing) = st.requests.get(&id) {
        // Idempotent resubmission: same id + same spec returns the
        // current status; a different spec under the same id is refused.
        if existing.spec_canon == canon {
            let body = status_json(&id, existing);
            drop(st);
            return send_json(stream, 200, &body);
        }
        return send_error(
            stream,
            ServeErrorCode::SpecConflict,
            "a request with this id exists with a different spec",
        );
    }
    if st.queue.len() >= inner.cfg.max_queue {
        return send_error(
            stream,
            ServeErrorCode::QueueFull,
            &format!(
                "{} cell(s) queued (cap {})",
                st.queue.len(),
                inner.cfg.max_queue
            ),
        );
    }

    // Durability before acknowledgement: the manifest record is fsynced
    // while the state lock is held, so a crash after the 202 always finds
    // the request on restart.
    manifest_append(inner, &manifest_accepted_line(&id, &canon));
    admit_locked(inner, &mut st, id.clone(), spec, false);
    let req_state = st.requests.get(&id).expect("just admitted");
    let body = format!(
        "{{\"id\": \"{id}\", \"phase\": \"{}\", \"cells\": {}}}",
        req_state.phase,
        req_state.cells.len()
    );
    drop(st);
    send_json(stream, 202, &body)
}

/// The full status document for one request.
fn status_json(id: &str, req: &RequestState) -> String {
    let mut s = format!(
        "{{\"id\": \"{id}\", \"phase\": \"{}\", \"cells\": [",
        req.phase
    );
    for (i, c) in req.cells.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"index\": {i}, \"cell\": \"{}\", \"phase\": \"{}\", \"attempts\": {}, \"cached\": {}",
            c.name, c.phase, c.attempts, c.cached
        ));
        if let Some((kind, error)) = &c.error {
            s.push_str(&format!(", \"kind\": \"{kind}\", \"error\": \""));
            escape_into(error, &mut s);
            s.push('"');
        }
        s.push('}');
    }
    s.push_str(&format!(
        "], \"cancelled\": {}, \"events\": {}}}",
        req.cancelled,
        req.events.len()
    ));
    s
}

fn handle_status(inner: &Inner, id: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let st = inner.state.lock().expect("state lock");
    match st.requests.get(id) {
        Some(req) => {
            let body = status_json(id, req);
            drop(st);
            send_json(stream, 200, &body)
        }
        None => {
            drop(st);
            send_error(stream, ServeErrorCode::NotFound, "unknown request id")
        }
    }
}

fn handle_cell_stats(
    inner: &Inner,
    id: &str,
    idx: &str,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let Ok(index) = idx.parse::<usize>() else {
        return send_error(
            stream,
            ServeErrorCode::BadRequest,
            "cell index must be a number",
        );
    };
    let stats: Option<Arc<String>> = {
        let st = inner.state.lock().expect("state lock");
        match st.requests.get(id) {
            None => None,
            Some(req) => match req.cells.get(index) {
                None => None,
                Some(c) => c.stats.clone(),
            },
        }
    };
    match stats {
        // Served verbatim: the body is byte-identical to the canonical
        // stats JSON the journal stores, across restarts and cache hits.
        Some(json) => send_json(stream, 200, &json),
        None => send_error(
            stream,
            ServeErrorCode::NotFound,
            "no completed stats for this cell",
        ),
    }
}

fn handle_cancel(inner: &Inner, id: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let mut st = inner.state.lock().expect("state lock");
    if !st.requests.contains_key(id) {
        drop(st);
        return send_error(stream, ServeErrorCode::NotFound, "unknown request id");
    }
    if let Some(req) = st.requests.get_mut(id) {
        if !req.cancelled && !req.phase.terminal() {
            req.cancelled = true;
            push_event(id, req, "\"cancelled\": true, \"reason\": \"client\"");
        }
    }
    propagate_cancellations(&mut st);
    inner.progress.notify_all();
    let body = format!("{{\"id\": \"{id}\", \"cancelled\": true}}");
    drop(st);
    send_json(stream, 200, &body)
}

/// Stream a request's event log as chunked JSONL, starting at `?from=N`,
/// until the request reaches a terminal phase and the log is drained.
fn handle_events(
    inner: &Arc<Inner>,
    id: &str,
    req: &HttpRequest,
    mut stream: TcpStream,
) -> std::io::Result<()> {
    let mut from: usize = req.query("from").and_then(|v| v.parse().ok()).unwrap_or(0);
    {
        let st = inner.state.lock().expect("state lock");
        if !st.requests.contains_key(id) {
            drop(st);
            return send_error(&mut stream, ServeErrorCode::NotFound, "unknown request id");
        }
    }
    let mut body = ChunkedBody::start(stream, 200, "application/jsonl")?;
    loop {
        let (lines, done) = {
            let mut st = inner.state.lock().expect("state lock");
            loop {
                if st.shutting_down {
                    return body.finish();
                }
                let Some(r) = st.requests.get(id) else {
                    return body.finish();
                };
                if r.events.len() > from || r.phase.terminal() {
                    break;
                }
                let (guard, _) = inner
                    .progress
                    .wait_timeout(st, Duration::from_millis(500))
                    .expect("state lock");
                st = guard;
            }
            let r = st.requests.get(id).expect("checked above");
            (r.events[from..].to_vec(), r.phase.terminal())
        };
        for line in &lines {
            body.chunk(format!("{line}\n").as_bytes())?;
        }
        from += lines.len();
        if done {
            return body.finish();
        }
    }
}
