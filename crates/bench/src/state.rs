//! Checkpoint state directories: snapshot naming and stale-state GC.
//!
//! A sweep with mid-cell checkpointing enabled keeps one `mcgpu-ckpt-v1`
//! snapshot per in-flight cell in a *state directory*, named
//! `<cell>-<config-hash>.ckpt` (see [`cell_snapshot_path`]). Snapshots
//! are removed the moment their cell reaches a terminal outcome, but a
//! crash between the journal append and the unlink — or an interrupted
//! [`mcgpu_types::fsio::atomic_write`] — can strand files. [`gc_state`]
//! reclaims them:
//!
//! * `*.tmp` files ([`fsio::TMP_SUFFIX`]) are debris from interrupted
//!   atomic writes and are always reclaimable;
//! * `*.ckpt` files that no longer frame-verify are corrupt (torn write
//!   that was never renamed over, bit rot) — a restore would reject them
//!   anyway, so they are reclaimable;
//! * `*.ckpt` files whose config hash has a terminal record in the run
//!   journal are superseded — the cell already completed (replayed from
//!   the journal on resume) or exhausted its retries;
//! * everything else is kept: a live snapshot of an in-flight cell, or a
//!   file this module does not understand.
//!
//! `sacsim --gc-state` exposes this directly (with `--dry-run` for a
//! listing) and the `sac_serve` reaper runs it periodically.

use crate::journal::{Journal, RecordOutcome};
use mcgpu_types::ckpt::read_snapshot;
use mcgpu_types::fsio;
use std::path::{Path, PathBuf};

/// The on-disk snapshot path for one sweep cell: `dir/<cell>-<hash>.ckpt`
/// with path separators in the cell name (`"BENCH/org"`) flattened to
/// `_`. The 16-hex-digit config hash keys the snapshot to the exact
/// machine configuration, trace parameters, benchmark and organization
/// that produced it, so a changed experiment never resumes from a stale
/// cell's state (the engine's config fingerprint would reject it anyway;
/// the name makes the miss cheap and the directory self-describing).
pub fn cell_snapshot_path(dir: &Path, cell: &str, config_hash: u64) -> PathBuf {
    let safe: String = cell
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}-{config_hash:016x}.ckpt"))
}

/// Why [`gc_state`] classified a file as reclaimable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcReason {
    /// `*.tmp` debris from an interrupted atomic write.
    OrphanedTmp,
    /// A snapshot that fails frame verification (torn or corrupt).
    Corrupt,
    /// A snapshot whose cell already has a terminal journal record.
    Superseded,
}

impl std::fmt::Display for GcReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GcReason::OrphanedTmp => "orphaned-tmp",
            GcReason::Corrupt => "corrupt",
            GcReason::Superseded => "superseded",
        })
    }
}

/// What one [`gc_state`] pass found.
#[derive(Debug, Default)]
pub struct GcReport {
    /// Reclaimable files, with why. In dry-run mode they are still on
    /// disk; otherwise they have been removed.
    pub reclaimable: Vec<(PathBuf, GcReason)>,
    /// Files kept: live snapshots and anything unrecognized.
    pub kept: Vec<PathBuf>,
    /// Whether this was a dry run (nothing was deleted).
    pub dry_run: bool,
}

impl GcReport {
    /// Human-readable listing, one line per file.
    pub fn render(&self) -> String {
        let verb = if self.dry_run {
            "would remove"
        } else {
            "removed"
        };
        let mut s = String::new();
        for (path, reason) in &self.reclaimable {
            s.push_str(&format!("{verb} {} ({reason})\n", path.display()));
        }
        for path in &self.kept {
            s.push_str(&format!("kept    {} (live)\n", path.display()));
        }
        s.push_str(&format!(
            "{} reclaimable, {} kept\n",
            self.reclaimable.len(),
            self.kept.len()
        ));
        s
    }
}

/// The `-<16 hex digits>.ckpt` suffix parsed off a snapshot file name.
fn snapshot_hash(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".ckpt")?;
    let (_, hex) = stem.rsplit_once('-')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Whether the journal holds a terminal record for a snapshot's config
/// hash. Completed cells replay from the journal on resume; quarantined
/// cells re-execute from scratch with a *different* (escalated-watchdog)
/// configuration the snapshot's engine fingerprint would reject — either
/// way the snapshot can never be consumed again.
fn is_superseded(journal: Option<&Journal>, hash: u64) -> bool {
    journal.is_some_and(|j| {
        j.records().iter().any(|r| {
            r.config_hash == hash
                && matches!(
                    r.outcome,
                    RecordOutcome::Completed { .. } | RecordOutcome::Quarantined { .. }
                )
        })
    })
}

/// Sweep `dir` for stale checkpoint state, removing (or with `dry_run`,
/// only listing) everything reclaimable. See the module docs for the
/// classification. A missing directory yields an empty report. Results
/// are sorted by path so listings are deterministic.
///
/// # Errors
/// I/O errors reading the directory or deleting a file; classification
/// itself never fails (an unreadable snapshot is simply corrupt).
pub fn gc_state(dir: &Path, journal: Option<&Journal>, dry_run: bool) -> std::io::Result<GcReport> {
    let mut report = GcReport {
        dry_run,
        ..GcReport::default()
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let reason = if name.ends_with(fsio::TMP_SUFFIX) {
            Some(GcReason::OrphanedTmp)
        } else if name.ends_with(".ckpt") {
            if read_snapshot(&path).is_err() {
                Some(GcReason::Corrupt)
            } else if snapshot_hash(&name).is_some_and(|h| is_superseded(journal, h)) {
                Some(GcReason::Superseded)
            } else {
                None
            }
        } else {
            None
        };
        match reason {
            Some(r) => {
                if !dry_run {
                    std::fs::remove_file(&path)?;
                }
                report.reclaimable.push((path, r));
            }
            None => report.kept.push(path),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalRecord;
    use mcgpu_types::ckpt::write_snapshot;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sac-state-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn snapshot_path_is_flat_and_keyed_by_hash() {
        let p = cell_snapshot_path(Path::new("/s"), "SN/SAC", 0xabcd);
        assert_eq!(p, Path::new("/s/SN_SAC-000000000000abcd.ckpt"));
        assert_eq!(snapshot_hash("SN_SAC-000000000000abcd.ckpt"), Some(0xabcd));
        assert_eq!(snapshot_hash("junk.ckpt"), None);
    }

    #[test]
    fn gc_classifies_tmp_corrupt_superseded_and_live() {
        let d = tdir("classify");
        // Orphaned tmp debris.
        std::fs::write(d.join("x.ckpt.tmp"), b"partial").unwrap();
        // Corrupt snapshot (not a valid frame).
        std::fs::write(d.join("bad-0000000000000001.ckpt"), b"garbage").unwrap();
        // Valid snapshots: one superseded by a journal record, one live.
        write_snapshot(&cell_snapshot_path(&d, "SN/SAC", 2), b"payload").unwrap();
        write_snapshot(&cell_snapshot_path(&d, "CFD/mem", 3), b"payload").unwrap();
        // A file GC does not understand stays put.
        std::fs::write(d.join("README"), b"hands off").unwrap();

        let jpath = d.join("journal.jsonl");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(JournalRecord {
            cell: "SN/SAC".to_string(),
            config_hash: 2,
            config: None,
            mode: None,
            attempts: 1,
            outcome: RecordOutcome::Completed {
                stats_json: "{}".to_string(),
            },
        })
        .unwrap();

        let dry = gc_state(&d, Some(&j), true).unwrap();
        assert_eq!(dry.reclaimable.len(), 3, "{:?}", dry.reclaimable);
        assert!(dry
            .reclaimable
            .iter()
            .all(|(p, _)| p.exists() || p.file_name().is_some()));
        assert!(
            d.join("x.ckpt.tmp").exists(),
            "dry run must not delete anything"
        );
        let listing = dry.render();
        assert!(listing.contains("would remove"), "{listing}");
        assert!(listing.contains("orphaned-tmp"), "{listing}");
        assert!(listing.contains("corrupt"), "{listing}");
        assert!(listing.contains("superseded"), "{listing}");

        let real = gc_state(&d, Some(&j), false).unwrap();
        assert_eq!(real.reclaimable.len(), 3);
        assert!(!d.join("x.ckpt.tmp").exists());
        assert!(!d.join("bad-0000000000000001.ckpt").exists());
        assert!(!cell_snapshot_path(&d, "SN/SAC", 2).exists());
        assert!(
            cell_snapshot_path(&d, "CFD/mem", 3).exists(),
            "a live snapshot with no terminal record survives"
        );
        assert!(d.join("README").exists());
        // The journal itself lives outside the classification (it is a
        // .jsonl, not a .ckpt) and must survive.
        assert!(jpath.exists());
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn gc_of_a_missing_directory_is_empty_not_an_error() {
        let report = gc_state(Path::new("/nonexistent/sac-state"), None, false).unwrap();
        assert!(report.reclaimable.is_empty());
        assert!(report.kept.is_empty());
    }
}
