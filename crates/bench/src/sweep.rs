//! Parallel sweep runner shared by every figure/table harness binary.
//!
//! Every figure of the paper is a sweep of independent (benchmark ×
//! organization × configuration) simulation runs. Each run is a pure
//! function of its inputs — it builds its own [`mcgpu_sim::Simulator`]
//! from a cloned config and a read-only workload — so the sweep fans the
//! runs out across a thread pool and collects the results **in input
//! order**, making the output bit-identical to the serial loop regardless
//! of thread count (see `DESIGN.md`, "Sweep runner and the determinism
//! contract").
//!
//! Thread count resolution, highest priority first:
//!
//! 1. `--jobs N` (or `--jobs=N`) on the command line,
//! 2. the `MCGPU_JOBS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (vendored-rayon
//!    default),
//! 4. the number of available CPUs.

use std::sync::OnceLock;

/// Thread count requested via `--jobs`/`MCGPU_JOBS`, or `None` to fall
/// through to the rayon default (`RAYON_NUM_THREADS` / available CPUs).
pub fn configured_jobs() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--jobs" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return Some(n.max(1));
            }
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n.max(1));
            }
        }
    }
    std::env::var("MCGPU_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// The sweep's thread count after full resolution.
pub fn jobs() -> usize {
    match configured_jobs() {
        Some(n) => n,
        None => rayon::current_num_threads(),
    }
}

/// The process-wide sweep pool, sized by [`jobs`] at first use.
fn pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(jobs())
            .build()
            .expect("sweep pool")
    })
}

/// Run `f` over every item on the sweep pool, returning results in input
/// order. This is the single fan-out primitive every harness binary uses;
/// `f` must be a pure function of its item (no shared mutable state), which
/// is what makes the result independent of the thread count.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    use rayon::prelude::*;
    pool().install(|| items.into_par_iter().map(f).collect())
}

/// Like [`map`] but on a dedicated pool of exactly `jobs` threads,
/// ignoring the CLI/environment override. Used by the determinism tests to
/// compare 1-thread and N-thread executions of the same sweep.
pub fn map_with_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(jobs.max(1))
        .build()
        .expect("sweep pool");
    pool.install(|| items.into_par_iter().map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let out = map((0..64).collect(), |i: u64| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = map_with_jobs(1, (0..97).collect(), |i: u64| i.wrapping_mul(0x9e37));
        let parallel = map_with_jobs(8, (0..97).collect(), |i: u64| i.wrapping_mul(0x9e37));
        assert_eq!(serial, parallel);
    }
}
