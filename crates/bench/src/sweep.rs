//! Parallel sweep runner shared by every figure/table harness binary.
//!
//! Every figure of the paper is a sweep of independent (benchmark ×
//! organization × configuration) simulation runs. Each run is a pure
//! function of its inputs — it builds its own [`mcgpu_sim::Simulator`]
//! from a cloned config and a read-only workload — so the sweep fans the
//! runs out across a thread pool and collects the results **in input
//! order**, making the output bit-identical to the serial loop regardless
//! of thread count (see `DESIGN.md`, "Sweep runner and the determinism
//! contract").
//!
//! Thread count resolution, highest priority first:
//!
//! 1. `--jobs N` (or `--jobs=N`) on the command line,
//! 2. the `MCGPU_JOBS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (vendored-rayon
//!    default),
//! 4. the number of available CPUs.

use mcgpu_sim::SimError;
use std::sync::OnceLock;

/// Thread count requested via `--jobs`/`MCGPU_JOBS`, or `None` to fall
/// through to the rayon default (`RAYON_NUM_THREADS` / available CPUs).
pub fn configured_jobs() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--jobs" {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return Some(n.max(1));
            }
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n.max(1));
            }
        }
    }
    std::env::var("MCGPU_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// The sweep's thread count after full resolution.
pub fn jobs() -> usize {
    match configured_jobs() {
        Some(n) => n,
        None => rayon::current_num_threads(),
    }
}

/// The process-wide sweep pool, sized by [`jobs`] at first use.
fn pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(jobs())
            .build()
            .expect("sweep pool")
    })
}

/// Run `f` over every item on the sweep pool, returning results in input
/// order. This is the single fan-out primitive every harness binary uses;
/// `f` must be a pure function of its item (no shared mutable state), which
/// is what makes the result independent of the thread count.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    use rayon::prelude::*;
    pool().install(|| items.into_par_iter().map(f).collect())
}

/// Like [`map`] but on a dedicated pool of exactly `jobs` threads,
/// ignoring the CLI/environment override. Used by the determinism tests to
/// compare 1-thread and N-thread executions of the same sweep.
pub fn map_with_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(jobs.max(1))
        .build()
        .expect("sweep pool");
    pool.install(|| items.into_par_iter().map(f).collect())
}

/// Typed failure of one sweep cell. Sibling cells keep running; the sweep
/// reports every failed cell instead of aborting on the first.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The cell's closure panicked; the payload's message was captured.
    Panic {
        /// The panic message.
        message: String,
    },
    /// The simulator returned a typed error.
    Sim(SimError),
}

impl CellError {
    /// Whether a retry with a relaxed budget can plausibly succeed.
    ///
    /// Cycle-limit, watchdog-deadlock, wall-clock-timeout and cooperative-
    /// cancellation aborts are budget trips — a slow-but-live run clears
    /// them with a bigger budget (a still-cancelled run fails the retry
    /// instantly and cheaply), and a true deadlock fails them again
    /// deterministically. Panics, configuration rejections and invariant
    /// violations are bugs; retrying the same deterministic run cannot
    /// change the outcome.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            CellError::Sim(
                SimError::CycleLimit { .. }
                    | SimError::Deadlock { .. }
                    | SimError::Timeout { .. }
                    | SimError::Cancelled { .. }
            )
        )
    }

    /// Short machine-readable classification, used by the run journal.
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Panic { .. } => "panic",
            CellError::Sim(SimError::CycleLimit { .. }) => "cycle-limit",
            CellError::Sim(SimError::Deadlock { .. }) => "deadlock",
            CellError::Sim(SimError::Timeout { .. }) => "timeout",
            CellError::Sim(SimError::Cancelled { .. }) => "cancelled",
            CellError::Sim(SimError::InvariantViolation { .. }) => "invariant-violation",
            CellError::Sim(SimError::Config(_)) => "config",
            CellError::Sim(SimError::Checkpoint { .. }) => "checkpoint",
        }
    }

    /// Re-classify a journaled [`CellError::kind`] string without the
    /// original error value: `Some(true)` for budget-trip kinds that are
    /// worth retrying, `Some(false)` for permanent failures, `None` for a
    /// string outside the taxonomy (a corrupt or future-version record).
    ///
    /// This is the classification a restarted daemon applies to quarantined
    /// journal records when it re-adopts interrupted requests; it must
    /// agree with [`CellError::retryable`] for every variant so a restart
    /// can never flip a retry decision (pinned by the round-trip proptest
    /// in `tests/cell_error_roundtrip.rs`).
    pub fn kind_retryable(kind: &str) -> Option<bool> {
        match kind {
            "cycle-limit" | "deadlock" | "timeout" | "cancelled" => Some(true),
            "panic" | "invariant-violation" | "config" | "checkpoint" => Some(false),
            _ => None,
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panic { message } => write!(f, "cell panicked: {message}"),
            CellError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellError::Panic { .. } => None,
            CellError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for CellError {
    fn from(e: SimError) -> Self {
        CellError::Sim(e)
    }
}

impl From<mcgpu_types::ConfigError> for CellError {
    fn from(e: mcgpu_types::ConfigError) -> Self {
        CellError::Sim(SimError::Config(e))
    }
}

/// The outcome of one isolated cell: how many attempts ran and the final
/// result. `result.is_err()` means the cell is quarantined — it either hit
/// a non-retryable error or exhausted [`MAX_ATTEMPTS`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome<R> {
    /// Attempts executed (1-based; 0 means the result was replayed from a
    /// journal without running).
    pub attempts: u32,
    /// The final result.
    pub result: Result<R, CellError>,
}

/// Retry budget per cell, counting the first attempt.
pub const MAX_ATTEMPTS: u32 = 3;

/// Deterministic budget escalation for retry attempt `attempt` (0-based):
/// `base × 2^attempt`, saturating at `u64::MAX`.
///
/// Shared by every retrying harness so the arithmetic is overflow-safe in
/// exactly one place. In particular `u64::MAX` — the documented "watchdog
/// disabled" sentinel — stays `u64::MAX` on every attempt instead of
/// overflowing inside the retry path, and an absurd attempt count cannot
/// trigger a shift-overflow panic.
pub fn escalate_budget(base: u64, attempt: u32) -> u64 {
    base.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
}

/// Run one cell in isolation with bounded retries.
///
/// `f(attempt)` executes attempt `attempt` (0-based) and is expected to
/// scale its own budgets deterministically — e.g. double the cycle budget
/// or watchdog window per attempt. Backoff is *budget escalation only*:
/// there is no wall-clock sleep and no randomness, so a sweep's results
/// stay a pure function of its inputs (the PR 2 determinism contract).
///
/// Panics inside `f` are caught and converted to [`CellError::Panic`];
/// they never propagate to the caller or to sibling cells. Non-retryable
/// errors (see [`CellError::retryable`]) quarantine the cell immediately.
pub fn run_cell<R>(f: impl Fn(u32) -> Result<R, CellError>) -> CellOutcome<R> {
    run_cell_from(0, f)
}

/// [`run_cell`] continuing an earlier run's attempt sequence: the first
/// call is `f(prior_attempts)` and up to [`MAX_ATTEMPTS`] *fresh* attempts
/// execute. A resumed quarantined cell therefore keeps escalating its
/// budgets from where the interrupted run stopped instead of re-running
/// the attempts (and budgets) that already failed. The returned
/// `attempts` is cumulative (`prior_attempts` + fresh attempts), which is
/// what the run journal persists so a later resume continues the same
/// sequence.
pub fn run_cell_from<R>(
    prior_attempts: u32,
    f: impl Fn(u32) -> Result<R, CellError>,
) -> CellOutcome<R> {
    let limit = prior_attempts.saturating_add(MAX_ATTEMPTS);
    let mut attempt = prior_attempts;
    loop {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(attempt)));
        let err = match caught {
            Ok(Ok(v)) => {
                return CellOutcome {
                    attempts: attempt + 1,
                    result: Ok(v),
                }
            }
            Ok(Err(e)) => e,
            Err(payload) => CellError::Panic {
                message: rayon::panic_message(payload.as_ref()),
            },
        };
        attempt += 1;
        if attempt >= limit || !err.retryable() {
            return CellOutcome {
                attempts: attempt,
                result: Err(err),
            };
        }
    }
}

/// Crash-safe variant of [`map`]: every item runs as an isolated cell
/// ([`run_cell`]) on the sweep pool, so a panicking or erroring cell yields
/// its own `Err` slot while every sibling still completes. Output order is
/// input order.
pub fn map_isolated<T, R, F>(items: Vec<T>, f: F) -> Vec<CellOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(&T, u32) -> Result<R, CellError> + Sync + Send,
{
    // `run_cell` already catches per-attempt panics; the outer `map_catch`
    // is a second net so that even a panic in the retry bookkeeping turns
    // into a typed outcome instead of poisoning the batch.
    pool()
        .install(|| rayon::map_catch(items, |item| run_cell(|attempt| f(&item, attempt))))
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|p| CellOutcome {
                attempts: 1,
                result: Err(CellError::Panic {
                    message: p.message().to_string(),
                }),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let out = map((0..64).collect(), |i: u64| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = map_with_jobs(1, (0..97).collect(), |i: u64| i.wrapping_mul(0x9e37));
        let parallel = map_with_jobs(8, (0..97).collect(), |i: u64| i.wrapping_mul(0x9e37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_cell_retries_retryable_errors_with_escalation() {
        let out = run_cell(|attempt| {
            if attempt < 2 {
                Err(CellError::Sim(SimError::CycleLimit {
                    limit: 1000 << attempt,
                }))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.attempts, 3);
        assert_eq!(out.result, Ok(2));
    }

    #[test]
    fn run_cell_quarantines_after_exhausting_retries() {
        let out: CellOutcome<()> =
            run_cell(|_| Err(CellError::Sim(SimError::CycleLimit { limit: 7 })));
        assert_eq!(out.attempts, MAX_ATTEMPTS);
        assert_eq!(
            out.result,
            Err(CellError::Sim(SimError::CycleLimit { limit: 7 }))
        );
    }

    #[test]
    fn run_cell_from_continues_the_attempt_sequence() {
        // A cell quarantined at attempts=3 resumes with f(3), f(4), f(5):
        // escalation picks up where the interrupted run stopped.
        let seen = std::sync::Mutex::new(Vec::new());
        let out: CellOutcome<()> = run_cell_from(3, |attempt| {
            seen.lock().unwrap().push(attempt);
            Err(CellError::Sim(SimError::CycleLimit {
                limit: 1000 << attempt,
            }))
        });
        assert_eq!(*seen.lock().unwrap(), vec![3, 4, 5]);
        assert_eq!(out.attempts, 6, "attempts are cumulative across resumes");

        // Success on the first resumed attempt reports prior + 1.
        let out = run_cell_from(2, Ok::<u32, CellError>);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.result, Ok(2), "first fresh attempt is f(prior)");
    }

    #[test]
    fn run_cell_does_not_retry_panics() {
        let out: CellOutcome<()> = run_cell(|_| panic!("one-shot failure"));
        assert_eq!(out.attempts, 1);
        let err = out.result.unwrap_err();
        assert_eq!(err.kind(), "panic");
        assert_eq!(
            err,
            CellError::Panic {
                message: "one-shot failure".to_string()
            }
        );
    }

    #[test]
    fn escalation_saturates_at_disabled_watchdog_sentinel() {
        // `u64::MAX` means "watchdog disabled"; escalation must keep it
        // there on every attempt instead of overflowing (attempt 2 was the
        // first multiply that could trip a naive `base * (1 << attempt)`).
        for attempt in 0..MAX_ATTEMPTS {
            assert_eq!(escalate_budget(u64::MAX, attempt), u64::MAX);
        }
        // Large-but-finite windows saturate instead of wrapping.
        assert_eq!(escalate_budget(u64::MAX / 2 + 1, 1), u64::MAX);
        // Absurd attempt counts must not panic on shift overflow.
        assert_eq!(escalate_budget(1, 200), u64::MAX);
        assert_eq!(escalate_budget(0, 200), 0);
        // Normal doubling is untouched.
        assert_eq!(escalate_budget(1000, 0), 1000);
        assert_eq!(escalate_budget(1000, 2), 4000);
    }

    #[test]
    fn kind_reclassification_agrees_with_retryable() {
        let samples: Vec<CellError> = vec![
            CellError::Panic {
                message: "x".into(),
            },
            CellError::Sim(SimError::CycleLimit { limit: 1 }),
            CellError::Sim(SimError::Timeout {
                elapsed_ms: 2,
                budget_ms: 1,
            }),
            CellError::Sim(SimError::Cancelled { cycle: 9 }),
            CellError::Sim(SimError::Config(mcgpu_types::ConfigError::new("bad"))),
        ];
        for e in samples {
            assert_eq!(
                CellError::kind_retryable(e.kind()),
                Some(e.retryable()),
                "{}",
                e.kind()
            );
        }
        assert_eq!(CellError::kind_retryable("not-a-kind"), None);
    }

    #[test]
    fn map_isolated_contains_a_panicking_cell() {
        let out = map_isolated((0..16).collect::<Vec<u64>>(), |&i, _| {
            if i == 11 {
                panic!("cell {i} exploded");
            }
            Ok(i * 2)
        });
        assert_eq!(out.len(), 16);
        for (i, cell) in out.iter().enumerate() {
            if i == 11 {
                assert!(matches!(&cell.result, Err(CellError::Panic { message })
                    if message == "cell 11 exploded"));
            } else {
                assert_eq!(cell.result, Ok(i as u64 * 2));
            }
        }
    }
}
