//! Sweep- and daemon-level checkpoint/resume wiring tests.
//!
//! The engine-level property — restore-then-run is byte-identical to an
//! uninterrupted run — is proven by `crates/sim/tests/ckpt_identity.rs`.
//! These tests prove the *plumbing above it*: a sweep with `--state-dir`
//! finds an interrupted cell's snapshot under the documented name,
//! resumes from it, produces byte-identical statistics, and consumes the
//! snapshot; a corrupt snapshot falls back to a full run instead of
//! failing the cell; a `--resume` of a quarantined cell continues the
//! journaled attempt/backoff sequence instead of restarting it from
//! zero; and a restarted `sac_serve` re-adopts an in-flight cell
//! mid-cycle from its snapshot.

use mcgpu_sim::{org, SimBuilder, SimError, Simulator};
use mcgpu_trace::{generate, profiles, TraceParams, Workload};
use mcgpu_types::{LlcOrgKind, MachineConfig, ObsConfig};
use sac_bench::journal::{cell_config_desc, fnv1a_64};
use sac_bench::serve::{Server, ServerConfig};
use sac_bench::{
    experiment_config, run_benchmark, state, Journal, JournalRecord, RecordOutcome, SweepOptions,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sac-ckpt-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn test_params() -> TraceParams {
    TraceParams {
        total_accesses: 12_000,
        ..TraceParams::quick()
    }
}

/// Run a cell to a mid-kernel cycle cut (simulating a `SIGKILL`) and
/// return the interrupted simulator plus its workload.
fn interrupt_cell(
    cfg: &MachineConfig,
    bench: &str,
    orgk: LlcOrgKind,
    obs: ObsConfig,
    cut: u64,
) -> (Simulator, Workload) {
    let wl = generate(cfg, &profiles::by_name(bench).unwrap(), &test_params());
    let mut sim = SimBuilder::new(cfg.clone())
        .organization(orgk)
        .observability(obs)
        .max_cycles(cut)
        .build()
        .unwrap();
    match sim.run(&wl) {
        Err(SimError::CycleLimit { .. }) => {}
        other => panic!("expected the cycle cut to interrupt the run, got {other:?}"),
    }
    assert_eq!(sim.cycle(), cut);
    (sim, wl)
}

#[test]
fn interrupted_cell_resumes_from_snapshot_byte_identically() {
    let cfg = experiment_config();
    let p = profiles::by_name("SN").unwrap();
    let orgk = LlcOrgKind::Sac;
    let fresh = run_benchmark(&cfg, &p, &test_params(), &[orgk], &SweepOptions::none()).unwrap();

    // Simulate a kill mid-cell: snapshot an interrupted run at the exact
    // path the sweep derives for this cell.
    let dir = tdir("resume");
    let name = format!("{}/{}", p.name, orgk.label());
    let hash = fnv1a_64(cell_config_desc(&cfg, &test_params(), p.name, orgk).as_bytes());
    let snap = state::cell_snapshot_path(&dir, &name, hash);
    let (victim, wl) = interrupt_cell(&cfg, p.name, orgk, ObsConfig::off(), 1500);
    victim.write_checkpoint(&snap, &wl).unwrap();

    let opts = SweepOptions {
        state_dir: Some(dir.clone()),
        ..SweepOptions::none()
    };
    let resumed = run_benchmark(&cfg, &p, &test_params(), &[orgk], &opts).unwrap();
    assert_eq!(
        resumed.stats(orgk).to_canonical_json(),
        fresh.stats(orgk).to_canonical_json(),
        "mid-cell resume must be byte-identical to the uninterrupted run"
    );
    assert!(
        !snap.exists(),
        "a completed cell's snapshot is superseded and removed"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshot_falls_back_to_a_full_run() {
    let cfg = experiment_config();
    let p = profiles::by_name("SN").unwrap();
    let orgk = LlcOrgKind::MemorySide;
    let fresh = run_benchmark(&cfg, &p, &test_params(), &[orgk], &SweepOptions::none()).unwrap();

    let dir = tdir("corrupt");
    let name = format!("{}/{}", p.name, orgk.label());
    let hash = fnv1a_64(cell_config_desc(&cfg, &test_params(), p.name, orgk).as_bytes());
    let snap = state::cell_snapshot_path(&dir, &name, hash);
    std::fs::write(&snap, b"not a snapshot at all").unwrap();

    let opts = SweepOptions {
        state_dir: Some(dir.clone()),
        ..SweepOptions::none()
    };
    let resumed = run_benchmark(&cfg, &p, &test_params(), &[orgk], &opts)
        .expect("a corrupt snapshot must cost a re-run, not the cell");
    assert_eq!(
        resumed.stats(orgk).to_canonical_json(),
        fresh.stats(orgk).to_canonical_json()
    );
    assert!(!snap.exists(), "the dead snapshot is cleaned up");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_continues_attempt_counts_for_quarantined_cells() {
    let cfg = experiment_config();
    let p = profiles::by_name("SN").unwrap();
    let orgk = LlcOrgKind::MemorySide;
    let fresh = run_benchmark(&cfg, &p, &test_params(), &[orgk], &SweepOptions::none()).unwrap();

    // Seed a journal that says this cell was quarantined after 2 attempts
    // (as an interrupted earlier sweep would have recorded).
    let dir = tdir("attempts");
    let jpath = dir.join("journal.jsonl");
    let name = format!("{}/{}", p.name, orgk.label());
    let desc = cell_config_desc(&cfg, &test_params(), p.name, orgk);
    let hash = fnv1a_64(desc.as_bytes());
    let mut j = Journal::create(&jpath).unwrap();
    j.append(JournalRecord {
        cell: name.clone(),
        config_hash: hash,
        config: Some(desc),
        mode: None,
        attempts: 2,
        outcome: RecordOutcome::Quarantined {
            kind: "deadlock".to_string(),
            error: "seeded by test".to_string(),
        },
    })
    .unwrap();
    drop(j);

    let opts = SweepOptions {
        resume: Some(jpath.clone()),
        ..SweepOptions::none()
    };
    let resumed = run_benchmark(&cfg, &p, &test_params(), &[orgk], &opts).unwrap();
    // The watchdog window only decides when to abort, never what a
    // completing run computes, so the escalated retry stays identical.
    assert_eq!(
        resumed.stats(orgk).to_canonical_json(),
        fresh.stats(orgk).to_canonical_json()
    );
    let back = Journal::open(&jpath).unwrap();
    let rec = back.lookup(&name, hash).expect("the retry was journaled");
    assert!(matches!(rec.outcome, RecordOutcome::Completed { .. }));
    assert_eq!(
        rec.attempts, 3,
        "2 journaled attempts + 1 fresh attempt: escalation resumed, not reset"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// sac_serve restart re-adoption
// ---------------------------------------------------------------------------

/// Minimal one-request HTTP client (the daemon closes the connection
/// after each response): returns (status, body-after-headers).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {buf}"));
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_readopts_an_inflight_cell_mid_cycle_from_its_snapshot() {
    // The state a killed daemon would leave behind: an acknowledged
    // request in the manifest, no journal record for its cell, and a
    // mid-cycle snapshot of the in-flight simulation. The job runs with
    // exactly the admission-path configuration (baseline machine, quick
    // params at the requested volume, metrics-level observability).
    let bench = "SN";
    let orgk = LlcOrgKind::Sac;
    let token = org::descriptor(orgk).token;
    let machine = MachineConfig::experiment_baseline();
    let params = TraceParams {
        total_accesses: 8_000,
        ..TraceParams::quick()
    };
    let wl = generate(&machine, &profiles::by_name(bench).unwrap(), &params);
    let fresh = {
        let mut sim = SimBuilder::new(machine.clone())
            .organization(orgk)
            .observability(ObsConfig::metrics())
            .build()
            .unwrap();
        sim.run(&wl).unwrap().to_canonical_json()
    };

    let dir = tdir("serve");
    let ckpt_dir = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let name = format!("{bench}/{token}");
    let hash = fnv1a_64(cell_config_desc(&machine, &params, bench, orgk).as_bytes());
    let snap = state::cell_snapshot_path(&ckpt_dir, &name, hash);
    {
        let mut victim = SimBuilder::new(machine.clone())
            .organization(orgk)
            .observability(ObsConfig::metrics())
            .max_cycles(1000)
            .build()
            .unwrap();
        match victim.run(&wl) {
            Err(SimError::CycleLimit { .. }) => {}
            other => panic!("expected the cycle cut to interrupt the run, got {other:?}"),
        }
        victim.write_checkpoint(&snap, &wl).unwrap();
    }

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir: dir.clone(),
        max_queue: 64,
        stall_ms: 0,
        ckpt_interval: 65_536,
    })
    .unwrap();
    let addr = server.addr();
    assert!(
        snap.exists(),
        "startup GC must keep the live in-flight snapshot"
    );

    let spec = format!(
        "{{\"id\": \"readopt-1\", \"benchmarks\": [\"{bench}\"], \
         \"orgs\": [\"{token}\"], \"total_accesses\": 8000}}"
    );
    let (status, _) = http(addr, "POST", "/v1/sweeps", &spec);
    assert_eq!(status, 202);

    // The request-level phase leads the status document; cells carry
    // their own "phase" keys further in, so match the document prefix.
    let done = "{\"id\": \"readopt-1\", \"phase\": \"completed\"";
    let failed = "{\"id\": \"readopt-1\", \"phase\": \"failed\"";
    let deadline = Instant::now() + Duration::from_secs(120);
    let terminal = loop {
        let (status, body) = http(addr, "GET", "/v1/sweeps/readopt-1", "");
        assert_eq!(status, 200);
        if body.starts_with(done) || body.starts_with(failed) {
            break body;
        }
        assert!(Instant::now() < deadline, "request never finished: {body}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        terminal.starts_with(done),
        "re-adopted cell must complete: {terminal}"
    );

    let (status, stats) = http(addr, "GET", "/v1/sweeps/readopt-1/cells/0/stats", "");
    assert_eq!(status, 200);
    assert_eq!(
        stats, fresh,
        "a cell resumed mid-cycle from its snapshot serves byte-identical stats"
    );
    assert!(
        !snap.exists(),
        "the delivered cell's snapshot is superseded and removed"
    );
    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
