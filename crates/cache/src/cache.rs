//! The generic set-associative cache.

use crate::stats::CacheStats;
use mcgpu_types::{LineAddr, SectorId};

/// Whether a resident line's data belongs to the local memory partition or a
/// remote one. Doubles as the pool selector under way partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataHome {
    /// Data homed in this chip's memory partition.
    Local,
    /// Data homed in another chip's memory partition.
    Remote,
}

/// Which ways of a set a fill may allocate into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WayPool {
    /// All ways (no partitioning — memory-side or SM-side LLC).
    All,
    /// Only the local-data ways of a partitioned cache.
    Local,
    /// Only the remote-data ways of a partitioned cache.
    Remote,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Tag present (and, if sectored, the sector valid).
    Hit,
    /// Tag present but the requested sector invalid (sectored caches only).
    /// Costs a sector fetch, not a whole-line fetch.
    SectorMiss,
    /// Tag absent.
    Miss,
}

/// A victim evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the line was dirty (needs a writeback).
    pub dirty: bool,
    /// Where the evicted line's data was homed.
    pub home: DataHome,
}

/// Static geometry of a cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_size: u64,
    /// Sectors per line; `None` for a conventional cache.
    pub sectors: Option<u32>,
    /// Mix the line address before set indexing (used by LLC slices, which
    /// see PAE-hashed traffic; L1s use plain modulo indexing).
    pub hashed_sets: bool,
}

impl CacheConfig {
    /// Geometry of an L1 data cache (modulo indexing, conventional lines).
    pub fn l1(capacity_bytes: u64, assoc: usize, line_size: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            assoc,
            line_size,
            sectors: None,
            hashed_sets: false,
        }
    }

    /// Geometry of an LLC slice (hashed set indexing).
    pub fn llc_slice(capacity_bytes: u64, assoc: usize, line_size: u64) -> Self {
        CacheConfig {
            capacity_bytes,
            assoc,
            line_size,
            sectors: None,
            hashed_sets: true,
        }
    }

    /// Enable sectored lines with `sectors` sectors per line.
    pub fn with_sectors(mut self, sectors: u32) -> Self {
        assert!(
            (1..=8).contains(&sectors),
            "sector valid bits are stored in a u8"
        );
        self.sectors = Some(sectors);
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the capacity does not hold a whole number of sets.
    pub fn num_sets(&self) -> usize {
        let set_bytes = self.assoc as u64 * self.line_size;
        assert!(
            self.capacity_bytes.is_multiple_of(set_bytes) && self.capacity_bytes > 0,
            "capacity must be a multiple of assoc * line_size"
        );
        (self.capacity_bytes / set_bytes) as usize
    }

    /// Total lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        (self.capacity_bytes / self.line_size) as usize
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    home: DataHome,
    /// Per-sector valid bits; all-ones for conventional caches.
    sectors: u8,
    /// LRU timestamp (higher = more recent).
    stamp: u64,
}

impl Way {
    fn empty() -> Self {
        Way {
            tag: 0,
            valid: false,
            dirty: false,
            home: DataHome::Local,
            sectors: 0,
            stamp: 0,
        }
    }
}

/// A set-associative, write-back, true-LRU cache with optional sectoring and
/// way partitioning. See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    /// Number of ways reserved for local data when partitioned; `None` means
    /// unpartitioned.
    local_ways: Option<usize>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Create an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        SetAssocCache {
            sets: vec![vec![Way::empty(); cfg.assoc]; num_sets],
            clock: 0,
            local_ways: None,
            stats: CacheStats::default(),
            cfg,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset the statistics (e.g. at a profiling-window boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Partition each set's ways into `local_ways` for local data and the
    /// rest for remote data. Existing contents stay resident (and can still
    /// hit) until evicted. Pass the full associativity to dedicate everything
    /// to local data.
    ///
    /// # Panics
    /// Panics if `local_ways > assoc`.
    pub fn set_partition(&mut self, local_ways: usize) {
        assert!(local_ways <= self.cfg.assoc);
        self.local_ways = Some(local_ways);
    }

    /// Remove way partitioning.
    pub fn clear_partition(&mut self) {
        self.local_ways = None;
    }

    /// Current way split `(local, remote)` if partitioned.
    pub fn partition(&self) -> Option<(usize, usize)> {
        self.local_ways.map(|l| (l, self.cfg.assoc - l))
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        let mut x = line.index();
        if self.cfg.hashed_sets {
            // splitmix64-style finalizer: decorrelates strided traffic.
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
        }
        (x % self.sets.len() as u64) as usize
    }

    #[inline]
    fn sector_mask(&self, sector: Option<SectorId>) -> u8 {
        match (self.cfg.sectors, sector) {
            (Some(_), Some(s)) => 1u8 << s.0,
            // Conventional cache, or a whole-line operation: all sectors.
            _ => u8::MAX,
        }
    }

    /// Look up `line` (and `sector` if sectored), updating LRU and stats.
    /// `write` marks the line dirty on a hit.
    pub fn lookup(
        &mut self,
        line: LineAddr,
        sector: Option<SectorId>,
        write: bool,
    ) -> LookupOutcome {
        self.clock += 1;
        let mask = self.sector_mask(sector);
        let set = self.set_index(line);
        self.stats.accesses += 1;
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line.index() {
                way.stamp = self.clock;
                if way.sectors & mask != 0 {
                    if write {
                        way.dirty = true;
                    }
                    self.stats.hits += 1;
                    return LookupOutcome::Hit;
                }
                self.stats.sector_misses += 1;
                return LookupOutcome::SectorMiss;
            }
        }
        self.stats.misses += 1;
        LookupOutcome::Miss
    }

    /// Check residency without touching LRU or stats.
    pub fn probe(&self, line: LineAddr, sector: Option<SectorId>) -> bool {
        let mask = self.sector_mask(sector);
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .any(|w| w.valid && w.tag == line.index() && w.sectors & mask != 0)
    }

    /// Install `line` (or just `sector` of it), evicting an LRU victim from
    /// the pool implied by `home` (or anywhere when unpartitioned).
    ///
    /// If the line is already resident, only the sector valid bits are
    /// updated (no eviction). Returns the victim if a valid line was evicted.
    pub fn fill(
        &mut self,
        line: LineAddr,
        sector: Option<SectorId>,
        home: DataHome,
        write: bool,
    ) -> Option<Eviction> {
        self.clock += 1;
        let mask = self.sector_mask(sector);
        let set = self.set_index(line);
        self.stats.fills += 1;

        // Already resident (sector fill into an existing line)?
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.tag == line.index())
        {
            way.sectors |= mask;
            way.stamp = self.clock;
            if write {
                way.dirty = true;
            }
            return None;
        }

        let pool = match self.local_ways {
            None => 0..self.cfg.assoc,
            Some(l) => match home {
                DataHome::Local => 0..l,
                DataHome::Remote => l..self.cfg.assoc,
            },
        };
        if pool.is_empty() {
            // A zero-way pool (fully dedicated cache): cannot allocate.
            self.stats.fill_rejections += 1;
            return None;
        }

        // Prefer an invalid way, else evict the LRU way of the pool.
        let ways = &mut self.sets[set];
        let victim_idx = pool
            .clone()
            .find(|&i| !ways[i].valid)
            .unwrap_or_else(|| pool.min_by_key(|&i| ways[i].stamp).expect("non-empty pool"));
        let victim = &mut ways[victim_idx];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            Some(Eviction {
                line: LineAddr(victim.tag),
                dirty: victim.dirty,
                home: victim.home,
            })
        } else {
            None
        };
        *victim = Way {
            tag: line.index(),
            valid: true,
            dirty: write,
            home,
            sectors: mask,
            stamp: self.clock,
        };
        evicted
    }

    /// Invalidate a single line if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line.index() {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Flush + invalidate the whole cache (software coherence at a kernel
    /// boundary, or an LLC reconfiguration). Returns the dirty lines that
    /// need writing back.
    pub fn flush_all(&mut self) -> Vec<LineAddr> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for way in set {
                if way.valid {
                    if way.dirty {
                        dirty.push(LineAddr(way.tag));
                    }
                    way.valid = false;
                    way.dirty = false;
                    way.sectors = 0;
                }
            }
        }
        dirty
    }

    /// Write back every dirty line, marking it clean but **keeping it
    /// resident** (SAC's memory-side → SM-side reconfiguration: home-slice
    /// contents stay valid under the new routing, only dirtiness must be
    /// pushed to memory before replicas can appear elsewhere).
    pub fn writeback_all_dirty(&mut self) -> Vec<LineAddr> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for way in set {
                if way.valid && way.dirty {
                    dirty.push(LineAddr(way.tag));
                    way.dirty = false;
                }
            }
        }
        dirty
    }

    /// Flush + invalidate only the lines whose data is homed `home`
    /// (software coherence for the static/dynamic organizations, which must
    /// drop their remote pool at kernel boundaries). Returns the dirty
    /// lines that need writing back.
    pub fn flush_home(&mut self, home: DataHome) -> Vec<LineAddr> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for way in set {
                if way.valid && way.home == home {
                    if way.dirty {
                        dirty.push(LineAddr(way.tag));
                    }
                    way.valid = false;
                    way.dirty = false;
                    way.sectors = 0;
                }
            }
        }
        dirty
    }

    /// Number of valid lines currently resident.
    pub fn len(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.valid)
            .count()
    }

    /// Whether the cache holds no valid lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of resident lines by data home `(local, remote)` — Fig. 9.
    pub fn occupancy_by_home(&self) -> (usize, usize) {
        let mut local = 0;
        let mut remote = 0;
        for way in self.sets.iter().flat_map(|s| s.iter()) {
            if way.valid {
                match way.home {
                    DataHome::Local => local += 1,
                    DataHome::Remote => remote += 1,
                }
            }
        }
        (local, remote)
    }

    /// Serialize the full dynamic state (every way's tag/valid/dirty/home/
    /// sector bits/LRU stamp, the LRU clock, partition and stats) into a
    /// checkpoint payload. Geometry is *not* serialized — the restoring
    /// side rebuilds the cache from the same [`CacheConfig`] and
    /// [`SetAssocCache::load_into`] checks the shapes agree.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_usize(self.sets.len());
        e.put_usize(self.cfg.assoc);
        e.put_u64(self.clock);
        match self.local_ways {
            None => e.put_bool(false),
            Some(l) => {
                e.put_bool(true);
                e.put_usize(l);
            }
        }
        let s = &self.stats;
        for v in [
            s.accesses,
            s.hits,
            s.misses,
            s.sector_misses,
            s.fills,
            s.evictions,
            s.fill_rejections,
        ] {
            e.put_u64(v);
        }
        for way in self.sets.iter().flat_map(|s| s.iter()) {
            e.put_u64(way.tag);
            e.put_bool(way.valid);
            e.put_bool(way.dirty);
            e.put_bool(matches!(way.home, DataHome::Remote));
            e.put_u8(way.sectors);
            e.put_u64(way.stamp);
        }
    }

    /// Overwrite this cache's dynamic state from a payload saved by
    /// [`SetAssocCache::save`]. The cache must have been constructed with
    /// the same geometry as the saved one.
    ///
    /// # Errors
    /// Returns a decode error on truncated input or a geometry mismatch.
    pub fn load_into(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        let sets = d.get_usize()?;
        let assoc = d.get_usize()?;
        if sets != self.sets.len() || assoc != self.cfg.assoc {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "cache geometry mismatch: snapshot {sets}x{assoc}, live {}x{}",
                self.sets.len(),
                self.cfg.assoc
            )));
        }
        self.clock = d.get_u64()?;
        self.local_ways = if d.get_bool()? {
            Some(d.get_usize()?)
        } else {
            None
        };
        self.stats = CacheStats {
            accesses: d.get_u64()?,
            hits: d.get_u64()?,
            misses: d.get_u64()?,
            sector_misses: d.get_u64()?,
            fills: d.get_u64()?,
            evictions: d.get_u64()?,
            fill_rejections: d.get_u64()?,
        };
        for way in self.sets.iter_mut().flat_map(|s| s.iter_mut()) {
            way.tag = d.get_u64()?;
            way.valid = d.get_bool()?;
            way.dirty = d.get_bool()?;
            way.home = if d.get_bool()? {
                DataHome::Remote
            } else {
                DataHome::Local
            };
            way.sectors = d.get_u8()?;
            way.stamp = d.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 128 B lines = 1 KiB.
        SetAssocCache::new(CacheConfig::l1(1024, 2, 128))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(LineAddr(5), None, false), LookupOutcome::Miss);
        assert!(c.fill(LineAddr(5), None, DataHome::Local, false).is_none());
        assert_eq!(c.lookup(LineAddr(5), None, false), LookupOutcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets, modulo indexing).
        c.fill(LineAddr(0), None, DataHome::Local, false);
        c.fill(LineAddr(4), None, DataHome::Local, false);
        // Touch 0 so 4 becomes LRU.
        assert_eq!(c.lookup(LineAddr(0), None, false), LookupOutcome::Hit);
        let ev = c.fill(LineAddr(8), None, DataHome::Local, false).unwrap();
        assert_eq!(ev.line, LineAddr(4));
        assert!(!ev.dirty);
        assert!(c.probe(LineAddr(0), None));
        assert!(!c.probe(LineAddr(4), None));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(LineAddr(0), None, DataHome::Remote, true);
        c.fill(LineAddr(4), None, DataHome::Local, false);
        let ev = c.fill(LineAddr(8), None, DataHome::Local, false).unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.dirty);
        assert_eq!(ev.home, DataHome::Remote);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(LineAddr(3), None, DataHome::Local, false);
        assert_eq!(c.lookup(LineAddr(3), None, true), LookupOutcome::Hit);
        let dirty = c.flush_all();
        assert_eq!(dirty, vec![LineAddr(3)]);
        assert!(c.is_empty());
    }

    #[test]
    fn partitioned_fills_stay_in_pool() {
        // 1 set x 4 ways.
        let mut c = SetAssocCache::new(CacheConfig::l1(512, 4, 128));
        c.set_partition(2); // ways 0-1 local, 2-3 remote
        c.fill(LineAddr(1), None, DataHome::Local, false);
        c.fill(LineAddr(2), None, DataHome::Local, false);
        c.fill(LineAddr(3), None, DataHome::Remote, false);
        c.fill(LineAddr(4), None, DataHome::Remote, false);
        assert_eq!(c.len(), 4);
        // A third local fill must evict a *local* line, not a remote one.
        let ev = c.fill(LineAddr(5), None, DataHome::Local, false).unwrap();
        assert_eq!(ev.home, DataHome::Local);
        assert!(c.probe(LineAddr(3), None));
        assert!(c.probe(LineAddr(4), None));
        assert_eq!(c.occupancy_by_home(), (2, 2));
    }

    #[test]
    fn zero_way_pool_rejects_fill() {
        let mut c = SetAssocCache::new(CacheConfig::l1(512, 4, 128));
        c.set_partition(4); // no remote ways at all
        assert!(c.fill(LineAddr(9), None, DataHome::Remote, false).is_none());
        assert!(!c.probe(LineAddr(9), None));
        assert_eq!(c.stats().fill_rejections, 1);
        // Local fills still work.
        c.fill(LineAddr(9), None, DataHome::Local, false);
        assert!(c.probe(LineAddr(9), None));
    }

    #[test]
    fn sectored_hits_per_sector() {
        let cfg = CacheConfig::l1(1024, 2, 128).with_sectors(4);
        let mut c = SetAssocCache::new(cfg);
        c.fill(LineAddr(5), Some(SectorId(1)), DataHome::Local, false);
        assert_eq!(
            c.lookup(LineAddr(5), Some(SectorId(1)), false),
            LookupOutcome::Hit
        );
        assert_eq!(
            c.lookup(LineAddr(5), Some(SectorId(2)), false),
            LookupOutcome::SectorMiss
        );
        // Sector fill does not evict the line.
        assert!(c
            .fill(LineAddr(5), Some(SectorId(2)), DataHome::Local, false)
            .is_none());
        assert_eq!(
            c.lookup(LineAddr(5), Some(SectorId(2)), false),
            LookupOutcome::Hit
        );
    }

    #[test]
    fn writeback_all_dirty_keeps_lines_resident() {
        let mut c = SetAssocCache::new(CacheConfig::l1(512, 4, 128));
        c.fill(LineAddr(1), None, DataHome::Local, true);
        c.fill(LineAddr(2), None, DataHome::Local, false);
        let dirty = c.writeback_all_dirty();
        assert_eq!(dirty, vec![LineAddr(1)]);
        assert!(c.probe(LineAddr(1), None));
        assert!(c.probe(LineAddr(2), None));
        // Second call finds nothing dirty.
        assert!(c.writeback_all_dirty().is_empty());
        // And a full flush now reports no dirty lines either.
        assert!(c.flush_all().is_empty());
    }

    #[test]
    fn flush_home_is_selective() {
        let mut c = SetAssocCache::new(CacheConfig::l1(512, 4, 128));
        c.fill(LineAddr(1), None, DataHome::Local, true);
        c.fill(LineAddr(2), None, DataHome::Remote, true);
        c.fill(LineAddr(3), None, DataHome::Remote, false);
        let dirty = c.flush_home(DataHome::Remote);
        assert_eq!(dirty, vec![LineAddr(2)]);
        assert!(c.probe(LineAddr(1), None), "local lines survive");
        assert!(!c.probe(LineAddr(2), None));
        assert!(!c.probe(LineAddr(3), None));
        assert_eq!(c.occupancy_by_home(), (1, 0));
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.fill(LineAddr(6), None, DataHome::Local, true);
        assert_eq!(c.invalidate(LineAddr(6)), Some(true));
        assert_eq!(c.invalidate(LineAddr(6)), None);
        assert!(!c.probe(LineAddr(6), None));
    }

    #[test]
    fn hashed_sets_spread_strided_traffic() {
        // Strided lines that would all land in set 0 with modulo indexing.
        let cfg = CacheConfig::llc_slice(64 * 128, 1, 128); // 64 sets x 1 way
        let mut c = SetAssocCache::new(cfg);
        let mut evictions = 0;
        for i in 0..64u64 {
            if c.fill(LineAddr(i * 64), None, DataHome::Local, false)
                .is_some()
            {
                evictions += 1;
            }
        }
        // With modulo indexing all 64 fills would collide (63 evictions);
        // hashing should spread them widely.
        assert!(evictions < 32, "evictions = {evictions}");
    }
}
