//! Set-associative cache models for the multi-chip GPU simulator.
//!
//! One generic [`SetAssocCache`] implements everything the paper's cache
//! hierarchy needs:
//!
//! * true-LRU replacement within a set,
//! * optional **sectored** lines (valid bits per sector; Fig. 14 sweep),
//! * optional **way partitioning** into a local-data and a remote-data pool,
//!   which is how the Static (L1.5, Arunkumar et al.) and Dynamic (Milic et
//!   al.) baselines reserve capacity for local vs remote data,
//! * write-back dirty tracking with victim reporting, and
//! * bulk flush/invalidate for software coherence at kernel boundaries.
//!
//! Every resident line is tagged with whether its data belongs to the local
//! memory partition ([`DataHome::Local`]) or a remote one
//! ([`DataHome::Remote`]); the occupancy breakdown of Fig. 9 falls directly
//! out of these tags.
//!
//! # Example
//!
//! ```
//! use mcgpu_cache::{CacheConfig, DataHome, LookupOutcome, SetAssocCache};
//! use mcgpu_types::LineAddr;
//!
//! let mut llc = SetAssocCache::new(CacheConfig::llc_slice(256 << 10, 16, 128));
//! assert_eq!(llc.lookup(LineAddr(7), None, false), LookupOutcome::Miss);
//! llc.fill(LineAddr(7), None, DataHome::Local, false);
//! assert_eq!(llc.lookup(LineAddr(7), None, false), LookupOutcome::Hit);
//! ```

pub mod cache;
pub mod stats;

pub use cache::{CacheConfig, DataHome, Eviction, LookupOutcome, SetAssocCache, WayPool};
pub use stats::CacheStats;
