//! Cache statistics counters.

/// Event counters accumulated by a [`SetAssocCache`](crate::SetAssocCache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit (tag and sector valid).
    pub hits: u64,
    /// Lookups that missed the tag array entirely.
    pub misses: u64,
    /// Lookups that found the tag but not the sector (sectored caches).
    pub sector_misses: u64,
    /// Fills performed.
    pub fills: u64,
    /// Valid lines evicted by fills.
    pub evictions: u64,
    /// Fills rejected because the target way pool had zero ways.
    pub fill_rejections: u64,
}

impl CacheStats {
    /// Hit rate over all lookups; 0 when no lookups happened.
    ///
    /// Sector misses count as misses: the data was not present.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate over all lookups (`1 - hit_rate` when lookups happened).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.hit_rate()
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.sector_misses += other.sector_misses;
        self.fills += other.fills;
        self.evictions += other.evictions;
        self.fill_rejections += other.fill_rejections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 2,
            sector_misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            accesses: 1,
            hits: 1,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 2,
            misses: 2,
            evictions: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.evictions, 1);
    }
}
