//! Property-based tests for the set-associative cache.

use mcgpu_cache::{CacheConfig, DataHome, LookupOutcome, SetAssocCache};
use mcgpu_types::LineAddr;
use proptest::prelude::*;

/// An operation in a random cache workload.
#[derive(Debug, Clone)]
enum Op {
    Lookup(u64, bool),
    Fill(u64, bool, bool), // line, write, remote
    Invalidate(u64),
    Flush,
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_line, any::<bool>()).prop_map(|(l, w)| Op::Lookup(l, w)),
        (0..max_line, any::<bool>(), any::<bool>()).prop_map(|(l, w, r)| Op::Fill(l, w, r)),
        (0..max_line).prop_map(Op::Invalidate),
        Just(Op::Flush),
    ]
}

proptest! {
    /// The cache never holds more lines than its capacity, and occupancy
    /// always equals the sum of the per-home counts.
    #[test]
    fn occupancy_never_exceeds_capacity(
        ops in proptest::collection::vec(op_strategy(256), 1..400),
        assoc in 1usize..8,
    ) {
        let cfg = CacheConfig::l1(8 * assoc as u64 * 128, assoc, 128);
        let capacity = cfg.capacity_lines();
        let mut c = SetAssocCache::new(cfg);
        for op in ops {
            match op {
                Op::Lookup(l, w) => { c.lookup(LineAddr(l), None, w); }
                Op::Fill(l, w, r) => {
                    let home = if r { DataHome::Remote } else { DataHome::Local };
                    c.fill(LineAddr(l), None, home, w);
                }
                Op::Invalidate(l) => { c.invalidate(LineAddr(l)); }
                Op::Flush => { c.flush_all(); }
            }
            prop_assert!(c.len() <= capacity);
            let (local, remote) = c.occupancy_by_home();
            prop_assert_eq!(local + remote, c.len());
        }
    }

    /// Fill followed immediately by lookup always hits, and a fill never
    /// evicts the line just filled.
    #[test]
    fn fill_then_lookup_hits(lines in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig::llc_slice(4 * 128 * 4, 4, 128));
        for l in lines {
            let ev = c.fill(LineAddr(l), None, DataHome::Local, false);
            if let Some(ev) = ev {
                prop_assert_ne!(ev.line, LineAddr(l));
            }
            prop_assert_eq!(c.lookup(LineAddr(l), None, false), LookupOutcome::Hit);
        }
    }

    /// Hits + misses (+ sector misses) always equals accesses, and fills -
    /// evictions - rejections bounds occupancy.
    #[test]
    fn stats_are_consistent(
        ops in proptest::collection::vec(op_strategy(128), 1..300),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::l1(2048, 2, 128));
        for op in ops {
            match op {
                Op::Lookup(l, w) => { c.lookup(LineAddr(l), None, w); }
                Op::Fill(l, w, r) => {
                    let home = if r { DataHome::Remote } else { DataHome::Local };
                    c.fill(LineAddr(l), None, home, w);
                }
                Op::Invalidate(l) => { c.invalidate(LineAddr(l)); }
                Op::Flush => { c.flush_all(); }
            }
        }
        let s = *c.stats();
        prop_assert_eq!(s.hits + s.misses + s.sector_misses, s.accesses);
        prop_assert!(s.evictions <= s.fills);
    }

    /// Flush returns exactly the dirty lines, leaves the cache empty, and a
    /// re-lookup of any previously resident line misses.
    #[test]
    fn flush_returns_dirty_lines(
        fills in proptest::collection::vec((0u64..64, any::<bool>()), 1..60),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::l1(64 * 128, 4, 128));
        for &(l, w) in &fills {
            c.fill(LineAddr(l), None, DataHome::Local, w);
        }
        // Which lines are resident AND dirty right now?
        let mut expect_dirty: Vec<u64> = Vec::new();
        for l in 0..64u64 {
            if c.probe(LineAddr(l), None) {
                // Dirty iff the last fill/write of l was a write and no
                // clean overwrite happened — we can't see dirtiness via the
                // public API except through flush, so just check set-equality
                // of flush output with residency-filtered writes.
                let was_written = fills
                    .iter()
                    .filter(|&&(fl, _)| fl == l)
                    .any(|&(_, w)| w);
                if was_written {
                    expect_dirty.push(l);
                }
            }
        }
        let mut dirty: Vec<u64> = c.flush_all().into_iter().map(|l| l.index()).collect();
        dirty.sort_unstable();
        // Every flushed-dirty line must have been written at some point.
        for d in &dirty {
            prop_assert!(expect_dirty.contains(d));
        }
        prop_assert!(c.is_empty());
    }

    /// Under way partitioning, the number of resident remote lines never
    /// exceeds remote_ways * sets, and likewise for local lines.
    #[test]
    fn partition_pools_are_bounded(
        fills in proptest::collection::vec((0u64..512, any::<bool>()), 1..300),
        local_ways in 0usize..=4,
    ) {
        let sets = 8usize;
        let assoc = 4usize;
        let mut c = SetAssocCache::new(CacheConfig::l1((sets * assoc) as u64 * 128, assoc, 128));
        c.set_partition(local_ways);
        for &(l, remote) in &fills {
            let home = if remote { DataHome::Remote } else { DataHome::Local };
            c.fill(LineAddr(l), None, home, false);
        }
        let (local, remote) = c.occupancy_by_home();
        prop_assert!(local <= local_ways * sets);
        prop_assert!(remote <= (assoc - local_ways) * sets);
    }
}
