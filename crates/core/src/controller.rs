//! The SAC runtime controller (§3.2, §3.5).
//!
//! Per kernel invocation:
//!
//! 1. start in the **memory-side** configuration and profile for a short
//!    window (2K cycles in the paper) while the counters and CRDs collect
//!    the EAB inputs;
//! 2. evaluate the EAB model; if `EAB_sm > (1 + θ) · EAB_mem` (θ = 5%),
//!    reconfigure to SM-side: wait for in-flight requests to drain, write
//!    back and invalidate dirty LLC lines, switch the NoC routing policy;
//! 3. at kernel termination, revert to memory-side (drain + switch).
//!
//! The controller is a pure state machine: the simulator drives it with
//! `tick`, feeds its [`ProfileCollector`], and signals
//! [`drain_complete`](SacController::drain_complete) /
//! [`flush_complete`](SacController::flush_complete) when the machine
//! reaches the corresponding quiescent points.

use crate::counters::ProfileCollector;
use crate::eab::{EabInputs, EabModel};
use crate::LlcMode;

/// SAC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SacConfig {
    /// Profiling window length in cycles (paper: 2000).
    pub profile_window: u64,
    /// Decision threshold θ (paper: 0.05).
    pub theta: f64,
    /// Minimum L1-miss observations required before deciding; the window is
    /// extended in half-window steps (up to 8× the window) until reached.
    /// This guards against deciding from an empty sample when the machine
    /// is drained or saturated during the nominal window.
    pub min_samples: u64,
}

impl Default for SacConfig {
    fn default() -> Self {
        SacConfig {
            profile_window: 2000,
            theta: 0.05,
            min_samples: 1000,
        }
    }
}

impl SacConfig {
    /// Window sized for a scaled machine: access latencies (in cycles) do
    /// not scale with the machine, so the cold-start transient covers a
    /// larger share of a scaled machine's profiling window; we widen the
    /// window by the capacity/topology ratio to compensate.
    pub fn for_machine(cfg: &mcgpu_types::MachineConfig) -> Self {
        let stretch = (cfg.scale.capacity / cfg.scale.topology).max(1) as u64;
        SacConfig {
            profile_window: 1000 * stretch.max(2),
            ..SacConfig::default()
        }
    }
}

/// Controller state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SacState {
    /// No kernel is running.
    Idle,
    /// Memory-side profiling until the given cycle. The first half of the
    /// window warms the caches; the counters are reset at the midpoint so
    /// the measured rates reflect warm behaviour rather than cold misses.
    Profiling {
        /// Cycle at which the window ends.
        until: u64,
    },
    /// Waiting for in-flight requests to drain before switching to `to`.
    Draining {
        /// Target mode after the drain.
        to: LlcMode,
    },
    /// Writing back + invalidating dirty LLC lines before running SM-side.
    Flushing,
    /// Steady-state execution.
    Running {
        /// The active LLC mode.
        mode: LlcMode,
    },
}

/// Record of one kernel's profiling and decision (drives Fig. 12 and the
/// decision-quality analyses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRecord {
    /// Cycle the kernel began.
    pub start_cycle: u64,
    /// Cycle the decision was made (end of the profiling window).
    pub decision_cycle: u64,
    /// The collected EAB inputs.
    pub inputs: EabInputs,
    /// Predicted EAB of the memory-side configuration.
    pub eab_memory_side: f64,
    /// Predicted EAB of the SM-side configuration.
    pub eab_sm_side: f64,
    /// The chosen mode.
    pub mode: LlcMode,
    /// L1-miss requests observed during the measured half of the window.
    pub requests_observed: u64,
}

/// The per-kernel SAC reconfiguration state machine. See the
/// [module docs](self) for the protocol.
#[derive(Debug, Clone)]
pub struct SacController {
    config: SacConfig,
    model: EabModel,
    state: SacState,
    collector: ProfileCollector,
    kernel_start: u64,
    warmup_reset_done: bool,
    history: Vec<KernelRecord>,
}

impl SacController {
    /// Create a controller for a machine with `chips` chips,
    /// `total_slices` LLC slices and per-chip LLCs of `llc_sets_per_chip`
    /// sets; `sectored` selects the sectored CRD layout.
    pub fn new(
        config: SacConfig,
        model: EabModel,
        chips: usize,
        total_slices: usize,
        llc_sets_per_chip: usize,
        sectored: bool,
    ) -> Self {
        SacController {
            config,
            model,
            state: SacState::Idle,
            collector: ProfileCollector::new(chips, total_slices, llc_sets_per_chip, sectored),
            kernel_start: 0,
            warmup_reset_done: false,
            history: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &SacConfig {
        &self.config
    }

    /// Current state.
    pub fn state(&self) -> SacState {
        self.state
    }

    /// The routing mode the LLC must use *right now*. Profiling, draining
    /// towards SM-side and flushing all still run memory-side; only
    /// `Running { SmSide }` (or draining back out of it) routes SM-side.
    pub fn mode(&self) -> LlcMode {
        match self.state {
            SacState::Running { mode } => mode,
            SacState::Draining { to: LlcMode::MemorySide } => LlcMode::SmSide,
            _ => LlcMode::MemorySide,
        }
    }

    /// Whether the profiling counters should be fed this cycle.
    pub fn is_profiling(&self) -> bool {
        matches!(self.state, SacState::Profiling { .. })
    }

    /// Mutable access to the profiling counters (the simulator feeds them).
    pub fn collector_mut(&mut self) -> &mut ProfileCollector {
        &mut self.collector
    }

    /// Start a new kernel at cycle `now`: reset the counters and enter the
    /// profiling window in the memory-side configuration.
    pub fn begin_kernel(&mut self, now: u64) {
        self.collector.reset();
        self.kernel_start = now;
        self.warmup_reset_done = false;
        self.state = SacState::Profiling {
            until: now + self.config.profile_window,
        };
    }

    /// Advance to cycle `now`. When the profiling window closes, the EAB
    /// decision is made and recorded; returns the new record at that
    /// instant.
    pub fn tick(&mut self, now: u64) -> Option<KernelRecord> {
        let SacState::Profiling { until } = self.state else {
            return None;
        };
        if now >= until
            && self.collector.total_requests() < self.config.min_samples
            && now < self.kernel_start + 8 * self.config.profile_window
        {
            // Not enough observations yet (drained or saturated machine):
            // extend the window rather than deciding on noise.
            self.state = SacState::Profiling {
                until: until + self.config.profile_window / 2,
            };
            return None;
        }
        let SacState::Profiling { until } = self.state else {
            unreachable!()
        };
        if now < until {
            // Midpoint warm-up reset: discard the cold-start counters so the
            // EAB inputs measure warm hit rates.
            if !self.warmup_reset_done && now + self.config.profile_window / 2 >= until {
                self.collector.reset_counters_only();
                self.warmup_reset_done = true;
            }
            return None;
        }
        let inputs = self.collector.inputs();
        let eab_mem = self.model.eab_memory_side(&inputs);
        let eab_sm = self.model.eab_sm_side(&inputs);
        let mode = self.model.decide(&inputs, self.config.theta);
        let record = KernelRecord {
            start_cycle: self.kernel_start,
            decision_cycle: now,
            inputs,
            eab_memory_side: eab_mem,
            eab_sm_side: eab_sm,
            mode,
            requests_observed: self.collector.total_requests(),
        };
        self.history.push(record);
        self.state = match mode {
            // Staying memory-side needs no reconfiguration at all.
            LlcMode::MemorySide => SacState::Running {
                mode: LlcMode::MemorySide,
            },
            LlcMode::SmSide => SacState::Draining { to: LlcMode::SmSide },
        };
        Some(record)
    }

    /// The simulator signals that all in-flight requests have completed.
    /// Returns `true` when an LLC flush must happen next (switching *into*
    /// SM-side); reverting to memory-side completes immediately.
    pub fn drain_complete(&mut self) -> bool {
        match self.state {
            SacState::Draining { to: LlcMode::SmSide } => {
                self.state = SacState::Flushing;
                true
            }
            SacState::Draining {
                to: LlcMode::MemorySide,
            } => {
                self.state = SacState::Running {
                    mode: LlcMode::MemorySide,
                };
                false
            }
            _ => false,
        }
    }

    /// The simulator signals that the LLC writeback/invalidate finished:
    /// the routing switches to SM-side.
    pub fn flush_complete(&mut self) {
        if self.state == SacState::Flushing {
            self.state = SacState::Running {
                mode: LlcMode::SmSide,
            };
        }
    }

    /// The running kernel terminated. If the LLC was SM-side, a drain back
    /// to memory-side begins (§3.6); otherwise the controller goes idle.
    /// Returns `true` when a revert drain is required.
    pub fn end_kernel(&mut self) -> bool {
        let needs_revert = matches!(
            self.state,
            SacState::Running {
                mode: LlcMode::SmSide
            } | SacState::Flushing
                | SacState::Draining { to: LlcMode::SmSide }
        );
        if needs_revert {
            self.state = SacState::Draining {
                to: LlcMode::MemorySide,
            };
        } else {
            self.state = SacState::Idle;
        }
        needs_revert
    }

    /// Per-kernel decision history.
    pub fn history(&self) -> &[KernelRecord] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eab::ArchBandwidth;
    use mcgpu_types::{ChipId, LineAddr};

    fn controller() -> SacController {
        let model = EabModel::new(ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        });
        let config = SacConfig {
            min_samples: 0, // tests feed small hand-built samples
            ..SacConfig::default()
        };
        SacController::new(config, model, 4, 64, 128, false)
    }

    /// Feed the collector a remote-heavy, high-reuse pattern that the EAB
    /// model should judge SM-side-favourable.
    fn feed_sm_side_friendly(c: &mut SacController) {
        for i in 0..400u64 {
            let requester = ChipId((i % 4) as u8);
            let home = ChipId(((i + 1) % 4) as u8); // always remote
            c.collector_mut().observe_request(
                requester,
                home,
                LineAddr(i % 16), // tiny hot set: CRD predicts high hit rate
                None,
                (home.index() * 16) as usize,
                (requester.index() * 16 + (i % 16) as usize) as usize,
            );
            c.collector_mut().observe_memside_llc(i % 2 == 0);
        }
    }

    #[test]
    fn full_sm_side_lifecycle() {
        let mut c = controller();
        c.begin_kernel(100);
        assert!(c.is_profiling());
        assert_eq!(c.mode(), LlcMode::MemorySide);
        feed_sm_side_friendly(&mut c);
        assert!(c.tick(500).is_none(), "window still open");
        let rec = c.tick(2100).expect("window closed");
        assert_eq!(rec.mode, LlcMode::SmSide);
        assert_eq!(c.state(), SacState::Draining { to: LlcMode::SmSide });
        // Still memory-side while draining + flushing.
        assert_eq!(c.mode(), LlcMode::MemorySide);
        assert!(c.drain_complete(), "switching to SM-side needs a flush");
        assert_eq!(c.state(), SacState::Flushing);
        c.flush_complete();
        assert_eq!(c.mode(), LlcMode::SmSide);
        // Kernel ends: revert drain back to memory-side.
        assert!(c.end_kernel());
        assert_eq!(c.mode(), LlcMode::SmSide, "still SM-side until drained");
        assert!(!c.drain_complete());
        assert_eq!(c.mode(), LlcMode::MemorySide);
    }

    #[test]
    fn memory_side_decision_needs_no_reconfiguration() {
        let mut c = controller();
        c.begin_kernel(0);
        // Mostly local traffic: memory-side and SM-side are equivalent, θ
        // keeps memory-side.
        for i in 0..100u64 {
            c.collector_mut().observe_request(
                ChipId(0),
                ChipId(0),
                LineAddr(i),
                None,
                (i % 64) as usize,
                (i % 64) as usize,
            );
            c.collector_mut().observe_memside_llc(true);
        }
        let rec = c.tick(2000).expect("decision");
        assert_eq!(rec.mode, LlcMode::MemorySide);
        assert_eq!(
            c.state(),
            SacState::Running {
                mode: LlcMode::MemorySide
            }
        );
        assert!(!c.end_kernel(), "no revert needed");
        assert_eq!(c.state(), SacState::Idle);
    }

    #[test]
    fn decision_fires_exactly_once() {
        let mut c = controller();
        c.begin_kernel(0);
        feed_sm_side_friendly(&mut c);
        assert!(c.tick(2000).is_some());
        assert!(c.tick(2001).is_none());
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn kernel_shorter_than_window() {
        let mut c = controller();
        c.begin_kernel(0);
        // Kernel ends mid-profiling: no decision recorded, state resets.
        assert!(!c.end_kernel());
        assert!(c.history().is_empty());
        c.begin_kernel(5000);
        assert!(c.is_profiling());
    }

    #[test]
    fn history_accumulates_per_kernel() {
        let mut c = controller();
        for k in 0..3 {
            c.begin_kernel(k * 10_000);
            feed_sm_side_friendly(&mut c);
            c.tick(k * 10_000 + 2000).expect("decision");
            if c.end_kernel() {
                c.drain_complete();
            }
        }
        assert_eq!(c.history().len(), 3);
        assert!(c.history().iter().all(|r| r.mode == LlcMode::SmSide));
    }
}
