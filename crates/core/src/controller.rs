//! The SAC runtime controller (§3.2, §3.5).
//!
//! Per kernel invocation:
//!
//! 1. start in the **memory-side** configuration and profile for a short
//!    window (2K cycles in the paper) while the counters and CRDs collect
//!    the EAB inputs;
//! 2. evaluate the EAB model; if `EAB_sm > (1 + θ) · EAB_mem` (θ = 5%),
//!    reconfigure to SM-side: wait for in-flight requests to drain, write
//!    back and invalidate dirty LLC lines, switch the NoC routing policy;
//! 3. at kernel termination, revert to memory-side (drain + switch).
//!
//! The controller is a pure state machine: the simulator drives it with
//! `tick`, feeds its [`ProfileCollector`], and signals
//! [`drain_complete`](SacController::drain_complete) /
//! [`flush_complete`](SacController::flush_complete) when the machine
//! reaches the corresponding quiescent points.

use crate::counters::ProfileCollector;
use crate::eab::{ArchBandwidth, EabInputs, EabModel};
use crate::LlcMode;

/// SAC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SacConfig {
    /// Profiling window length in cycles (paper: 2000).
    pub profile_window: u64,
    /// Decision threshold θ (paper: 0.05).
    pub theta: f64,
    /// Minimum L1-miss observations required before deciding; the window is
    /// extended in half-window steps (up to 8× the window) until reached.
    /// This guards against deciding from an empty sample when the machine
    /// is drained or saturated during the nominal window.
    pub min_samples: u64,
    /// Length in cycles of each post-decision progress-monitoring window
    /// (graceful degradation, §resilience). `0` disables monitoring.
    pub monitor_window: u64,
    /// A monitoring window counts as *slow* when its work rate falls below
    /// this fraction of the rate measured right after the decision. Two
    /// consecutive slow windows trigger a re-profile.
    pub divergence_threshold: f64,
    /// Maximum number of divergence-triggered re-decisions per kernel;
    /// prevents oscillation when the machine keeps degrading.
    pub max_redecisions: u32,
}

impl Default for SacConfig {
    fn default() -> Self {
        SacConfig {
            profile_window: 2000,
            theta: 0.05,
            min_samples: 1000,
            monitor_window: 16_384,
            divergence_threshold: 0.5,
            max_redecisions: 2,
        }
    }
}

impl SacConfig {
    /// Window sized for a scaled machine: access latencies (in cycles) do
    /// not scale with the machine, so the cold-start transient covers a
    /// larger share of a scaled machine's profiling window; we widen the
    /// window by the capacity/topology ratio to compensate.
    pub fn for_machine(cfg: &mcgpu_types::MachineConfig) -> Self {
        let stretch = (cfg.scale.capacity / cfg.scale.topology).max(1) as u64;
        SacConfig {
            profile_window: 1000 * stretch.max(2),
            ..SacConfig::default()
        }
    }
}

/// Controller state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SacState {
    /// No kernel is running.
    Idle,
    /// Memory-side profiling until the given cycle. The first half of the
    /// window warms the caches; the counters are reset at the midpoint so
    /// the measured rates reflect warm behaviour rather than cold misses.
    Profiling {
        /// Cycle at which the window ends.
        until: u64,
    },
    /// Waiting for in-flight requests to drain before switching to `to`.
    Draining {
        /// Target mode after the drain.
        to: LlcMode,
    },
    /// Writing back + invalidating dirty LLC lines before running SM-side.
    Flushing,
    /// Steady-state execution.
    Running {
        /// The active LLC mode.
        mode: LlcMode,
    },
}

/// Record of one kernel's profiling and decision (drives Fig. 12 and the
/// decision-quality analyses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRecord {
    /// Cycle the kernel began.
    pub start_cycle: u64,
    /// Cycle the decision was made (end of the profiling window).
    pub decision_cycle: u64,
    /// The collected EAB inputs.
    pub inputs: EabInputs,
    /// Predicted EAB of the memory-side configuration.
    pub eab_memory_side: f64,
    /// Predicted EAB of the SM-side configuration.
    pub eab_sm_side: f64,
    /// The chosen mode.
    pub mode: LlcMode,
    /// L1-miss requests observed during the measured half of the window.
    pub requests_observed: u64,
    /// `true` when the decision was a forced memory-side fallback because
    /// the extended profiling window still held too few samples to trust
    /// the EAB model.
    pub fallback: bool,
}

/// The per-kernel SAC reconfiguration state machine. See the
/// [module docs](self) for the protocol.
#[derive(Debug, Clone)]
pub struct SacController {
    config: SacConfig,
    model: EabModel,
    state: SacState,
    collector: ProfileCollector,
    kernel_start: u64,
    /// Anchor of the *current* profiling attempt (equals `kernel_start`
    /// for the first profile, the re-profile start for later ones); bounds
    /// the window-extension logic.
    profile_anchor: u64,
    warmup_reset_done: bool,
    history: Vec<KernelRecord>,
    /// Progress monitor: start of the current monitoring window as
    /// `(cycle, work)`, if one is open.
    monitor_start: Option<(u64, u64)>,
    /// Work rate measured in the first window after the decision.
    baseline_rate: Option<f64>,
    /// Consecutive windows below the divergence threshold.
    slow_windows: u32,
    /// Divergence-triggered re-decisions taken for the current kernel.
    redecisions: u32,
    /// Re-enter profiling (rather than idle running) once the revert drain
    /// out of SM-side completes.
    reprofile_after_drain: bool,
}

impl SacController {
    /// Create a controller for a machine with `chips` chips,
    /// `total_slices` LLC slices and per-chip LLCs of `llc_sets_per_chip`
    /// sets; `sectored` selects the sectored CRD layout.
    pub fn new(
        config: SacConfig,
        model: EabModel,
        chips: usize,
        total_slices: usize,
        llc_sets_per_chip: usize,
        sectored: bool,
    ) -> Self {
        SacController {
            config,
            model,
            state: SacState::Idle,
            collector: ProfileCollector::new(chips, total_slices, llc_sets_per_chip, sectored),
            kernel_start: 0,
            profile_anchor: 0,
            warmup_reset_done: false,
            history: Vec::new(),
            monitor_start: None,
            baseline_rate: None,
            slow_windows: 0,
            redecisions: 0,
            reprofile_after_drain: false,
        }
    }

    /// Replace the EAB model's architectural bandwidths. The simulator
    /// calls this when injected faults change the machine's effective
    /// bandwidth, so later decisions reason about the degraded machine
    /// rather than the nominal one.
    pub fn update_arch(&mut self, arch: ArchBandwidth) {
        self.model = EabModel::new(arch);
    }

    /// The controller's configuration.
    pub fn config(&self) -> &SacConfig {
        &self.config
    }

    /// Current state.
    pub fn state(&self) -> SacState {
        self.state
    }

    /// The routing mode the LLC must use *right now*. Profiling, draining
    /// towards SM-side and flushing all still run memory-side; only
    /// `Running { SmSide }` (or draining back out of it) routes SM-side.
    pub fn mode(&self) -> LlcMode {
        match self.state {
            SacState::Running { mode } => mode,
            SacState::Draining {
                to: LlcMode::MemorySide,
            } => LlcMode::SmSide,
            _ => LlcMode::MemorySide,
        }
    }

    /// Whether the profiling counters should be fed this cycle.
    pub fn is_profiling(&self) -> bool {
        matches!(self.state, SacState::Profiling { .. })
    }

    /// The next absolute cycle (strictly after `now`) at which
    /// [`tick`](SacController::tick) or
    /// [`observe_progress`](SacController::observe_progress) can mutate
    /// controller state, assuming a fully quiescent machine until then.
    /// `u64::MAX` means "never while quiescent". Conservative by design:
    /// any uncertainty collapses to `now + 1`, which disables the engine's
    /// idle-cycle skip for that cycle rather than risking a divergence
    /// from the stepped loop.
    pub fn next_event(&self, now: u64) -> u64 {
        let clamp = |c: u64| if c > now { c } else { now + 1 };
        // `tick` acts only in the profiling state: at the midpoint warm-up
        // reset (the first cycle with `now + window/2 >= until`) and at the
        // window close (`now >= until`, deciding or extending).
        let tick_event = match self.state {
            SacState::Idle | SacState::Running { .. } => u64::MAX,
            SacState::Profiling { until } => {
                let midpoint = until.saturating_sub(self.config.profile_window / 2);
                if self.warmup_reset_done {
                    clamp(until)
                } else {
                    clamp(midpoint.min(until))
                }
            }
            // Drain/flush transitions gate on quiescence, which the pause
            // state machine reaches within a cycle of the skip precondition
            // holding — never skip across them.
            SacState::Draining { .. } | SacState::Flushing => now + 1,
        };
        // `observe_progress` mutates `monitor_start` whenever it is armed
        // (or needs arming/clearing); its decision point is one monitor
        // window after the armed start cycle.
        let monitor_event = if self.config.monitor_window == 0 {
            u64::MAX
        } else if let SacState::Running { .. } = self.state {
            match self.monitor_start {
                None => now + 1,
                Some((start, _)) => clamp(start + self.config.monitor_window),
            }
        } else if self.monitor_start.is_some() {
            now + 1
        } else {
            u64::MAX
        };
        tick_event.min(monitor_event)
    }

    /// Mutable access to the profiling counters (the simulator feeds them).
    pub fn collector_mut(&mut self) -> &mut ProfileCollector {
        &mut self.collector
    }

    /// Read-only access to the profiling counters (observability taps).
    pub fn collector(&self) -> &ProfileCollector {
        &self.collector
    }

    /// Diagnostic label of the current state.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            SacState::Idle => "idle",
            SacState::Profiling { .. } => "profiling",
            SacState::Draining {
                to: LlcMode::SmSide,
            } => "draining-to-sm-side",
            SacState::Draining {
                to: LlcMode::MemorySide,
            } => "draining-to-memory-side",
            SacState::Flushing => "flushing",
            SacState::Running {
                mode: LlcMode::MemorySide,
            } => "running-memory-side",
            SacState::Running {
                mode: LlcMode::SmSide,
            } => "running-sm-side",
        }
    }

    /// Start a new kernel at cycle `now`: reset the counters and enter the
    /// profiling window in the memory-side configuration.
    pub fn begin_kernel(&mut self, now: u64) {
        self.collector.reset();
        self.kernel_start = now;
        self.profile_anchor = now;
        self.warmup_reset_done = false;
        self.monitor_start = None;
        self.baseline_rate = None;
        self.slow_windows = 0;
        self.redecisions = 0;
        self.reprofile_after_drain = false;
        self.state = SacState::Profiling {
            until: now + self.config.profile_window,
        };
    }

    /// Discard the running decision and profile again from `now` — the
    /// graceful-degradation path taken when observed progress diverges from
    /// the profiled expectation. Requires the machine to already be routing
    /// memory-side (profiling is defined in that configuration).
    fn enter_reprofile(&mut self, now: u64) {
        self.collector.reset();
        self.profile_anchor = now;
        self.warmup_reset_done = false;
        self.monitor_start = None;
        self.baseline_rate = None;
        self.slow_windows = 0;
        self.state = SacState::Profiling {
            until: now + self.config.profile_window,
        };
    }

    /// Feed the progress monitor: `work` is a monotonic count of completed
    /// requests. Returns `true` when the controller needs the simulator to
    /// drain in-flight requests (divergence detected while running
    /// SM-side); the simulator must then pause issue and signal
    /// [`drain_complete`](SacController::drain_complete) at quiescence.
    ///
    /// While running memory-side, a detected divergence re-enters profiling
    /// directly (no reconfiguration needed) and `false` is returned.
    pub fn observe_progress(&mut self, now: u64, work: u64) -> bool {
        if self.config.monitor_window == 0 {
            return false;
        }
        let SacState::Running { mode } = self.state else {
            self.monitor_start = None;
            return false;
        };
        let Some((start_cycle, start_work)) = self.monitor_start else {
            self.monitor_start = Some((now, work));
            return false;
        };
        if now - start_cycle < self.config.monitor_window {
            return false;
        }
        let rate = work.saturating_sub(start_work) as f64 / (now - start_cycle) as f64;
        self.monitor_start = Some((now, work));
        let Some(base) = self.baseline_rate else {
            self.baseline_rate = Some(rate);
            return false;
        };
        if rate >= self.config.divergence_threshold * base {
            self.slow_windows = 0;
            if rate > base {
                // The machine got faster than the post-decision baseline
                // (e.g. warm caches): raise the bar so later degradation is
                // still detected.
                self.baseline_rate = Some(rate);
            }
            return false;
        }
        self.slow_windows += 1;
        if self.slow_windows < 2 || self.redecisions >= self.config.max_redecisions {
            return false;
        }
        self.redecisions += 1;
        self.slow_windows = 0;
        match mode {
            LlcMode::MemorySide => {
                self.enter_reprofile(now);
                false
            }
            LlcMode::SmSide => {
                // Must revert to memory-side before profiling: drain, then
                // re-enter profiling from drain_complete.
                self.reprofile_after_drain = true;
                self.state = SacState::Draining {
                    to: LlcMode::MemorySide,
                };
                true
            }
        }
    }

    /// Advance to cycle `now`. When the profiling window closes, the EAB
    /// decision is made and recorded; returns the new record at that
    /// instant.
    pub fn tick(&mut self, now: u64) -> Option<KernelRecord> {
        let SacState::Profiling { until } = self.state else {
            return None;
        };
        if now >= until
            && self.collector.total_requests() < self.config.min_samples
            && now < self.profile_anchor + 8 * self.config.profile_window
        {
            // Not enough observations yet (drained or saturated machine):
            // extend the window rather than deciding on noise.
            self.state = SacState::Profiling {
                until: until + self.config.profile_window / 2,
            };
            return None;
        }
        let SacState::Profiling { until } = self.state else {
            unreachable!()
        };
        if now < until {
            // Midpoint warm-up reset: discard the cold-start counters so the
            // EAB inputs measure warm hit rates.
            if !self.warmup_reset_done && now + self.config.profile_window / 2 >= until {
                self.collector.reset_counters_only();
                self.warmup_reset_done = true;
            }
            return None;
        }
        let inputs = self.collector.inputs();
        let eab_mem = self.model.eab_memory_side(&inputs);
        let eab_sm = self.model.eab_sm_side(&inputs);
        // Even the extended window can close with too few observations (a
        // machine wedged by faults, or a kernel with almost no L1 misses).
        // The EAB inputs are then noise: fall back to memory-side, the
        // configuration every other state is reached from, instead of
        // trusting the model.
        let fallback = self.collector.total_requests() < self.config.min_samples;
        let mode = if fallback {
            LlcMode::MemorySide
        } else {
            self.model.decide(&inputs, self.config.theta)
        };
        let record = KernelRecord {
            start_cycle: self.kernel_start,
            decision_cycle: now,
            inputs,
            eab_memory_side: eab_mem,
            eab_sm_side: eab_sm,
            mode,
            requests_observed: self.collector.total_requests(),
            fallback,
        };
        self.history.push(record);
        self.state = match mode {
            // Staying memory-side needs no reconfiguration at all.
            LlcMode::MemorySide => SacState::Running {
                mode: LlcMode::MemorySide,
            },
            LlcMode::SmSide => SacState::Draining {
                to: LlcMode::SmSide,
            },
        };
        Some(record)
    }

    /// The simulator signals at cycle `now` that all in-flight requests
    /// have completed. Returns `true` when an LLC flush must happen next
    /// (switching *into* SM-side); reverting to memory-side completes
    /// immediately — into steady running, or back into profiling when the
    /// drain was triggered by the divergence monitor.
    pub fn drain_complete(&mut self, now: u64) -> bool {
        match self.state {
            SacState::Draining {
                to: LlcMode::SmSide,
            } => {
                self.state = SacState::Flushing;
                true
            }
            SacState::Draining {
                to: LlcMode::MemorySide,
            } => {
                if self.reprofile_after_drain {
                    self.reprofile_after_drain = false;
                    self.enter_reprofile(now);
                } else {
                    self.state = SacState::Running {
                        mode: LlcMode::MemorySide,
                    };
                }
                false
            }
            _ => false,
        }
    }

    /// The simulator signals that the LLC writeback/invalidate finished:
    /// the routing switches to SM-side.
    pub fn flush_complete(&mut self) {
        if self.state == SacState::Flushing {
            self.state = SacState::Running {
                mode: LlcMode::SmSide,
            };
        }
    }

    /// The running kernel terminated. If the LLC was SM-side, a drain back
    /// to memory-side begins (§3.6); otherwise the controller goes idle.
    /// Returns `true` when a revert drain is required.
    pub fn end_kernel(&mut self) -> bool {
        let needs_revert = matches!(
            self.state,
            SacState::Running {
                mode: LlcMode::SmSide
            } | SacState::Flushing
                | SacState::Draining {
                    to: LlcMode::SmSide
                }
        );
        if needs_revert {
            self.state = SacState::Draining {
                to: LlcMode::MemorySide,
            };
        } else {
            self.state = SacState::Idle;
        }
        // The kernel is over: any pending divergence reaction dies with it.
        self.reprofile_after_drain = false;
        self.monitor_start = None;
        self.baseline_rate = None;
        self.slow_windows = 0;
        needs_revert
    }

    /// Per-kernel decision history.
    pub fn history(&self) -> &[KernelRecord] {
        &self.history
    }

    /// Serialize the full controller state (config, EAB model, state
    /// machine, counters, decision history, progress monitor) into a
    /// checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.config.profile_window);
        e.put_f64(self.config.theta);
        e.put_u64(self.config.min_samples);
        e.put_u64(self.config.monitor_window);
        e.put_f64(self.config.divergence_threshold);
        e.put_u32(self.config.max_redecisions);
        let a = self.model.arch();
        e.put_f64(a.b_intra);
        e.put_f64(a.b_inter);
        e.put_f64(a.b_llc);
        e.put_f64(a.b_mem);
        save_state(e, self.state);
        self.collector.save(e);
        e.put_u64(self.kernel_start);
        e.put_u64(self.profile_anchor);
        e.put_bool(self.warmup_reset_done);
        e.put_seq_len(self.history.len());
        for r in &self.history {
            e.put_u64(r.start_cycle);
            e.put_u64(r.decision_cycle);
            save_inputs(e, &r.inputs);
            e.put_f64(r.eab_memory_side);
            e.put_f64(r.eab_sm_side);
            save_mode(e, r.mode);
            e.put_u64(r.requests_observed);
            e.put_bool(r.fallback);
        }
        match self.monitor_start {
            None => e.put_bool(false),
            Some((cycle, work)) => {
                e.put_bool(true);
                e.put_u64(cycle);
                e.put_u64(work);
            }
        }
        match self.baseline_rate {
            None => e.put_bool(false),
            Some(rate) => {
                e.put_bool(true);
                e.put_f64(rate);
            }
        }
        e.put_u32(self.slow_windows);
        e.put_u32(self.redecisions);
        e.put_bool(self.reprofile_after_drain);
    }

    /// Deserialize a controller saved by [`SacController::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let config = SacConfig {
            profile_window: d.get_u64()?,
            theta: d.get_f64()?,
            min_samples: d.get_u64()?,
            monitor_window: d.get_u64()?,
            divergence_threshold: d.get_f64()?,
            max_redecisions: d.get_u32()?,
        };
        let model = EabModel::new(ArchBandwidth {
            b_intra: d.get_f64()?,
            b_inter: d.get_f64()?,
            b_llc: d.get_f64()?,
            b_mem: d.get_f64()?,
        });
        let state = load_state(d)?;
        let collector = ProfileCollector::load(d)?;
        let kernel_start = d.get_u64()?;
        let profile_anchor = d.get_u64()?;
        let warmup_reset_done = d.get_bool()?;
        let n = d.get_seq_len()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push(KernelRecord {
                start_cycle: d.get_u64()?,
                decision_cycle: d.get_u64()?,
                inputs: load_inputs(d)?,
                eab_memory_side: d.get_f64()?,
                eab_sm_side: d.get_f64()?,
                mode: load_mode(d)?,
                requests_observed: d.get_u64()?,
                fallback: d.get_bool()?,
            });
        }
        let monitor_start = if d.get_bool()? {
            Some((d.get_u64()?, d.get_u64()?))
        } else {
            None
        };
        let baseline_rate = if d.get_bool()? {
            Some(d.get_f64()?)
        } else {
            None
        };
        Ok(SacController {
            config,
            model,
            state,
            collector,
            kernel_start,
            profile_anchor,
            warmup_reset_done,
            history,
            monitor_start,
            baseline_rate,
            slow_windows: d.get_u32()?,
            redecisions: d.get_u32()?,
            reprofile_after_drain: d.get_bool()?,
        })
    }
}

/// Encode an [`LlcMode`] as a one-byte checkpoint tag.
pub fn save_mode(e: &mut mcgpu_types::Enc, mode: LlcMode) {
    e.put_u8(match mode {
        LlcMode::MemorySide => 0,
        LlcMode::SmSide => 1,
    });
}

/// Decode an [`LlcMode`] saved by [`save_mode`].
pub fn load_mode(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<LlcMode> {
    match d.get_u8()? {
        0 => Ok(LlcMode::MemorySide),
        1 => Ok(LlcMode::SmSide),
        t => Err(mcgpu_types::CkptError::Decode(format!(
            "invalid LlcMode tag {t}"
        ))),
    }
}

fn save_state(e: &mut mcgpu_types::Enc, state: SacState) {
    match state {
        SacState::Idle => e.put_u8(0),
        SacState::Profiling { until } => {
            e.put_u8(1);
            e.put_u64(until);
        }
        SacState::Draining { to } => {
            e.put_u8(2);
            save_mode(e, to);
        }
        SacState::Flushing => e.put_u8(3),
        SacState::Running { mode } => {
            e.put_u8(4);
            save_mode(e, mode);
        }
    }
}

fn load_state(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<SacState> {
    Ok(match d.get_u8()? {
        0 => SacState::Idle,
        1 => SacState::Profiling {
            until: d.get_u64()?,
        },
        2 => SacState::Draining { to: load_mode(d)? },
        3 => SacState::Flushing,
        4 => SacState::Running {
            mode: load_mode(d)?,
        },
        t => {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "invalid SacState tag {t}"
            )));
        }
    })
}

fn save_inputs(e: &mut mcgpu_types::Enc, i: &EabInputs) {
    e.put_f64(i.r_local);
    e.put_f64(i.llc_hit_memory_side);
    e.put_f64(i.llc_hit_sm_side);
    e.put_f64(i.lsu_memory_side);
    e.put_f64(i.lsu_sm_side);
}

fn load_inputs(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<EabInputs> {
    Ok(EabInputs {
        r_local: d.get_f64()?,
        llc_hit_memory_side: d.get_f64()?,
        llc_hit_sm_side: d.get_f64()?,
        lsu_memory_side: d.get_f64()?,
        lsu_sm_side: d.get_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eab::ArchBandwidth;
    use mcgpu_types::{ChipId, LineAddr};

    fn controller() -> SacController {
        let model = EabModel::new(ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        });
        let config = SacConfig {
            min_samples: 0, // tests feed small hand-built samples
            ..SacConfig::default()
        };
        SacController::new(config, model, 4, 64, 128, false)
    }

    /// Feed the collector a remote-heavy, high-reuse pattern that the EAB
    /// model should judge SM-side-favourable.
    fn feed_sm_side_friendly(c: &mut SacController) {
        for i in 0..400u64 {
            let requester = ChipId((i % 4) as u8);
            let home = ChipId(((i + 1) % 4) as u8); // always remote
            c.collector_mut().observe_request(
                requester,
                home,
                LineAddr(i % 16), // tiny hot set: CRD predicts high hit rate
                None,
                home.index() * 16,
                requester.index() * 16 + (i % 16) as usize,
            );
            c.collector_mut().observe_memside_llc(i % 2 == 0);
        }
    }

    #[test]
    fn full_sm_side_lifecycle() {
        let mut c = controller();
        c.begin_kernel(100);
        assert!(c.is_profiling());
        assert_eq!(c.mode(), LlcMode::MemorySide);
        feed_sm_side_friendly(&mut c);
        assert!(c.tick(500).is_none(), "window still open");
        let rec = c.tick(2100).expect("window closed");
        assert_eq!(rec.mode, LlcMode::SmSide);
        assert_eq!(
            c.state(),
            SacState::Draining {
                to: LlcMode::SmSide
            }
        );
        // Still memory-side while draining + flushing.
        assert_eq!(c.mode(), LlcMode::MemorySide);
        assert!(c.drain_complete(2200), "switching to SM-side needs a flush");
        assert_eq!(c.state(), SacState::Flushing);
        c.flush_complete();
        assert_eq!(c.mode(), LlcMode::SmSide);
        // Kernel ends: revert drain back to memory-side.
        assert!(c.end_kernel());
        assert_eq!(c.mode(), LlcMode::SmSide, "still SM-side until drained");
        assert!(!c.drain_complete(9000));
        assert_eq!(c.mode(), LlcMode::MemorySide);
    }

    #[test]
    fn memory_side_decision_needs_no_reconfiguration() {
        let mut c = controller();
        c.begin_kernel(0);
        // Mostly local traffic: memory-side and SM-side are equivalent, θ
        // keeps memory-side.
        for i in 0..100u64 {
            c.collector_mut().observe_request(
                ChipId(0),
                ChipId(0),
                LineAddr(i),
                None,
                (i % 64) as usize,
                (i % 64) as usize,
            );
            c.collector_mut().observe_memside_llc(true);
        }
        let rec = c.tick(2000).expect("decision");
        assert_eq!(rec.mode, LlcMode::MemorySide);
        assert_eq!(
            c.state(),
            SacState::Running {
                mode: LlcMode::MemorySide
            }
        );
        assert!(!c.end_kernel(), "no revert needed");
        assert_eq!(c.state(), SacState::Idle);
    }

    #[test]
    fn decision_fires_exactly_once() {
        let mut c = controller();
        c.begin_kernel(0);
        feed_sm_side_friendly(&mut c);
        assert!(c.tick(2000).is_some());
        assert!(c.tick(2001).is_none());
        assert_eq!(c.history().len(), 1);
    }

    #[test]
    fn kernel_shorter_than_window() {
        let mut c = controller();
        c.begin_kernel(0);
        // Kernel ends mid-profiling: no decision recorded, state resets.
        assert!(!c.end_kernel());
        assert!(c.history().is_empty());
        c.begin_kernel(5000);
        assert!(c.is_profiling());
    }

    #[test]
    fn history_accumulates_per_kernel() {
        let mut c = controller();
        for k in 0..3 {
            c.begin_kernel(k * 10_000);
            feed_sm_side_friendly(&mut c);
            c.tick(k * 10_000 + 2000).expect("decision");
            if c.end_kernel() {
                c.drain_complete(k * 10_000 + 3000);
            }
        }
        assert_eq!(c.history().len(), 3);
        assert!(c.history().iter().all(|r| r.mode == LlcMode::SmSide));
    }

    /// Drive the monitor through windows at the given per-window work
    /// rates, starting at `start`; returns `(cycle after the last window,
    /// whether any observation requested a drain)`.
    fn feed_windows(c: &mut SacController, start: u64, rates: &[u64]) -> (u64, bool) {
        let w = c.config().monitor_window;
        let mut now = start;
        let mut work = 0;
        let mut drain = c.observe_progress(now, work); // opens the first window
        for &r in rates {
            now += w;
            work += r * w;
            drain |= c.observe_progress(now, work);
        }
        (now, drain)
    }

    #[test]
    fn sustained_divergence_reenters_profiling_from_memory_side() {
        let mut c = controller();
        c.begin_kernel(0);
        // Local traffic: decision is memory-side.
        for i in 0..100u64 {
            c.collector_mut().observe_request(
                ChipId(0),
                ChipId(0),
                LineAddr(i),
                None,
                (i % 64) as usize,
                (i % 64) as usize,
            );
            c.collector_mut().observe_memside_llc(true);
        }
        c.tick(2000).expect("decision");
        // Baseline window at 10 work/cycle, then a sustained collapse to 1.
        let (now, drain) = feed_windows(&mut c, 2000, &[10, 10, 1, 1]);
        assert!(!drain, "memory-side re-profile needs no drain");
        assert_eq!(
            c.state(),
            SacState::Profiling {
                until: now + c.config().profile_window
            }
        );
        assert_eq!(
            c.history().len(),
            1,
            "no new decision until the window closes"
        );
    }

    #[test]
    fn divergence_while_sm_side_requests_drain_then_reprofiles() {
        let mut c = controller();
        c.begin_kernel(0);
        feed_sm_side_friendly(&mut c);
        c.tick(2000).expect("decision");
        c.drain_complete(2100);
        c.flush_complete();
        assert_eq!(c.mode(), LlcMode::SmSide);
        let (now, drain) = feed_windows(&mut c, 2200, &[10, 10, 1, 1]);
        assert!(drain, "leaving SM-side requires a drain");
        assert_eq!(
            c.state(),
            SacState::Draining {
                to: LlcMode::MemorySide
            }
        );
        assert_eq!(c.mode(), LlcMode::SmSide, "still SM-side until drained");
        assert!(!c.drain_complete(now + 500), "revert needs no flush");
        assert!(c.is_profiling(), "drain completion re-enters profiling");
        assert_eq!(c.mode(), LlcMode::MemorySide);
    }

    #[test]
    fn transient_slowdowns_do_not_trigger_reprofiling() {
        let mut c = controller();
        c.begin_kernel(0);
        feed_sm_side_friendly(&mut c);
        c.tick(2000).expect("decision");
        c.drain_complete(2100);
        c.flush_complete();
        // Single slow windows separated by recoveries: never two in a row.
        let (_, drain) = feed_windows(&mut c, 2200, &[10, 1, 10, 1, 10, 1, 10]);
        assert!(!drain);
        assert_eq!(
            c.state(),
            SacState::Running {
                mode: LlcMode::SmSide
            }
        );
    }

    #[test]
    fn redecisions_are_bounded_per_kernel() {
        let mut c = controller();
        c.begin_kernel(0);
        for i in 0..100u64 {
            c.collector_mut().observe_request(
                ChipId(0),
                ChipId(0),
                LineAddr(i),
                None,
                (i % 64) as usize,
                (i % 64) as usize,
            );
            c.collector_mut().observe_memside_llc(true);
        }
        let max = c.config().max_redecisions;
        let mut now = c.tick(2000).expect("decision").decision_cycle;
        for round in 0..max + 2 {
            let (end, _) = feed_windows(&mut c, now, &[10, 10, 1, 1]);
            now = end;
            if round < max {
                assert!(c.is_profiling(), "redecision {round} should re-profile");
                // Close the re-profile window with the same local pattern.
                for i in 0..100u64 {
                    c.collector_mut().observe_request(
                        ChipId(0),
                        ChipId(0),
                        LineAddr(i),
                        None,
                        (i % 64) as usize,
                        (i % 64) as usize,
                    );
                    c.collector_mut().observe_memside_llc(true);
                }
                now += c.config().profile_window;
                c.tick(now).expect("redecision");
            } else {
                assert!(
                    matches!(c.state(), SacState::Running { .. }),
                    "round {round}: redecision budget exhausted, keep running"
                );
            }
        }
        assert_eq!(c.history().len(), (max + 1) as usize);
    }

    #[test]
    fn insufficient_samples_fall_back_to_memory_side() {
        let model = EabModel::new(ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        });
        let config = SacConfig {
            min_samples: 1000,
            ..SacConfig::default()
        };
        let mut c = SacController::new(config, model, 4, 64, 128, false);
        c.begin_kernel(0);
        // A strongly SM-side-friendly but tiny sample: far below
        // min_samples even at the 8x-extended window.
        for i in 0..10u64 {
            let requester = ChipId((i % 4) as u8);
            let home = ChipId(((i + 1) % 4) as u8);
            c.collector_mut().observe_request(
                requester,
                home,
                LineAddr(i % 4),
                None,
                home.index() * 16,
                requester.index() * 16,
            );
            c.collector_mut().observe_memside_llc(true);
        }
        assert!(c.tick(2000).is_none(), "window extends, no decision yet");
        let rec = c
            .tick(8 * c.config().profile_window)
            .expect("extension cap forces a decision");
        assert!(rec.fallback);
        assert_eq!(rec.mode, LlcMode::MemorySide);
        assert_eq!(
            c.state(),
            SacState::Running {
                mode: LlcMode::MemorySide
            }
        );
    }

    #[test]
    fn update_arch_changes_later_decisions() {
        let mut c = controller();
        c.begin_kernel(0);
        feed_sm_side_friendly(&mut c);
        assert_eq!(c.tick(2000).expect("decision").mode, LlcMode::SmSide);
        c.end_kernel();
        c.drain_complete(2500);
        // The SM-side EAB is bounded by the intra-chip NoC end to end
        // (Table 1): collapse it and the same profile must now decide
        // memory-side, proving later decisions use the updated model.
        c.update_arch(ArchBandwidth {
            b_intra: 8.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        });
        c.begin_kernel(10_000);
        feed_sm_side_friendly(&mut c);
        assert_eq!(
            c.tick(12_000).expect("decision").mode,
            LlcMode::MemorySide,
            "a degraded machine flips the decision"
        );
    }

    #[test]
    fn degraded_links_strengthen_sm_side_preference() {
        // Fault-model sanity: memory-side remote traffic is capped by
        // B_inter outright, while SM-side replication only pays B_inter on
        // misses — so a degraded link widens the SM-side margin.
        let base = ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        };
        let degraded = ArchBandwidth {
            b_inter: 192.0 * 0.1,
            ..base
        };
        let i = EabInputs {
            r_local: 0.3,
            llc_hit_memory_side: 0.6,
            llc_hit_sm_side: 0.6,
            lsu_memory_side: 0.6,
            lsu_sm_side: 0.95,
        };
        let margin = |m: &EabModel| m.eab_sm_side(&i) / m.eab_memory_side(&i);
        let healthy = margin(&EabModel::new(base));
        let broken = margin(&EabModel::new(degraded));
        assert!(broken > healthy, "degradation widens the SM-side margin");
    }
}
