//! The profiling performance counters (§3.4, Fig. 7).
//!
//! SAC's hardware counters collect the workload-dependent EAB inputs during
//! the profiling window: per-slice request counters for both configurations
//! (→ LSU), total/local request counters (→ `R_local`), the existing LLC
//! hit counters (→ memory-side hit rate) and the [`Crd`] (→ predicted
//! SM-side hit rate). [`ProfileCollector`] aggregates all of them and emits
//! the [`EabInputs`].

use crate::crd::Crd;
use crate::eab::EabInputs;
use mcgpu_types::{ChipId, LineAddr, SectorId};

/// LLC Slice Uniformity (§3.3):
/// `LSU = (1/N) Σ_i R_i / max_j R_j` — 1.0 for a uniform distribution,
/// `1/N` when all requests hit a single slice, and 1.0 (by convention) when
/// there are no requests at all.
pub fn lsu(slice_requests: &[u64]) -> f64 {
    let n = slice_requests.len();
    if n == 0 {
        return 1.0;
    }
    let max = *slice_requests.iter().max().expect("non-empty");
    if max == 0 {
        return 1.0;
    }
    let sum: u64 = slice_requests.iter().sum();
    sum as f64 / (max as f64 * n as f64)
}

/// Aggregates the profiling-window counters of all chips and produces the
/// EAB model inputs.
///
/// The caller (the simulator's SAC runtime) feeds it one event per L1 miss
/// observed while running the memory-side configuration:
/// [`observe_request`](ProfileCollector::observe_request) with the flat
/// slice indices the request maps to under each configuration, and
/// [`observe_memside_llc`](ProfileCollector::observe_memside_llc) with the
/// actual memory-side LLC lookup outcome.
#[derive(Debug, Clone)]
pub struct ProfileCollector {
    crds: Vec<Crd>,
    mem_side_slices: Vec<u64>,
    sm_side_slices: Vec<u64>,
    total_requests: u64,
    local_requests: u64,
    memside_accesses: u64,
    memside_hits: u64,
}

impl ProfileCollector {
    /// Create a collector for `chips` chips with `total_slices` LLC slices
    /// machine-wide, each per-chip LLC having `llc_sets_per_chip` sets
    /// (for CRD set sampling). `sectored` selects the larger CRD blocks.
    pub fn new(
        chips: usize,
        total_slices: usize,
        llc_sets_per_chip: usize,
        sectored: bool,
    ) -> Self {
        ProfileCollector {
            crds: (0..chips)
                .map(|_| Crd::for_chips(chips, llc_sets_per_chip, sectored))
                .collect(),
            mem_side_slices: vec![0; total_slices],
            sm_side_slices: vec![0; total_slices],
            total_requests: 0,
            local_requests: 0,
            memside_accesses: 0,
            memside_hits: 0,
        }
    }

    /// Record one L1-miss request during profiling.
    ///
    /// * `requester` / `home` — the requesting chip and the page's home chip;
    /// * `line` / `sector` — the accessed line (drives the home chip's CRD);
    /// * `mem_side_slice` — flat index of the slice the request maps to
    ///   under the memory-side configuration (a slice of `home`);
    /// * `sm_side_slice` — flat index under the SM-side configuration
    ///   (a slice of `requester`).
    pub fn observe_request(
        &mut self,
        requester: ChipId,
        home: ChipId,
        line: LineAddr,
        sector: Option<SectorId>,
        mem_side_slice: usize,
        sm_side_slice: usize,
    ) {
        self.total_requests += 1;
        if requester == home {
            self.local_requests += 1;
        }
        self.mem_side_slices[mem_side_slice] += 1;
        self.sm_side_slices[sm_side_slice] += 1;
        self.crds[home.index()].observe(line, sector, requester);
    }

    /// Record the outcome of one actual memory-side LLC lookup.
    pub fn observe_memside_llc(&mut self, hit: bool) {
        self.memside_accesses += 1;
        if hit {
            self.memside_hits += 1;
        }
    }

    /// Requests observed so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// CRD occupancy across all chips as `(valid blocks, block capacity)`
    /// (observability gauge).
    pub fn crd_occupancy(&self) -> (u64, u64) {
        self.crds.iter().fold((0, 0), |(o, c), crd| {
            (o + crd.occupied(), c + crd.capacity())
        })
    }

    /// The aggregated EAB inputs for the window so far.
    pub fn inputs(&self) -> EabInputs {
        let r_local = if self.total_requests == 0 {
            1.0
        } else {
            self.local_requests as f64 / self.total_requests as f64
        };
        let hit_mem = if self.memside_accesses == 0 {
            0.0
        } else {
            self.memside_hits as f64 / self.memside_accesses as f64
        };
        // Weight each chip's CRD prediction by its sampled request count.
        let (mut hits, mut reqs) = (0u64, 0u64);
        for crd in &self.crds {
            hits += crd.hits();
            reqs += crd.requests();
        }
        let hit_sm = if reqs == 0 {
            hit_mem
        } else {
            hits as f64 / reqs as f64
        };
        EabInputs {
            r_local,
            llc_hit_memory_side: hit_mem,
            llc_hit_sm_side: hit_sm,
            lsu_memory_side: lsu(&self.mem_side_slices),
            lsu_sm_side: lsu(&self.sm_side_slices),
        }
        .clamped()
    }

    /// Total counter + CRD storage in bytes per chip (§3.6).
    pub fn storage_bytes_per_chip(&self) -> usize {
        let slices_per_chip = self.mem_side_slices.len() / self.crds.len().max(1);
        crate::overhead::HardwareOverhead::new(self.crds[0].storage_bytes(), slices_per_chip)
            .total_bytes()
    }

    /// Reset the rate counters but keep the CRD directory contents warm:
    /// used at the profiling window's midpoint so both the measured
    /// memory-side hit rate and the CRD's predicted SM-side hit rate
    /// reflect warm caches.
    pub fn reset_counters_only(&mut self) {
        for crd in &mut self.crds {
            crd.reset_counters();
        }
        self.mem_side_slices.fill(0);
        self.sm_side_slices.fill(0);
        self.total_requests = 0;
        self.local_requests = 0;
        self.memside_accesses = 0;
        self.memside_hits = 0;
    }

    /// Reset all counters and CRDs (new profiling window).
    pub fn reset(&mut self) {
        for crd in &mut self.crds {
            crd.reset();
        }
        self.mem_side_slices.fill(0);
        self.sm_side_slices.fill(0);
        self.total_requests = 0;
        self.local_requests = 0;
        self.memside_accesses = 0;
        self.memside_hits = 0;
    }

    /// Serialize the full collector state (CRDs included) into a
    /// checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.crds.len());
        for crd in &self.crds {
            crd.save(e);
        }
        for counters in [&self.mem_side_slices, &self.sm_side_slices] {
            e.put_seq_len(counters.len());
            for &c in counters {
                e.put_u64(c);
            }
        }
        e.put_u64(self.total_requests);
        e.put_u64(self.local_requests);
        e.put_u64(self.memside_accesses);
        e.put_u64(self.memside_hits);
    }

    /// Deserialize a collector saved by [`ProfileCollector::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let n = d.get_seq_len()?;
        let mut crds = Vec::with_capacity(n);
        for _ in 0..n {
            crds.push(Crd::load(d)?);
        }
        let mut slice_counters = [Vec::new(), Vec::new()];
        for counters in &mut slice_counters {
            let n = d.get_seq_len()?;
            counters.reserve(n);
            for _ in 0..n {
                counters.push(d.get_u64()?);
            }
        }
        let [mem_side_slices, sm_side_slices] = slice_counters;
        Ok(ProfileCollector {
            crds,
            mem_side_slices,
            sm_side_slices,
            total_requests: d.get_u64()?,
            local_requests: d.get_u64()?,
            memside_accesses: d.get_u64()?,
            memside_hits: d.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsu_bounds() {
        assert_eq!(lsu(&[]), 1.0);
        assert_eq!(lsu(&[0, 0, 0]), 1.0);
        assert!((lsu(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        // All requests to one of four slices: LSU = 1/4.
        assert!((lsu(&[8, 0, 0, 0]) - 0.25).abs() < 1e-12);
        // Intermediate case.
        let v = lsu(&[4, 2, 2, 0]);
        assert!(v > 0.25 && v < 1.0);
    }

    #[test]
    fn r_local_is_tracked() {
        let mut pc = ProfileCollector::new(4, 16, 64, false);
        for i in 0..10u64 {
            let home = if i < 7 { ChipId(0) } else { ChipId(1) };
            pc.observe_request(ChipId(0), home, LineAddr(i), None, 0, 0);
        }
        let inputs = pc.inputs();
        assert!((inputs.r_local - 0.7).abs() < 1e-12);
    }

    #[test]
    fn memside_hit_rate_is_measured() {
        let mut pc = ProfileCollector::new(4, 16, 64, false);
        for i in 0..10 {
            pc.observe_memside_llc(i < 6);
        }
        assert!((pc.inputs().llc_hit_memory_side - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lsu_differs_between_configs() {
        let mut pc = ProfileCollector::new(2, 8, 64, false);
        // Memory-side: all requests pile on slice 0 (a hot shared line at
        // one home). SM-side: spread over both chips' slices.
        for i in 0..8u64 {
            pc.observe_request(
                ChipId((i % 2) as u8),
                ChipId(0),
                LineAddr(1),
                None,
                0,
                (i % 8) as usize,
            );
        }
        let inputs = pc.inputs();
        assert!(inputs.lsu_sm_side > inputs.lsu_memory_side);
    }

    #[test]
    fn reset_zeroes_state() {
        let mut pc = ProfileCollector::new(4, 16, 64, false);
        pc.observe_request(ChipId(0), ChipId(1), LineAddr(1), None, 4, 0);
        pc.observe_memside_llc(true);
        pc.reset();
        assert_eq!(pc.total_requests(), 0);
        let i = pc.inputs();
        assert_eq!(i.r_local, 1.0);
        assert_eq!(i.llc_hit_memory_side, 0.0);
    }

    #[test]
    fn empty_collector_gives_neutral_inputs() {
        let pc = ProfileCollector::new(4, 64, 128, false);
        let i = pc.inputs();
        assert_eq!(i.r_local, 1.0);
        assert_eq!(i.lsu_memory_side, 1.0);
        assert_eq!(i.lsu_sm_side, 1.0);
    }
}
