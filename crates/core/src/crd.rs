//! The Chip Request Directory (CRD) — §3.4, Fig. 7.
//!
//! While the LLC runs in the memory-side configuration during the profiling
//! window, the CRD at each memory partition predicts what the **SM-side**
//! hit rate *would have been*. It is a tiny set-sampled tag directory
//! (8 sets × 16 ways in the paper) whose blocks carry one presence bit per
//! chip (or one per chip per sector for sectored caches): the first access
//! by chip *i* sets bit *i* (a would-be miss that would install a replica in
//! chip *i*'s SM-side LLC); subsequent accesses by chip *i* with the bit set
//! are counted as would-be hits. Because profiling runs memory-side, the
//! CRD at a partition observes *every* request whose data is homed there.
//!
//! The paper's machine has 4 chips and a 4-bit presence field; the
//! directory here sizes its presence vector from the configured chip count
//! (up to 128 presence bits — `chips × sectors`), and its storage-overhead
//! accounting scales with it.

use mcgpu_types::{ChipId, LineAddr, SectorId};

#[derive(Debug, Clone, Copy)]
struct CrdBlock {
    tag: u64,
    valid: bool,
    /// Per-chip presence; for sectored caches, per chip *and* sector
    /// (chip-major groups: bit `chip * sectors + sector`).
    presence: u128,
    stamp: u64,
}

impl CrdBlock {
    const EMPTY: CrdBlock = CrdBlock {
        tag: 0,
        valid: false,
        presence: 0,
        stamp: 0,
    };
}

/// The set-sampled Chip Request Directory. See the [module docs](self).
///
/// # Example
/// ```
/// use sac::Crd;
/// use mcgpu_types::{ChipId, LineAddr};
///
/// // Sampling an 8-set LLC with the 8-set CRD: every request is sampled.
/// let mut crd = Crd::paper_default(8);
/// // First touch by chip 0: predicted SM-side miss. Second: predicted hit.
/// for _ in 0..2 {
///     crd.observe(LineAddr(42), None, ChipId(0));
/// }
/// assert_eq!(crd.predicted_hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Crd {
    sets: Vec<Vec<CrdBlock>>,
    ways: usize,
    /// Chips tracked: one presence bit (per sector) each.
    chips: usize,
    /// Sectors per line (1 = conventional).
    sectors: u32,
    /// Total sets of the modelled per-chip LLC; requests are sampled when
    /// their LLC set index falls on a sampled set.
    llc_sets: usize,
    clock: u64,
    hits: u64,
    requests: u64,
}

impl Crd {
    /// The paper's configuration: 8 sets × 16 ways tracking the paper's 4
    /// chips, conventional lines, sampling a per-chip LLC with `llc_sets`
    /// sets.
    pub fn paper_default(llc_sets: usize) -> Self {
        Self::new(4, 8, 16, 1, llc_sets)
    }

    /// The paper's sectored-cache configuration (4 sectors per line).
    pub fn paper_sectored(llc_sets: usize) -> Self {
        Self::new(4, 8, 16, 4, llc_sets)
    }

    /// The paper's 8×16 directory geometry sized for a `chips`-chip
    /// machine — what the profiling collector instantiates per chip.
    pub fn for_chips(chips: usize, llc_sets: usize, sectored: bool) -> Self {
        Self::new(chips, 8, 16, if sectored { 4 } else { 1 }, llc_sets)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    /// Panics if `chips * sectors` exceeds the 128 presence bits, or any
    /// dimension is zero.
    pub fn new(chips: usize, sets: usize, ways: usize, sectors: u32, llc_sets: usize) -> Self {
        assert!(chips > 0 && sets > 0 && ways > 0 && sectors > 0 && llc_sets > 0);
        assert!(
            chips as u32 * sectors <= 128,
            "presence bits limited to 128 (chips x sectors)"
        );
        Crd {
            sets: vec![vec![CrdBlock::EMPTY; ways]; sets],
            ways,
            chips,
            sectors,
            llc_sets: llc_sets.max(sets),
            clock: 0,
            hits: 0,
            requests: 0,
        }
    }

    #[inline]
    fn llc_set_of(&self, line: LineAddr) -> usize {
        // Same mixing as the LLC slice uses, so sampling matches real sets.
        let mut x = line.index();
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x % self.llc_sets as u64) as usize
    }

    #[inline]
    fn presence_bit(&self, chip: ChipId, sector: Option<SectorId>) -> u128 {
        let s = if self.sectors > 1 {
            sector.map(|s| s.0 as u32).unwrap_or(0)
        } else {
            0
        };
        1u128 << (chip.index() as u32 * self.sectors + s)
    }

    /// Observe one request to this memory partition. Returns `Some(hit)`
    /// when the request fell on a sampled set (`None` = not sampled).
    ///
    /// # Panics
    /// Panics if `chip` exceeds the configured chip count.
    pub fn observe(
        &mut self,
        line: LineAddr,
        sector: Option<SectorId>,
        chip: ChipId,
    ) -> Option<bool> {
        assert!(
            chip.index() < self.chips,
            "chip {} outside the directory's {}-chip presence vector",
            chip.index(),
            self.chips
        );
        let llc_set = self.llc_set_of(line);
        // Sample the first `sets.len()` LLC sets (a fixed 1/N sample).
        if llc_set >= self.sets.len() {
            return None;
        }
        self.clock += 1;
        self.requests += 1;
        let bit = self.presence_bit(chip, sector);
        let set = &mut self.sets[llc_set];

        if let Some(block) = set.iter_mut().find(|b| b.valid && b.tag == line.index()) {
            block.stamp = self.clock;
            let hit = block.presence & bit != 0;
            block.presence |= bit;
            if hit {
                self.hits += 1;
            }
            return Some(hit);
        }

        // Install a new block (LRU victim).
        let victim = set
            .iter_mut()
            .min_by_key(|b| if b.valid { b.stamp } else { 0 })
            .expect("ways > 0");
        *victim = CrdBlock {
            tag: line.index(),
            valid: true,
            presence: bit,
            stamp: self.clock,
        };
        Some(false)
    }

    /// Predicted SM-side LLC hit rate: `CRD hits / CRD requests` (Fig. 7).
    /// Returns 0 when nothing was sampled.
    pub fn predicted_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Sampled requests so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Predicted hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Chips this directory tracks (presence-vector width in chip units).
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Valid blocks currently held in the directory (observability gauge).
    pub fn occupied(&self) -> u64 {
        self.sets
            .iter()
            .map(|set| set.iter().filter(|b| b.valid).count() as u64)
            .sum()
    }

    /// Total block capacity (`sets × ways`).
    pub fn capacity(&self) -> u64 {
        (self.sets.len() * self.ways) as u64
    }

    /// Reset only the hit/request counters, keeping the directory contents
    /// warm (used by the mid-window warm-up reset).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.requests = 0;
    }

    /// Clear contents and counters (new profiling window).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for b in set {
                *b = CrdBlock::EMPTY;
            }
        }
        self.clock = 0;
        self.hits = 0;
        self.requests = 0;
    }

    /// Storage cost in bytes (§3.6): each block holds a 30-bit tag plus
    /// `chips × sectors` presence bits — 544 B conventional, 736 B
    /// sectored for the paper's 4-chip 8×16 configuration, and growing
    /// with chip count (e.g. 608 B conventional at 8 chips).
    pub fn storage_bytes(&self) -> usize {
        let bits_per_block = 30 + self.chips * self.sectors as usize;
        self.sets.len() * self.ways * bits_per_block / 8
    }

    /// Serialize the full directory state into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_usize(self.sets.len());
        e.put_usize(self.ways);
        e.put_usize(self.chips);
        e.put_u32(self.sectors);
        e.put_usize(self.llc_sets);
        e.put_u64(self.clock);
        e.put_u64(self.hits);
        e.put_u64(self.requests);
        for block in self.sets.iter().flat_map(|s| s.iter()) {
            e.put_u64(block.tag);
            e.put_bool(block.valid);
            e.put_u128(block.presence);
            e.put_u64(block.stamp);
        }
    }

    /// Deserialize a directory saved by [`Crd::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let sets = d.get_usize()?;
        let ways = d.get_usize()?;
        let chips = d.get_usize()?;
        let sectors = d.get_u32()?;
        let llc_sets = d.get_usize()?;
        if sets == 0 || ways == 0 || chips == 0 || sectors == 0 || llc_sets == 0 {
            return Err(mcgpu_types::CkptError::Decode(
                "CRD dimensions must be non-zero".into(),
            ));
        }
        let clock = d.get_u64()?;
        let hits = d.get_u64()?;
        let requests = d.get_u64()?;
        let mut crd = Crd {
            sets: vec![vec![CrdBlock::EMPTY; ways]; sets],
            ways,
            chips,
            sectors,
            llc_sets,
            clock,
            hits,
            requests,
        };
        for block in crd.sets.iter_mut().flat_map(|s| s.iter_mut()) {
            block.tag = d.get_u64()?;
            block.valid = d.get_bool()?;
            block.presence = d.get_u128()?;
            block.stamp = d.get_u64()?;
        }
        Ok(crd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A line that is guaranteed to fall on a sampled set.
    fn sampled_line(crd: &Crd) -> LineAddr {
        (0..10_000u64)
            .map(LineAddr)
            .find(|&l| crd.llc_set_of(l) < crd.sets.len())
            .expect("some line is sampled")
    }

    #[test]
    fn storage_matches_paper() {
        assert_eq!(Crd::paper_default(2048).storage_bytes(), 544);
        assert_eq!(Crd::paper_sectored(2048).storage_bytes(), 736);
    }

    #[test]
    fn storage_scales_with_chip_count() {
        // bits/block = 30 + chips x sectors over the 8x16 geometry.
        assert_eq!(Crd::for_chips(4, 2048, false).storage_bytes(), 544);
        assert_eq!(Crd::for_chips(8, 2048, false).storage_bytes(), 608);
        assert_eq!(Crd::for_chips(16, 2048, false).storage_bytes(), 736);
        assert_eq!(Crd::for_chips(4, 2048, true).storage_bytes(), 736);
        assert_eq!(Crd::for_chips(8, 2048, true).storage_bytes(), 992);
    }

    #[test]
    fn repeat_access_by_same_chip_predicts_hit() {
        let mut crd = Crd::paper_default(64);
        let l = sampled_line(&crd);
        assert_eq!(crd.observe(l, None, ChipId(1)), Some(false));
        assert_eq!(crd.observe(l, None, ChipId(1)), Some(true));
        assert_eq!(crd.hits(), 1);
        assert_eq!(crd.requests(), 2);
    }

    #[test]
    fn first_access_by_each_chip_is_a_miss() {
        // Truly-shared line: every chip pays one cold miss (one replica per
        // chip under SM-side), then hits.
        let mut crd = Crd::paper_default(64);
        let l = sampled_line(&crd);
        for chip in 0..4u8 {
            assert_eq!(crd.observe(l, None, ChipId(chip)), Some(false));
        }
        for chip in 0..4u8 {
            assert_eq!(crd.observe(l, None, ChipId(chip)), Some(true));
        }
        assert!((crd.predicted_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wide_presence_tracks_many_chips_independently() {
        // A 16-chip directory: every chip pays its own cold miss on a
        // shared line, then hits — presence bits beyond the paper's 4-bit
        // field must not alias.
        let mut crd = Crd::for_chips(16, 64, false);
        let l = sampled_line(&crd);
        for chip in 0..16u8 {
            assert_eq!(crd.observe(l, None, ChipId(chip)), Some(false));
        }
        for chip in 0..16u8 {
            assert_eq!(crd.observe(l, None, ChipId(chip)), Some(true));
        }
    }

    #[test]
    #[should_panic(expected = "presence vector")]
    fn observe_rejects_out_of_range_chip() {
        let mut crd = Crd::paper_default(64);
        let l = sampled_line(&crd);
        crd.observe(l, None, ChipId(4));
    }

    #[test]
    fn sectored_tracks_per_sector() {
        let mut crd = Crd::paper_sectored(64);
        let l = sampled_line(&crd);
        assert_eq!(crd.observe(l, Some(SectorId(0)), ChipId(0)), Some(false));
        // Different sector, same chip: still a (sector) miss.
        assert_eq!(crd.observe(l, Some(SectorId(1)), ChipId(0)), Some(false));
        assert_eq!(crd.observe(l, Some(SectorId(0)), ChipId(0)), Some(true));
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        // 1 set x 2 ways sampling a 1-set LLC: every line sampled into set 0.
        let mut crd = Crd::new(4, 1, 2, 1, 1);
        crd.observe(LineAddr(1), None, ChipId(0));
        crd.observe(LineAddr(2), None, ChipId(0));
        crd.observe(LineAddr(3), None, ChipId(0)); // evicts line 1
        assert_eq!(crd.observe(LineAddr(1), None, ChipId(0)), Some(false));
    }

    #[test]
    fn reset_clears_everything() {
        let mut crd = Crd::paper_default(64);
        let l = sampled_line(&crd);
        crd.observe(l, None, ChipId(0));
        crd.observe(l, None, ChipId(0));
        crd.reset();
        assert_eq!(crd.requests(), 0);
        assert_eq!(crd.predicted_hit_rate(), 0.0);
        assert_eq!(crd.observe(l, None, ChipId(0)), Some(false));
    }

    #[test]
    fn occupancy_counts_valid_blocks() {
        let mut crd = Crd::paper_default(64);
        assert_eq!(crd.occupied(), 0);
        assert_eq!(crd.capacity(), 8 * 16);
        let l = sampled_line(&crd);
        crd.observe(l, None, ChipId(0));
        assert_eq!(crd.occupied(), 1);
        crd.reset_counters();
        assert_eq!(crd.occupied(), 1, "counter reset keeps the directory warm");
        crd.reset();
        assert_eq!(crd.occupied(), 0);
    }

    #[test]
    fn sampling_rate_is_roughly_sets_over_llc_sets() {
        let mut crd = Crd::paper_default(128); // 8/128 = 1/16 sampled
        let mut sampled = 0;
        let n = 50_000u64;
        for i in 0..n {
            if crd.observe(LineAddr(i), None, ChipId(0)).is_some() {
                sampled += 1;
            }
        }
        let rate = sampled as f64 / n as f64;
        assert!((rate - 1.0 / 16.0).abs() < 0.01, "sampling rate {rate}");
    }

    #[test]
    fn save_load_round_trips_wide_presence() {
        let mut crd = Crd::for_chips(16, 64, true);
        let l = sampled_line(&crd);
        for chip in [0u8, 7, 15] {
            crd.observe(l, Some(SectorId(2)), ChipId(chip));
        }
        let mut e = mcgpu_types::Enc::new();
        crd.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = mcgpu_types::Dec::new(&bytes);
        let mut restored = Crd::load(&mut d).unwrap();
        assert_eq!(restored.chips(), 16);
        assert_eq!(restored.requests(), crd.requests());
        // The restored directory predicts identically.
        assert_eq!(
            restored.observe(l, Some(SectorId(2)), ChipId(15)),
            Some(true)
        );
    }
}
