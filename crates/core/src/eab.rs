//! The Effective Available Bandwidth (EAB) analytical model (§3.3).
//!
//! The EAB is "the bandwidth the system can provide given the workload's
//! access pattern". For each LLC organization it is the sum of the
//! bandwidth available to local and to remote requests:
//!
//! ```text
//! EAB_total = EAB_local + EAB_remote
//! EAB_{l|r} = min(B_SM_LLC, B_LLC_hit + min(B_LLC_miss, B_LLC_mem, B_mem))
//! ```
//!
//! with the constituent bandwidths per Table 1: the memory-side
//! configuration bounds local traffic by the intra-chip NoC and remote
//! traffic by the inter-chip links, whereas the SM-side configuration shares
//! the intra-chip NoC between both and bounds remote *misses* by the
//! inter-chip links. LLC hit/miss bandwidths scale with the LLC Slice
//! Uniformity (LSU) and the configuration-specific hit rate.

use crate::LlcMode;

/// Architecture-dependent model inputs (Table 2, top): per-chip raw
/// bandwidths in GB/s (== bytes/cycle at 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchBandwidth {
    /// Intra-chip NoC bandwidth (`B_intra`).
    pub b_intra: f64,
    /// Inter-chip link bandwidth available to one chip (`B_inter`).
    pub b_inter: f64,
    /// Raw aggregate LLC slice bandwidth (`B_LLC`).
    pub b_llc: f64,
    /// Raw memory partition bandwidth (`B_mem`).
    pub b_mem: f64,
}

impl ArchBandwidth {
    /// Extract the per-chip bandwidths from a machine configuration.
    pub fn from_config(cfg: &mcgpu_types::MachineConfig) -> Self {
        ArchBandwidth {
            b_intra: cfg.intra_gbs_per_chip(),
            b_inter: cfg.inter_gbs_per_chip(),
            b_llc: cfg.llc_gbs_per_chip(),
            b_mem: cfg.mem_gbs_per_chip(),
        }
    }
}

/// Per-topology structural capacities of the inter-chip fabric (GB/s ==
/// bytes/cycle), derived from the machine configuration. `B_inter` in
/// [`ArchBandwidth`] is the *mean* per-chip egress
/// ([`FabricCapacity::mean_egress_gbs`]); the bisection and the busiest
/// chip's egress bound what the fabric can actually move for a given
/// topology and chip count — the scale-out figures report them alongside
/// the EAB decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricCapacity {
    /// Minimum link capacity crossing a balanced cut, per direction.
    pub bisection_gbs: f64,
    /// One directed link's bandwidth.
    pub link_gbs: f64,
    /// Egress bandwidth of the highest-degree chip.
    pub max_egress_gbs: f64,
    /// Mean per-chip egress bandwidth (equals `ArchBandwidth::b_inter`).
    pub mean_egress_gbs: f64,
}

impl FabricCapacity {
    /// Compute the configured topology's capacities.
    pub fn from_config(cfg: &mcgpu_types::MachineConfig) -> Self {
        let max_degree = cfg.max_chip_degree() as f64;
        FabricCapacity {
            bisection_gbs: cfg.bisection_gbs(),
            link_gbs: cfg.interchip_pair_gbs,
            max_egress_gbs: max_degree * cfg.interchip_pair_gbs,
            mean_egress_gbs: cfg.inter_gbs_per_chip(),
        }
    }
}

/// Workload- and configuration-dependent model inputs (Table 2, bottom),
/// collected during the profiling window (§3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EabInputs {
    /// Fraction of requests whose data is homed on the requesting chip
    /// (`R_local`); `R_remote = 1 - R_local`.
    pub r_local: f64,
    /// LLC hit rate under the memory-side configuration (measured).
    pub llc_hit_memory_side: f64,
    /// LLC hit rate under the SM-side configuration (predicted by the CRD).
    pub llc_hit_sm_side: f64,
    /// LLC slice uniformity under the memory-side configuration.
    pub lsu_memory_side: f64,
    /// LLC slice uniformity under the SM-side configuration.
    pub lsu_sm_side: f64,
}

impl EabInputs {
    /// `R_remote`.
    pub fn r_remote(&self) -> f64 {
        1.0 - self.r_local
    }

    /// Clamp every field into its valid range (defensive: counter noise can
    /// push ratios slightly outside [0, 1]).
    pub fn clamped(mut self) -> Self {
        self.r_local = self.r_local.clamp(0.0, 1.0);
        self.llc_hit_memory_side = self.llc_hit_memory_side.clamp(0.0, 1.0);
        self.llc_hit_sm_side = self.llc_hit_sm_side.clamp(0.0, 1.0);
        self.lsu_memory_side = self.lsu_memory_side.clamp(0.0, 1.0);
        self.lsu_sm_side = self.lsu_sm_side.clamp(0.0, 1.0);
        self
    }
}

/// The EAB model: computes and compares effective available bandwidth under
/// both LLC organizations. See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EabModel {
    arch: ArchBandwidth,
}

impl EabModel {
    /// Create the model for the given architecture bandwidths.
    pub fn new(arch: ArchBandwidth) -> Self {
        EabModel { arch }
    }

    /// The architecture bandwidths the model was built with.
    pub fn arch(&self) -> &ArchBandwidth {
        &self.arch
    }

    /// One side (local or remote) of the EAB equation:
    /// `min(B_SM_LLC, B_LLC_hit + min(B_LLC_miss, B_LLC_mem, B_mem))`.
    fn side(b_sm_llc: f64, b_llc_hit: f64, b_llc_miss: f64, b_llc_mem: f64, b_mem: f64) -> f64 {
        b_sm_llc.min(b_llc_hit + b_llc_miss.min(b_llc_mem).min(b_mem))
    }

    /// EAB of the memory-side configuration (Table 1, left half).
    pub fn eab_memory_side(&self, inputs: &EabInputs) -> f64 {
        let i = inputs.clamped();
        let a = &self.arch;
        let hit_bw = a.b_llc * i.lsu_memory_side * i.llc_hit_memory_side;
        let miss_bw = a.b_llc * i.lsu_memory_side * (1.0 - i.llc_hit_memory_side);
        // Local requests: bounded by the intra-chip NoC; LLC misses access
        // the directly attached local memory (B_LLC_mem unconstrained).
        let local = Self::side(
            a.b_intra,
            hit_bw * i.r_local,
            miss_bw * i.r_local,
            f64::INFINITY,
            a.b_mem * i.r_local,
        );
        // Remote requests: bounded by the inter-chip links end to end.
        let remote = Self::side(
            a.b_inter,
            hit_bw * i.r_remote(),
            miss_bw * i.r_remote(),
            f64::INFINITY,
            a.b_mem * i.r_remote(),
        );
        local + remote
    }

    /// EAB of the SM-side configuration (Table 1, right half).
    pub fn eab_sm_side(&self, inputs: &EabInputs) -> f64 {
        let i = inputs.clamped();
        let a = &self.arch;
        let hit_bw = a.b_llc * i.lsu_sm_side * i.llc_hit_sm_side;
        let miss_bw = a.b_llc * i.lsu_sm_side * (1.0 - i.llc_hit_sm_side);
        // Local requests: share the intra-chip NoC with remote requests;
        // misses go to the directly attached local memory.
        let local = Self::side(
            a.b_intra * i.r_local,
            hit_bw * i.r_local,
            miss_bw * i.r_local,
            f64::INFINITY,
            a.b_mem * i.r_local,
        );
        // Remote requests: also served by the *local* LLC (replication), but
        // their misses must reach a remote memory partition over the
        // inter-chip links (B_LLC_mem = B_inter).
        let remote = Self::side(
            a.b_intra * i.r_remote(),
            hit_bw * i.r_remote(),
            miss_bw * i.r_remote(),
            a.b_inter,
            a.b_mem * i.r_remote(),
        );
        local + remote
    }

    /// EAB for a given mode.
    pub fn eab(&self, mode: LlcMode, inputs: &EabInputs) -> f64 {
        match mode {
            LlcMode::MemorySide => self.eab_memory_side(inputs),
            LlcMode::SmSide => self.eab_sm_side(inputs),
        }
    }

    /// The runtime decision (§3.5): adopt the SM-side organization iff its
    /// EAB exceeds the memory-side EAB by more than the threshold `theta`
    /// (paper: θ = 5%), which absorbs the coherence overhead the model does
    /// not capture.
    pub fn decide(&self, inputs: &EabInputs, theta: f64) -> LlcMode {
        let mem = self.eab_memory_side(inputs);
        let sm = self.eab_sm_side(inputs);
        if sm > mem * (1.0 + theta) {
            LlcMode::SmSide
        } else {
            LlcMode::MemorySide
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchBandwidth {
        // Paper baseline per chip: 4 TB/s intra, 192 GB/s inter, 4 TB/s LLC,
        // 437.5 GB/s DRAM.
        ArchBandwidth {
            b_intra: 4096.0,
            b_inter: 192.0,
            b_llc: 4000.0,
            b_mem: 437.5,
        }
    }

    fn inputs() -> EabInputs {
        EabInputs {
            r_local: 0.5,
            llc_hit_memory_side: 0.6,
            llc_hit_sm_side: 0.5,
            lsu_memory_side: 0.8,
            lsu_sm_side: 0.9,
        }
    }

    #[test]
    fn eab_never_exceeds_structural_bounds() {
        let m = EabModel::new(arch());
        let i = inputs();
        // Memory-side remote side is capped by B_inter; local by B_intra.
        assert!(m.eab_memory_side(&i) <= arch().b_intra + arch().b_inter + 1e-9);
        // SM-side total is capped by B_intra (both sides share it).
        assert!(m.eab_sm_side(&i) <= arch().b_intra + 1e-9);
    }

    #[test]
    fn remote_heavy_sharing_prefers_sm_side() {
        let m = EabModel::new(arch());
        // Mostly remote data that replication would serve locally at high
        // hit rate: the memory-side remote path is strangled by B_inter.
        let i = EabInputs {
            r_local: 0.3,
            llc_hit_memory_side: 0.6,
            llc_hit_sm_side: 0.6,
            lsu_memory_side: 0.6,
            lsu_sm_side: 0.95,
        };
        assert_eq!(m.decide(&i, 0.05), LlcMode::SmSide);
        assert!(m.eab_sm_side(&i) > 2.0 * m.eab_memory_side(&i));
    }

    #[test]
    fn thrashing_replication_prefers_memory_side() {
        let m = EabModel::new(arch());
        // Replication would destroy the hit rate (huge truly-shared set):
        // SM-side remote misses are then bounded by B_inter *and* pay DRAM.
        let i = EabInputs {
            r_local: 0.4,
            llc_hit_memory_side: 0.7,
            llc_hit_sm_side: 0.1,
            lsu_memory_side: 0.85,
            lsu_sm_side: 0.9,
        };
        assert_eq!(m.decide(&i, 0.05), LlcMode::MemorySide);
    }

    #[test]
    fn all_local_traffic_is_indifferent() {
        let m = EabModel::new(arch());
        // No sharing at all: both organizations behave identically, so theta
        // keeps the memory-side organization (no coherence cost).
        let i = EabInputs {
            r_local: 1.0,
            llc_hit_memory_side: 0.5,
            llc_hit_sm_side: 0.5,
            lsu_memory_side: 0.9,
            lsu_sm_side: 0.9,
        };
        let (mem, sm) = (m.eab_memory_side(&i), m.eab_sm_side(&i));
        assert!((mem - sm).abs() < 1e-9);
        assert_eq!(m.decide(&i, 0.05), LlcMode::MemorySide);
    }

    #[test]
    fn eab_is_monotone_in_hit_rate() {
        let m = EabModel::new(arch());
        let mut prev = 0.0;
        for hit in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let i = EabInputs {
                llc_hit_sm_side: hit,
                ..inputs()
            };
            let e = m.eab_sm_side(&i);
            assert!(e + 1e-9 >= prev, "hit={hit}: {e} < {prev}");
            prev = e;
        }
    }

    #[test]
    fn theta_biases_towards_memory_side() {
        let m = EabModel::new(arch());
        // SM-side marginally better: a large theta must keep memory-side.
        let i = EabInputs {
            r_local: 0.8,
            llc_hit_memory_side: 0.55,
            llc_hit_sm_side: 0.58,
            lsu_memory_side: 0.9,
            lsu_sm_side: 0.92,
        };
        let sm = m.eab_sm_side(&i);
        let mem = m.eab_memory_side(&i);
        assert!(sm > mem && sm < mem * 1.5);
        assert_eq!(m.decide(&i, 10.0), LlcMode::MemorySide);
    }

    #[test]
    fn fabric_capacity_tracks_topology() {
        use mcgpu_types::{MachineConfig, TopologyKind};
        let mut cfg = MachineConfig::paper_baseline();
        // Ring baseline: 2 links cross any balanced cut, every chip has
        // degree 2, and B_inter agrees with the mean egress.
        let ring = FabricCapacity::from_config(&cfg);
        assert!((ring.bisection_gbs - 2.0 * cfg.interchip_pair_gbs).abs() < 1e-9);
        assert!((ring.max_egress_gbs - ring.mean_egress_gbs).abs() < 1e-9);
        assert!((ring.mean_egress_gbs - 192.0).abs() < 1e-9);
        // All-to-all at 8 chips: 4 x 4 links cross the cut; B_inter grows
        // with degree.
        cfg.topology = TopologyKind::FullyConnected;
        cfg.chips = 8;
        let full = FabricCapacity::from_config(&cfg);
        assert!((full.bisection_gbs - 16.0 * cfg.interchip_pair_gbs).abs() < 1e-9);
        assert!((full.mean_egress_gbs - 7.0 * cfg.interchip_pair_gbs).abs() < 1e-9);
        // Mean egress always equals the model's B_inter input.
        for kind in TopologyKind::ALL {
            cfg.topology = kind;
            let cap = FabricCapacity::from_config(&cfg);
            let arch = ArchBandwidth::from_config(&cfg);
            assert!((cap.mean_egress_gbs - arch.b_inter).abs() < 1e-9, "{kind}");
            assert!(cap.bisection_gbs > 0.0 && cap.max_egress_gbs >= cap.mean_egress_gbs - 1e-9);
        }
    }

    #[test]
    fn clamping_handles_noise() {
        let i = EabInputs {
            r_local: 1.2,
            llc_hit_memory_side: -0.1,
            llc_hit_sm_side: 1.7,
            lsu_memory_side: 2.0,
            lsu_sm_side: -1.0,
        }
        .clamped();
        assert_eq!(i.r_local, 1.0);
        assert_eq!(i.llc_hit_memory_side, 0.0);
        assert_eq!(i.llc_hit_sm_side, 1.0);
        assert_eq!(i.lsu_memory_side, 1.0);
        assert_eq!(i.lsu_sm_side, 0.0);
        // And the model never returns NaN on noisy input.
        let m = EabModel::new(arch());
        assert!(m.eab_memory_side(&i).is_finite());
        assert!(m.eab_sm_side(&i).is_finite());
    }
}
