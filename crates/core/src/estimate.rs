//! The analytic fast-mode estimator (tier two of the two-tier engine).
//!
//! Fast mode predicts a cell's headline metrics — LLC hit rate, inter-chip
//! fabric bytes, DRAM traffic and a bandwidth-bounded cycle count — from a
//! per-kernel locality profile, without running the cycle engine at all.
//! The profile (one [`KernelProfile`] per kernel launch) is extracted from
//! the trace once by the bench harness; this module is the pure arithmetic
//! that turns it into a [`FastCellEstimate`] for each LLC organization.
//!
//! The hit model keys on **cross-kernel reuse**: the cycle engine drains
//! all traffic at kernel boundaries, so a re-access to a granule resident
//! since an earlier kernel hits, while short-distance reuse *within* a
//! kernel is largely absorbed by MSHR merging (a merged request is a miss,
//! not a hit, in the stats). A kernel making `p` re-accesses to granules
//! already resident from prior kernels, against a cumulative footprint of
//! `d` granules in a cache of `c`, scores
//!
//! ```text
//! hits(p, d, c) ≈ p · min(1, c / d)
//! ```
//!
//! What counts as "resident from prior kernels" follows each
//! organization's boundary action (`crates/sim/src/org/`): memory-side
//! home data always survives; SM-side replicas are flushed wholesale at
//! every boundary under software coherence (nothing survives) and only
//! locally-homed lines survive the hardware-coherence replica drop; the
//! tiered organizations keep their local pool and lose the remote pool.
//! The SAC estimate runs the real [`EabModel::decide`] threshold per
//! kernel on inputs assembled from the same profile, so fast mode
//! exercises the paper's decision logic and fabricates a [`KernelRecord`]
//! history just like the cycle engine.
//!
//! Fast mode is an *estimator*: its error against the cycle engine is
//! measured by the `crossval` binary and pinned as expectation bands. It
//! deliberately does not model contention transients, MSHR pressure,
//! reconfiguration drains, or fault injection.

use crate::controller::{KernelRecord, SacConfig};
use crate::counters::lsu;
use crate::eab::{ArchBandwidth, EabInputs, EabModel};
use crate::LlcMode;
use mcgpu_types::{CoherenceKind, LlcOrgKind, MachineConfig};

/// Locality profile of one kernel launch, extracted from the trace after
/// an L1 filter. All access counts are post-L1 (what the LLC layer sees);
/// vectors are indexed by chip. "Granule" is a cache line, or a sector on
/// sectored machines (a re-access to an untouched sector of a resident
/// line is a sector miss, not a hit).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelProfile {
    /// Issue-bound cycle floor: the longest cluster stream's slots,
    /// `len · (1 + compute_gap)`.
    pub issue_cycles: u64,
    /// L1-level accesses machine-wide (pre-filter).
    pub l1_accesses: u64,
    /// L1 hits machine-wide.
    pub l1_hits: u64,
    /// Post-L1 reads machine-wide.
    pub reads: u64,
    /// Post-L1 writes machine-wide.
    pub writes: u64,
    /// Per requesting chip: post-L1 accesses to lines homed on that chip.
    pub local_accesses: Vec<u64>,
    /// Per requesting chip: post-L1 accesses to lines homed elsewhere.
    pub remote_accesses: Vec<u64>,
    /// Per requesting chip: distinct locally-homed granules it touched.
    pub distinct_local: Vec<u64>,
    /// Per requesting chip: distinct remotely-homed granules it touched.
    pub distinct_remote: Vec<u64>,
    /// Per home chip: post-L1 accesses homed on that chip (from any chip).
    pub homed_accesses: Vec<u64>,
    /// Per home chip: distinct granules homed on that chip that were
    /// touched.
    pub distinct_homed: Vec<u64>,
    /// Per home chip: accesses this kernel to granules that chip's slices
    /// already saw in an *earlier* kernel (cross-kernel reuse home slices
    /// can serve).
    pub prior_homed: Vec<u64>,
    /// Per requesting chip: accesses to locally-homed granules the chip
    /// itself touched in an earlier kernel (the reuse that survives a
    /// boundary replica drop).
    pub prior_local: Vec<u64>,
    /// Per home chip: cumulative distinct granules homed there, through
    /// the end of this kernel (residency pressure for the capacity term).
    pub cum_distinct_homed: Vec<u64>,
    /// Per requesting chip: cumulative distinct locally-homed granules it
    /// touched, through the end of this kernel.
    pub cum_distinct_local: Vec<u64>,
}

impl KernelProfile {
    /// Total post-L1 accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of post-L1 accesses homed on the requesting chip.
    pub fn r_local(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return 1.0;
        }
        self.local_accesses.iter().sum::<u64>() as f64 / total as f64
    }

    /// Total distinct lines touched (each line is homed on exactly one
    /// chip, so the per-home counts partition the set).
    pub fn distinct_lines(&self) -> u64 {
        self.distinct_homed.iter().sum()
    }
}

/// One kernel's fast-mode prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastKernelEstimate {
    /// Predicted kernel duration in cycles.
    pub cycles: u64,
    /// L1-level accesses attributed to the kernel.
    pub accesses: u64,
    /// The LLC mode the kernel ran under (SAC only).
    pub mode: Option<LlcMode>,
}

/// A whole cell's fast-mode prediction, aggregated over its kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FastCellEstimate {
    /// Predicted total cycles.
    pub cycles: u64,
    /// Post-L1 LLC accesses.
    pub llc_accesses: u64,
    /// Predicted LLC hits.
    pub llc_hits: u64,
    /// Predicted mean fraction of LLC accesses served by a local slice.
    pub llc_local_fraction: f64,
    /// Predicted bytes crossing the inter-chip fabric.
    pub fabric_bytes: u64,
    /// Predicted DRAM line reads (fills).
    pub dram_reads: u64,
    /// Predicted DRAM line writebacks.
    pub dram_writes: u64,
    /// Per-kernel estimates, in launch order.
    pub kernels: Vec<FastKernelEstimate>,
    /// Fabricated SAC decision history (empty for other organizations).
    pub sac_history: Vec<KernelRecord>,
}

/// `hits(p, d, c) = p · min(1, c / d)` — cross-kernel re-accesses scaled
/// by how much of the cumulative footprint is actually still resident.
fn retained(prior: u64, cum_distinct: u64, capacity: f64) -> f64 {
    if prior == 0 || cum_distinct == 0 {
        return 0.0;
    }
    prior as f64 * (capacity / cum_distinct as f64).min(1.0)
}

/// Per-kernel hit prediction under the memory-side organization: home
/// data is authoritative and survives every kernel boundary (software
/// boundaries do nothing; the hardware replica drop only touches remote
/// replicas, which memory-side slices never hold).
fn hits_memory_side(k: &KernelProfile, cap: f64) -> f64 {
    k.prior_homed
        .iter()
        .zip(&k.cum_distinct_homed)
        .map(|(&p, &d)| retained(p, d, cap))
        .sum()
}

/// Per-kernel hit prediction under the SM-side organization. Within a
/// kernel, replica reuse is MSHR-shadowed (merged requests are misses);
/// across kernels, survival depends on coherence: software flushes the
/// whole replicated LLC at every boundary, hardware drops only
/// remotely-homed replicas, so locally-homed lines keep serving.
fn hits_sm_side(k: &KernelProfile, cap: f64, coherence: CoherenceKind) -> f64 {
    match coherence {
        CoherenceKind::Software => 0.0,
        CoherenceKind::Hardware => k
            .prior_local
            .iter()
            .zip(&k.cum_distinct_local)
            .map(|(&p, &d)| retained(p, d, cap))
            .sum(),
    }
}

/// Per-kernel hit prediction for a way-partitioned slice: the local pool
/// (`local_frac` of the ways) is home data and persists like memory-side;
/// the remote pool is replicas that every boundary action discards, so
/// its cross-kernel contribution is nil.
fn hits_split(k: &KernelProfile, cap: f64, local_frac: f64) -> f64 {
    hits_memory_side(k, cap * local_frac)
}

/// The EAB inputs fast mode assembles for one kernel: measured locality
/// plus the capacity model's own hit predictions, with the real LSU
/// statistic computed over the per-chip load vectors.
fn eab_inputs(k: &KernelProfile, cap: f64, coherence: CoherenceKind) -> EabInputs {
    let total = k.accesses().max(1) as f64;
    let by_requester: Vec<u64> = k
        .local_accesses
        .iter()
        .zip(&k.remote_accesses)
        .map(|(&l, &r)| l + r)
        .collect();
    EabInputs {
        r_local: k.r_local(),
        llc_hit_memory_side: hits_memory_side(k, cap) / total,
        llc_hit_sm_side: hits_sm_side(k, cap, coherence) / total,
        lsu_memory_side: lsu(&k.homed_accesses),
        lsu_sm_side: lsu(&by_requester),
    }
    .clamped()
}

/// Which hit model and EAB side a kernel uses under `org` (SAC resolves
/// per kernel via [`EabModel::decide`]).
fn kernel_hits_and_eab(
    org: LlcOrgKind,
    k: &KernelProfile,
    cap: f64,
    coherence: CoherenceKind,
    model: &EabModel,
    inputs: &EabInputs,
    theta: f64,
) -> (f64, f64, Option<LlcMode>) {
    match org {
        LlcOrgKind::MemorySide => (
            hits_memory_side(k, cap),
            model.eab_memory_side(inputs),
            None,
        ),
        LlcOrgKind::SmSide => (
            hits_sm_side(k, cap, coherence),
            model.eab_sm_side(inputs),
            None,
        ),
        LlcOrgKind::StaticHalf => {
            // Half the ways local, half remote; bandwidth between the two
            // structural envelopes.
            let eab = 0.5 * (model.eab_memory_side(inputs) + model.eab_sm_side(inputs));
            (hits_split(k, cap, 0.5), eab, None)
        }
        LlcOrgKind::Dynamic => {
            // The way-split controller adapts per epoch: credit it with the
            // best of a coarse split sweep and the better EAB envelope.
            let hits = [0.25, 0.5, 0.75]
                .iter()
                .map(|&s| hits_split(k, cap, s))
                .fold(0.0f64, f64::max);
            let eab = model.eab_memory_side(inputs).max(model.eab_sm_side(inputs));
            (hits, eab, None)
        }
        LlcOrgKind::Sac => {
            // Run the paper's θ-threshold decision on the assembled inputs.
            let mode = model.decide(inputs, theta);
            let (hits, eab) = match mode {
                LlcMode::MemorySide => (hits_memory_side(k, cap), model.eab_memory_side(inputs)),
                LlcMode::SmSide => (hits_sm_side(k, cap, coherence), model.eab_sm_side(inputs)),
            };
            (hits, eab, Some(mode))
        }
    }
}

/// Predict one cell — a (machine, organization, kernel sequence) triple —
/// without cycle simulation. `sac_cfg` supplies θ and the profiling-window
/// length used to stamp the fabricated decision records.
pub fn estimate_cell(
    cfg: &MachineConfig,
    sac_cfg: &SacConfig,
    org: LlcOrgKind,
    kernels: &[KernelProfile],
) -> FastCellEstimate {
    let model = EabModel::new(ArchBandwidth::from_config(cfg));
    let cap_lines = (cfg.llc_bytes_per_chip / cfg.line_size) as f64;
    let line = cfg.line_size as f64;
    // Fabric wire costs mirror `packet.rs`: a read moves a 16 B request and
    // a `16 + line` B response; a write moves a `16 + 32` B request and a
    // 16 B acknowledgement.
    let read_wire = 16.0 + 16.0 + line;
    let write_wire = 48.0 + 16.0;

    let mut out = FastCellEstimate::default();
    let mut local_weight = 0.0f64;
    let mut cell_writes = 0u64;
    for k in kernels {
        let total = k.accesses();
        let inputs = eab_inputs(k, cap_lines, cfg.coherence);
        let (hits_f, eab, mode) = kernel_hits_and_eab(
            org,
            k,
            cap_lines,
            cfg.coherence,
            &model,
            &inputs,
            sac_cfg.theta,
        );
        let hits_f = hits_f.min(total as f64);
        let write_frac = if total == 0 {
            0.0
        } else {
            k.writes as f64 / total as f64
        };

        // Bandwidth-bound duration: post-L1 demand bytes through the EAB.
        let demand_bytes = total as f64 * line;
        let bw_cycles = if eab > 0.0 {
            (demand_bytes / eab).ceil() as u64
        } else {
            0
        };
        let cycles = k.issue_cycles.max(bw_cycles);

        // Fabric traffic. Under memory-side routing every remote access
        // crosses. Under SM-side routing (and the tiered organizations'
        // remote pools) a remote granule crosses roughly once per kernel:
        // the first access fetches it, and same-kernel repeats are served
        // by the local replica or merged into the in-flight miss — either
        // way they stay on-chip.
        let remote = k.remote_accesses.iter().sum::<u64>() as f64;
        let remote_repeats: f64 = k
            .remote_accesses
            .iter()
            .zip(&k.distinct_remote)
            .map(|(&n, &d)| n.saturating_sub(d) as f64)
            .sum();
        let replicates = !matches!(
            (org, mode),
            (LlcOrgKind::MemorySide, _) | (LlcOrgKind::Sac, Some(LlcMode::MemorySide))
        );
        let remote_crossings = if replicates {
            remote - remote_repeats
        } else {
            remote
        };
        let flushes_each_kernel = cfg.coherence == CoherenceKind::Software
            && matches!(
                (org, mode),
                (LlcOrgKind::SmSide, _) | (LlcOrgKind::Sac, Some(LlcMode::SmSide))
            );
        let mut fabric =
            remote_crossings * (read_wire * (1.0 - write_frac) + write_wire * write_frac);
        // A full boundary flush writes replicated remote dirty granules
        // back to their homes across the fabric, a full line each
        // (`RingPayload::Writeback`). The tiered organizations' partial
        // flushes move too little to model (measured < 3% of cell traffic).
        if flushes_each_kernel {
            let distinct_remote: u64 = k.distinct_remote.iter().sum();
            fabric += distinct_remote as f64 * write_frac * (16.0 + line);
        }

        // DRAM fills: every read miss fetches from memory.
        let misses = total as f64 - hits_f;
        let dram_reads = misses * (1.0 - write_frac);

        // DRAM writebacks: an organization that flushes its replicated
        // contents at every boundary (SM-side caching under software
        // coherence) writes each kernel's dirty granules back each kernel.
        // Persisting organizations keep dirty lines resident; those write
        // back once per granule over the whole cell (accounted after the
        // loop from the cumulative footprint).
        let dram_writes = if flushes_each_kernel {
            (k.distinct_lines() as f64 * write_frac).min(k.writes as f64)
        } else {
            0.0
        };
        cell_writes += k.writes;

        out.cycles += cycles;
        out.llc_accesses += total;
        out.llc_hits += hits_f.round() as u64;
        out.fabric_bytes += fabric.round() as u64;
        out.dram_reads += dram_reads.round() as u64;
        out.dram_writes += dram_writes.round() as u64;
        local_weight += inputs.r_local * total as f64;
        out.kernels.push(FastKernelEstimate {
            cycles,
            accesses: k.l1_accesses,
            mode,
        });
        if org == LlcOrgKind::Sac {
            let start_cycle = out.cycles - cycles;
            let decision_cycle = start_cycle + sac_cfg.profile_window.min(cycles);
            out.sac_history.push(KernelRecord {
                start_cycle,
                decision_cycle,
                inputs,
                eab_memory_side: model.eab_memory_side(&inputs),
                eab_sm_side: model.eab_sm_side(&inputs),
                mode: mode.unwrap_or(LlcMode::MemorySide),
                requests_observed: total,
                fallback: total < sac_cfg.min_samples,
            });
        }
    }
    // Writebacks of persisting contents: each dirty granule of the cell's
    // cumulative footprint goes back to DRAM once (on eviction or at the
    // end), scaled by the cell's write mix.
    let cell_flushes = cfg.coherence == CoherenceKind::Software
        && (org == LlcOrgKind::SmSide
            || (org == LlcOrgKind::Sac
                && out.sac_history.iter().all(|r| r.mode == LlcMode::SmSide)));
    if !cell_flushes && out.llc_accesses > 0 {
        let footprint: u64 = kernels
            .last()
            .map(|k| k.cum_distinct_homed.iter().sum())
            .unwrap_or(0);
        // Profiles count sector granules on sectored machines; dirty lines
        // write back whole, so collapse the footprint to line granularity.
        let footprint = if cfg.sectored {
            footprint / u64::from(cfg.sectors_per_line)
        } else {
            footprint
        };
        let write_frac = cell_writes as f64 / out.llc_accesses as f64;
        out.dram_writes += (footprint as f64 * write_frac).round() as u64;
    }
    out.llc_hits = out.llc_hits.min(out.llc_accesses);
    out.llc_local_fraction = if out.llc_accesses == 0 {
        1.0
    } else {
        local_weight / out.llc_accesses as f64
    };
    out
}

/// Cell-level hit rate of an estimate.
pub fn hit_rate(e: &FastCellEstimate) -> f64 {
    if e.llc_accesses == 0 {
        0.0
    } else {
        e.llc_hits as f64 / e.llc_accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-chip kernel; `prior` of its accesses re-touch granules
    /// from earlier kernels.
    fn one_chip_kernel(reads: u64, distinct: u64, prior: u64) -> KernelProfile {
        KernelProfile {
            issue_cycles: reads,
            l1_accesses: reads * 2,
            l1_hits: reads,
            reads,
            writes: 0,
            local_accesses: vec![reads, 0, 0, 0],
            remote_accesses: vec![0; 4],
            distinct_local: vec![distinct, 0, 0, 0],
            distinct_remote: vec![0; 4],
            homed_accesses: vec![reads, 0, 0, 0],
            distinct_homed: vec![distinct, 0, 0, 0],
            prior_homed: vec![prior, 0, 0, 0],
            prior_local: vec![prior, 0, 0, 0],
            cum_distinct_homed: vec![distinct + prior, 0, 0, 0],
            cum_distinct_local: vec![distinct + prior, 0, 0, 0],
        }
    }

    #[test]
    fn retained_hit_model_limits() {
        // Footprint fits: every cross-kernel re-access hits.
        assert_eq!(retained(100, 50, 200.0), 100.0);
        // Footprint double the capacity: half of them do.
        assert_eq!(retained(100, 400, 200.0), 50.0);
        // No prior reuse, no hits.
        assert_eq!(retained(0, 500, 200.0), 0.0);
        assert_eq!(retained(10, 0, 200.0), 0.0);
    }

    #[test]
    fn cross_kernel_reuse_hits_only_when_contents_survive() {
        let mut cfg = MachineConfig::experiment_baseline();
        let sac_cfg = SacConfig::for_machine(&cfg);
        // Kernel 1 is all first touches; kernel 2 re-touches them.
        let k = vec![
            one_chip_kernel(1_000, 1_000, 0),
            one_chip_kernel(1_000, 0, 1_000),
        ];
        let mem = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::MemorySide, &k);
        assert_eq!(mem.llc_hits, 1_000, "home data persists across kernels");
        // SM-side replicas are flushed wholesale at software boundaries.
        let sm_sw = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::SmSide, &k);
        assert_eq!(sm_sw.llc_hits, 0);
        // Under hardware coherence only remote replicas drop; these
        // granules are locally homed, so they keep serving.
        cfg.coherence = mcgpu_types::CoherenceKind::Hardware;
        let sm_hw = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::SmSide, &k);
        assert_eq!(sm_hw.llc_hits, 1_000);
    }

    #[test]
    fn remote_repeats_cross_the_fabric_once_per_kernel_under_replication() {
        let cfg = MachineConfig::experiment_baseline();
        let sac_cfg = SacConfig::for_machine(&cfg);
        // One chip hammers a small remote working set.
        let k = vec![KernelProfile {
            issue_cycles: 1_000,
            l1_accesses: 20_000,
            l1_hits: 10_000,
            reads: 10_000,
            writes: 0,
            local_accesses: vec![1_000, 0, 0, 0],
            remote_accesses: vec![9_000, 0, 0, 0],
            distinct_local: vec![100, 0, 0, 0],
            distinct_remote: vec![300, 0, 0, 0],
            homed_accesses: vec![1_000, 3_000, 3_000, 3_000],
            distinct_homed: vec![100, 100, 100, 100],
            prior_homed: vec![0; 4],
            prior_local: vec![0; 4],
            cum_distinct_homed: vec![100, 100, 100, 100],
            cum_distinct_local: vec![100, 0, 0, 0],
        }];
        let sm = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::SmSide, &k);
        let mem = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::MemorySide, &k);
        // Memory-side sends all 9000 remote accesses across; replication
        // fetches each of the 300 distinct granules once.
        assert!(sm.fabric_bytes < mem.fabric_bytes / 10);
    }

    #[test]
    fn estimates_are_internally_consistent() {
        let cfg = MachineConfig::experiment_baseline();
        let sac_cfg = SacConfig::for_machine(&cfg);
        let k = vec![
            one_chip_kernel(5_000, 250, 0),
            one_chip_kernel(3_000, 0, 3_000),
        ];
        for org in LlcOrgKind::ALL {
            let e = estimate_cell(&cfg, &sac_cfg, org, &k);
            assert!(e.llc_hits <= e.llc_accesses, "{org:?}");
            assert_eq!(e.llc_accesses, 8_000);
            assert_eq!(e.kernels.len(), 2);
            assert!(e.cycles >= 8_000, "{org:?}: at least the issue bound");
            assert!((0.0..=1.0).contains(&hit_rate(&e)));
            assert!((0.0..=1.0).contains(&e.llc_local_fraction));
        }
        // SAC records one decision per kernel regardless of mode.
        let sac = estimate_cell(&cfg, &sac_cfg, LlcOrgKind::Sac, &k);
        assert_eq!(sac.sac_history.len(), 2);
    }
}
