//! Sharing-Aware Caching (SAC) — the contribution of Zhang et al., ISCA 2023.
//!
//! SAC reconfigures a multi-chip GPU's LLC between a **memory-side** and an
//! **SM-side** organization on a per-kernel basis, choosing whichever the
//! lightweight **Effective Available Bandwidth (EAB)** analytical model
//! (§3.3) predicts to provide more bandwidth *ahead of* the LLC. The pieces,
//! mapped to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | §3.3 EAB model, Tables 1–2 | [`eab`] |
//! | §3.4 Chip Request Directory (Fig. 7) | [`crd`] |
//! | §3.4 LSU / request counters | [`counters`] |
//! | §3.2/§3.5 runtime: profile → decide(θ) → reconfigure | [`controller`] |
//! | §3.6 hardware overhead (620/812 B per chip) | [`overhead`] |
//!
//! # Example: the EAB decision
//!
//! ```
//! use sac::eab::{ArchBandwidth, EabInputs, EabModel};
//!
//! let arch = ArchBandwidth {
//!     b_intra: 4096.0,
//!     b_inter: 192.0,
//!     b_llc: 4000.0,
//!     b_mem: 437.5,
//! };
//! let model = EabModel::new(arch);
//! // Lots of remote traffic that would hit locally if replicated:
//! let inputs = EabInputs {
//!     r_local: 0.4,
//!     llc_hit_memory_side: 0.6,
//!     llc_hit_sm_side: 0.55,
//!     lsu_memory_side: 0.5,
//!     lsu_sm_side: 0.95,
//! };
//! let eab_sm = model.eab_sm_side(&inputs);
//! let eab_mem = model.eab_memory_side(&inputs);
//! assert!(eab_sm > eab_mem);
//! assert_eq!(model.decide(&inputs, 0.05), sac::LlcMode::SmSide);
//! ```

pub mod controller;
pub mod counters;
pub mod crd;
pub mod eab;
pub mod estimate;
pub mod overhead;

pub use controller::{SacConfig, SacController, SacState};
pub use counters::{lsu, ProfileCollector};
pub use crd::Crd;
pub use eab::{ArchBandwidth, EabInputs, EabModel, FabricCapacity};
pub use estimate::{estimate_cell, FastCellEstimate, FastKernelEstimate, KernelProfile};
pub use overhead::HardwareOverhead;

/// The two LLC modes SAC switches between (the reconfigurable subset of
/// `mcgpu_types::LlcOrgKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcMode {
    /// Slices cache the local memory partition's data for all chips.
    MemorySide,
    /// Slices cache whatever the local SMs access.
    SmSide,
}

impl LlcMode {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LlcMode::MemorySide => "memory-side",
            LlcMode::SmSide => "SM-side",
        }
    }

    /// Inverse of [`LlcMode::label`], for reading serialized run records.
    pub fn from_label(label: &str) -> Option<LlcMode> {
        match label {
            "memory-side" => Some(LlcMode::MemorySide),
            "SM-side" => Some(LlcMode::SmSide),
            _ => None,
        }
    }
}

impl std::fmt::Display for LlcMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}
