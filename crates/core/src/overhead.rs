//! SAC hardware overhead accounting (§3.6).
//!
//! Per chip, SAC adds: the CRD (544 B conventional / 736 B sectored), one
//! 16-bit request counter per LLC slice for each of the two configurations,
//! and four 24-bit counters (total/local requests, CRD requests/hits). For
//! the baseline 16 slices per chip that totals **620 B** (conventional) or
//! **812 B** (sectored), matching the paper.

/// Per-chip storage overhead breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    crd_bytes: usize,
    slices_per_chip: usize,
}

impl HardwareOverhead {
    /// Build from a CRD storage size and the chip's slice count.
    pub fn new(crd_bytes: usize, slices_per_chip: usize) -> Self {
        HardwareOverhead {
            crd_bytes,
            slices_per_chip,
        }
    }

    /// The paper's conventional-cache configuration (16 slices per chip).
    pub fn paper_conventional() -> Self {
        HardwareOverhead::new(544, 16)
    }

    /// The paper's sectored-cache configuration.
    pub fn paper_sectored() -> Self {
        HardwareOverhead::new(736, 16)
    }

    /// CRD storage in bytes.
    pub fn crd_bytes(&self) -> usize {
        self.crd_bytes
    }

    /// LSU counter storage: one 16-bit counter per slice, for both the
    /// memory-side and SM-side configurations.
    pub fn lsu_counter_bytes(&self) -> usize {
        2 * self.slices_per_chip * 2
    }

    /// The four 24-bit scalar counters.
    pub fn scalar_counter_bytes(&self) -> usize {
        4 * 3
    }

    /// Total per-chip storage in bytes.
    pub fn total_bytes(&self) -> usize {
        self.crd_bytes() + self.lsu_counter_bytes() + self.scalar_counter_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals() {
        // §3.6: 620 B conventional, 812 B sectored per chip.
        assert_eq!(HardwareOverhead::paper_conventional().total_bytes(), 620);
        assert_eq!(HardwareOverhead::paper_sectored().total_bytes(), 812);
    }

    #[test]
    fn components() {
        let o = HardwareOverhead::paper_conventional();
        assert_eq!(o.crd_bytes(), 544);
        assert_eq!(o.lsu_counter_bytes(), 64);
        assert_eq!(o.scalar_counter_bytes(), 12);
    }
}
