//! Hand-computed checks of the EAB model against Table 1's formulas, plus
//! controller edge cases.

use mcgpu_types::MachineConfig;
use sac::controller::{SacConfig, SacController, SacState};
use sac::eab::{ArchBandwidth, EabInputs, EabModel};
use sac::LlcMode;

fn arch() -> ArchBandwidth {
    ArchBandwidth {
        b_intra: 4096.0,
        b_inter: 192.0,
        b_llc: 4000.0,
        b_mem: 437.5,
    }
}

/// Reference implementation transcribed directly from Table 1.
fn reference_eab(a: &ArchBandwidth, i: &EabInputs, sm_side: bool) -> f64 {
    let (lsu, hit) = if sm_side {
        (i.lsu_sm_side, i.llc_hit_sm_side)
    } else {
        (i.lsu_memory_side, i.llc_hit_memory_side)
    };
    let (rl, rr) = (i.r_local, 1.0 - i.r_local);
    let hit_bw = a.b_llc * lsu * hit;
    let miss_bw = a.b_llc * lsu * (1.0 - hit);
    let side = |b_sm_llc: f64, r: f64, b_llc_mem: f64| {
        f64::min(
            b_sm_llc,
            hit_bw * r + f64::min(f64::min(miss_bw * r, b_llc_mem), a.b_mem * r),
        )
    };
    if sm_side {
        side(a.b_intra * rl, rl, f64::INFINITY) + side(a.b_intra * rr, rr, a.b_inter)
    } else {
        side(a.b_intra, rl, f64::INFINITY) + side(a.b_inter, rr, f64::INFINITY)
    }
}

#[test]
fn model_matches_table1_transcription() {
    let model = EabModel::new(arch());
    for rl in [0.0, 0.25, 0.5, 0.75, 1.0] {
        for hit in [0.0, 0.3, 0.7, 1.0] {
            for lsu in [0.25, 0.6, 1.0] {
                let i = EabInputs {
                    r_local: rl,
                    llc_hit_memory_side: hit,
                    llc_hit_sm_side: hit * 0.8,
                    lsu_memory_side: lsu,
                    lsu_sm_side: (lsu + 0.1).min(1.0),
                };
                let a = arch();
                assert!(
                    (model.eab_memory_side(&i) - reference_eab(&a, &i, false)).abs() < 1e-9,
                    "memory-side mismatch at rl={rl} hit={hit} lsu={lsu}"
                );
                assert!(
                    (model.eab_sm_side(&i) - reference_eab(&a, &i, true)).abs() < 1e-9,
                    "SM-side mismatch at rl={rl} hit={hit} lsu={lsu}"
                );
            }
        }
    }
}

#[test]
fn arch_bandwidths_match_table3() {
    let a = ArchBandwidth::from_config(&MachineConfig::paper_baseline());
    assert!((a.b_intra - 4096.0).abs() < 1e-9);
    assert!((a.b_inter - 192.0).abs() < 1e-9);
    assert!((a.b_llc - 4000.0).abs() < 1e-9);
    assert!((a.b_mem - 437.5).abs() < 1e-9);
}

#[test]
fn window_extends_until_min_samples() {
    let model = EabModel::new(arch());
    let config = SacConfig {
        profile_window: 100,
        min_samples: 50,
        ..SacConfig::default()
    };
    let mut ctl = SacController::new(config, model, 4, 64, 128, false);
    ctl.begin_kernel(0);
    // Nothing observed: the window must extend rather than decide.
    assert!(ctl.tick(100).is_none());
    assert!(matches!(ctl.state(), SacState::Profiling { .. }));
    // Feed enough samples; the extended window then closes.
    for i in 0..60u64 {
        ctl.collector_mut().observe_request(
            mcgpu_types::ChipId(0),
            mcgpu_types::ChipId(0),
            mcgpu_types::LineAddr(i),
            None,
            0,
            0,
        );
    }
    let rec = ctl.tick(150).expect("decision after extension");
    assert!(rec.requests_observed >= 50);
}

#[test]
fn window_gives_up_after_hard_cap() {
    let model = EabModel::new(arch());
    let config = SacConfig {
        profile_window: 100,
        min_samples: 1_000_000, // unreachable
        ..SacConfig::default()
    };
    let mut ctl = SacController::new(config, model, 4, 64, 128, false);
    ctl.begin_kernel(0);
    let mut decided = None;
    for now in (100..2_000).step_by(50) {
        if let Some(r) = ctl.tick(now) {
            decided = Some(r);
            break;
        }
    }
    let rec = decided.expect("hard cap (8x window) forces a decision");
    // With zero observations the defaults keep the memory-side baseline.
    assert_eq!(rec.mode, LlcMode::MemorySide);
}
