//! DRAM channel and memory partition models.
//!
//! Each chip owns one memory partition of `channels_per_chip` DRAM channels
//! (Table 3: 8 channels, 1.75 TB/s ÷ 32 total). A channel is a
//! bandwidth-limited, fixed-latency [`Pipe`]; bank conflicts are not
//! modelled because the PAE mapping distributes accesses uniformly over
//! banks (§3.3: "We verified that this is indeed the case for our setup").

use crate::interleave;
use mcgpu_types::{AccessKind, LineAddr, Pipe, Request};

/// A request queued at a DRAM channel, retaining what the simulator needs to
/// route the eventual response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// The originating memory request.
    pub request: Request,
    /// Whether the miss was issued by an LLC slice on the partition's own
    /// chip (`false` means an SM-side remote miss that bypassed the local
    /// slice and must return over the inter-chip link).
    pub from_local_slice: bool,
    /// Index (within the chip) of the slice that should be filled when the
    /// access completes, if any.
    pub slice: Option<u16>,
}

/// One chip's memory partition: a set of independent DRAM channels.
#[derive(Debug, Clone)]
pub struct MemoryPartition {
    channels: Vec<Pipe<DramRequest>>,
    /// Channels still accepting traffic; a failed channel's queue is
    /// redistributed and it stops being a PAE target.
    channel_alive: Vec<bool>,
    base_channel_gbs: f64,
    line_size: u64,
    served_reads: u64,
    served_writes: u64,
    /// Bytes accepted into the partition (reads, writes and writebacks;
    /// observability tap — channel re-distribution after a fault does not
    /// re-count).
    accepted_bytes: u64,
}

impl MemoryPartition {
    /// Create a partition with `channels` channels of `channel_gbs` GB/s
    /// each, `latency` cycles access latency, and `line_size`-byte lines.
    ///
    /// # Panics
    /// Panics if `channels` is zero.
    pub fn new(channels: usize, channel_gbs: f64, latency: u64, line_size: u64) -> Self {
        assert!(channels > 0);
        MemoryPartition {
            channels: (0..channels)
                .map(|_| Pipe::new(channel_gbs, latency, None))
                .collect(),
            channel_alive: vec![true; channels],
            base_channel_gbs: channel_gbs,
            line_size,
            served_reads: 0,
            served_writes: 0,
            accepted_bytes: 0,
        }
    }

    /// Number of channels (including failed ones).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of channels still serving traffic.
    pub fn live_channels(&self) -> usize {
        self.channel_alive.iter().filter(|&&a| a).count()
    }

    /// The PAE target channel for `line`, skipping dead channels: the hash
    /// picks among live channels, so a failure re-spreads its traffic over
    /// the survivors deterministically.
    ///
    /// # Panics
    /// Panics if every channel has failed — the engine's fault plan is
    /// validated to keep at least the machine alive, and a fully dead
    /// partition would silently absorb requests otherwise.
    fn target_channel(&self, line: LineAddr) -> usize {
        let live = self.live_channels();
        assert!(
            live > 0,
            "invariant violated: memory partition has no live DRAM channels"
        );
        let pick = interleave::channel_index(line, live);
        self.channel_alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .nth(pick)
            .map(|(i, _)| i)
            .expect("nth(pick) exists: pick < live channel count")
    }

    /// Throttle every live channel to `factor` of its configured bandwidth
    /// (thermal throttling of the whole stack). In-flight accesses finish
    /// at their original timing.
    pub fn throttle(&mut self, factor: f64) {
        let rate = self.base_channel_gbs * factor;
        for (ch, alive) in self.channels.iter_mut().zip(&self.channel_alive) {
            if *alive {
                ch.set_rate(rate);
            }
        }
    }

    /// Fail one channel: it stops being a PAE target and everything queued
    /// or in flight on it is re-issued to the surviving channels (conserved,
    /// re-paying queueing but not losing requests).
    ///
    /// Failing the last live channel is rejected (no-op returning `false`)
    /// — a chip with zero DRAM would wedge every organization identically,
    /// which is not an interesting experiment and would violate the
    /// request-conservation property.
    pub fn fail_channel(&mut self, channel: usize) -> bool {
        if !self.channel_alive[channel] || self.live_channels() == 1 {
            return false;
        }
        self.channel_alive[channel] = false;
        for dreq in self.channels[channel].drain() {
            self.repush(dreq);
        }
        true
    }

    /// The DRAM byte cost of `dreq`.
    fn byte_cost(&self, dreq: &DramRequest) -> u64 {
        if dreq.request.id == mcgpu_types::RequestId(u64::MAX) {
            self.line_size // writeback sentinel: full dirty line
        } else {
            match dreq.request.access.kind {
                AccessKind::Read => self.line_size,
                AccessKind::Write => mcgpu_types::packet::WRITE_PAYLOAD_BYTES,
            }
        }
    }

    /// Route `dreq` to its (live) PAE channel, charging the right byte cost.
    fn repush(&mut self, dreq: DramRequest) {
        let line = dreq.request.access.addr.line(self.line_size);
        let ch = self.target_channel(line);
        let bytes = self.byte_cost(&dreq);
        // DRAM channels are unbounded queues: backpressure is applied
        // upstream by the LLC/NoC queues in the simulator.
        self.channels[ch]
            .try_push(dreq, bytes)
            .expect("unbounded channel queue");
    }

    /// Enqueue a request; the channel is chosen by the PAE hash of the line
    /// address. Reads occupy a line of DRAM bandwidth; writes likewise
    /// (write-through traffic ultimately writes a full line's sector burst —
    /// we charge the 32 B coalesced sector).
    pub fn push(&mut self, dreq: DramRequest) {
        self.accepted_bytes += self.byte_cost(&dreq);
        self.repush(dreq);
    }

    /// Enqueue a raw writeback of `line` (dirty eviction) without an
    /// originating request; consumes bandwidth but produces no response.
    pub fn push_writeback(&mut self, line: LineAddr) {
        // A writeback moves a full dirty line. We model it as a bandwidth
        // consumer only: push a sentinel that is dropped on completion.
        let sentinel = DramRequest {
            request: Request {
                id: mcgpu_types::RequestId(u64::MAX),
                origin: mcgpu_types::ClusterId::default(),
                access: mcgpu_types::MemAccess::write(line.base(self.line_size)),
                home: mcgpu_types::ChipId::default(),
            },
            from_local_slice: true,
            slice: None,
        };
        self.accepted_bytes += self.byte_cost(&sentinel);
        self.repush(sentinel);
    }

    /// Advance all channels one cycle.
    pub fn tick(&mut self, now: u64) {
        for ch in &mut self.channels {
            ch.tick(now);
        }
    }

    /// Whether ticking the partition is a state no-op: every channel pipe
    /// is empty and its bandwidth budget has saturated at the credit cap.
    /// The engine's idle-cycle skip requires this before jumping the clock.
    pub fn tick_is_noop(&self) -> bool {
        self.channels.iter().all(Pipe::tick_is_noop)
    }

    /// Pop all requests whose DRAM access completed this cycle. Writeback
    /// sentinels are filtered out here.
    pub fn pop_ready(&mut self, now: u64) -> Vec<DramRequest> {
        let mut out = Vec::new();
        self.pop_ready_into(now, &mut out);
        out
    }

    /// Like [`pop_ready`](MemoryPartition::pop_ready), but appends into a
    /// caller-owned buffer — the per-cycle simulator loop reuses one
    /// scratch `Vec` instead of allocating each cycle.
    pub fn pop_ready_into(&mut self, now: u64, out: &mut Vec<DramRequest>) {
        for ch in &mut self.channels {
            while let Some(d) = ch.pop_ready(now) {
                if d.request.id == mcgpu_types::RequestId(u64::MAX) {
                    continue; // completed writeback
                }
                match d.request.access.kind {
                    AccessKind::Read => self.served_reads += 1,
                    AccessKind::Write => self.served_writes += 1,
                }
                out.push(d);
            }
        }
    }

    /// Total requests currently inside the partition.
    pub fn len(&self) -> usize {
        self.channels.iter().map(|c| c.len()).sum()
    }

    /// Entries carrying a live request (writeback sentinels excluded) —
    /// exactly the entries the engine's in-flight counter covers, for the
    /// request-conservation audit.
    pub fn pending_requests(&self) -> usize {
        self.channels
            .iter()
            .flat_map(|c| c.iter())
            .filter(|d| d.request.id != mcgpu_types::RequestId(u64::MAX))
            .count()
    }

    /// Whether all channels are idle.
    pub fn is_empty(&self) -> bool {
        self.channels.iter().all(|c| c.is_empty())
    }

    /// Reads served so far.
    pub fn served_reads(&self) -> u64 {
        self.served_reads
    }

    /// Writes served so far.
    pub fn served_writes(&self) -> u64 {
        self.served_writes
    }

    /// Bytes accepted into the partition so far (observability tap).
    pub fn accepted_bytes(&self) -> u64 {
        self.accepted_bytes
    }

    /// Serialize the full partition state (every channel pipe with queued
    /// and in-flight requests, liveness, counters) into a checkpoint
    /// payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.channels.len());
        let put_dreq = |e: &mut mcgpu_types::Enc, dreq: &DramRequest| {
            e.put_request(&dreq.request);
            e.put_bool(dreq.from_local_slice);
            match dreq.slice {
                None => e.put_bool(false),
                Some(s) => {
                    e.put_bool(true);
                    e.put_u16(s);
                }
            }
        };
        for (ch, alive) in self.channels.iter().zip(&self.channel_alive) {
            ch.save_with(e, put_dreq);
            e.put_bool(*alive);
        }
        e.put_f64(self.base_channel_gbs);
        e.put_u64(self.line_size);
        e.put_u64(self.served_reads);
        e.put_u64(self.served_writes);
        e.put_u64(self.accepted_bytes);
    }

    /// Overwrite this partition's state from a payload saved by
    /// [`MemoryPartition::save`]. The partition must have been constructed
    /// with the same channel count.
    ///
    /// # Errors
    /// Returns a decode error on truncated input or a channel-count
    /// mismatch.
    pub fn load_into(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        let n = d.get_seq_len()?;
        if n != self.channels.len() {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "DRAM channel count mismatch: snapshot {n}, live {}",
                self.channels.len()
            )));
        }
        let get_dreq = |d: &mut mcgpu_types::Dec<'_>| -> mcgpu_types::CkptResult<DramRequest> {
            let request = d.get_request()?;
            let from_local_slice = d.get_bool()?;
            let slice = if d.get_bool()? {
                Some(d.get_u16()?)
            } else {
                None
            };
            Ok(DramRequest {
                request,
                from_local_slice,
                slice,
            })
        };
        for i in 0..n {
            self.channels[i] = Pipe::load_with(d, get_dreq)?;
            self.channel_alive[i] = d.get_bool()?;
        }
        self.base_channel_gbs = d.get_f64()?;
        self.line_size = d.get_u64()?;
        self.served_reads = d.get_u64()?;
        self.served_writes = d.get_u64()?;
        self.accepted_bytes = d.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::{Address, ChipId, ClusterId, MemAccess, RequestId};

    fn req(id: u64, addr: u64, write: bool) -> DramRequest {
        DramRequest {
            request: Request {
                id: RequestId(id),
                origin: ClusterId::new(ChipId(0), 0),
                access: if write {
                    MemAccess::write(Address::new(addr))
                } else {
                    MemAccess::read(Address::new(addr))
                },
                home: ChipId(0),
            },
            from_local_slice: true,
            slice: None,
        }
    }

    #[test]
    fn read_completes_after_latency() {
        let mut mp = MemoryPartition::new(2, 1000.0, 100, 128);
        mp.push(req(1, 0x1000, false));
        for now in 0..100 {
            mp.tick(now);
            assert!(mp.pop_ready(now).is_empty(), "at {now}");
        }
        mp.tick(100);
        let done = mp.pop_ready(100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].request.id, RequestId(1));
        assert_eq!(mp.served_reads(), 1);
    }

    #[test]
    fn bandwidth_throttles_throughput() {
        // 1 channel x 16 B/cycle; 128 B reads: one completes every 8 cycles.
        let mut mp = MemoryPartition::new(1, 16.0, 0, 128);
        for i in 0..100 {
            mp.push(req(i, i * 128, false));
        }
        let mut completed = 0;
        for now in 0..400 {
            mp.tick(now);
            completed += mp.pop_ready(now).len();
        }
        // ~400/8 = 50 reads in 400 cycles.
        assert!((45..=55).contains(&completed), "completed {completed}");
    }

    #[test]
    fn channels_work_in_parallel() {
        let mut one = MemoryPartition::new(1, 16.0, 0, 128);
        let mut eight = MemoryPartition::new(8, 16.0, 0, 128);
        for i in 0..400 {
            one.push(req(i, i * 128, false));
            eight.push(req(i, i * 128, false));
        }
        let (mut c1, mut c8) = (0, 0);
        for now in 0..400 {
            one.tick(now);
            eight.tick(now);
            c1 += one.pop_ready(now).len();
            c8 += eight.pop_ready(now).len();
        }
        assert!(c8 > 5 * c1, "c1={c1} c8={c8}");
    }

    #[test]
    fn writebacks_consume_bandwidth_but_produce_nothing() {
        let mut mp = MemoryPartition::new(1, 16.0, 0, 128);
        mp.push_writeback(LineAddr(1));
        mp.push(req(7, 0x5000, false));
        let mut got = Vec::new();
        for now in 0..64 {
            mp.tick(now);
            got.extend(mp.pop_ready(now));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].request.id, RequestId(7));
    }

    #[test]
    fn failed_channel_redistributes_and_conserves() {
        let mut mp = MemoryPartition::new(4, 16.0, 0, 128);
        for i in 0..64 {
            mp.push(req(i, i * 128, false));
        }
        let queued = mp.len();
        assert!(mp.fail_channel(1));
        assert_eq!(mp.len(), queued, "failure must not lose requests");
        let mut completed = 0;
        for now in 0..2000 {
            mp.tick(now);
            completed += mp.pop_ready(now).len();
        }
        assert_eq!(completed, 64, "every request still completes");
        assert_eq!(mp.live_channels(), 3);
        // Dead channels never receive new traffic.
        assert!(!mp.fail_channel(1), "double-failing is a no-op");
    }

    #[test]
    fn last_live_channel_cannot_fail() {
        let mut mp = MemoryPartition::new(2, 16.0, 0, 128);
        assert!(mp.fail_channel(0));
        assert!(!mp.fail_channel(1), "last channel must survive");
        assert_eq!(mp.live_channels(), 1);
        mp.push(req(1, 0x1000, false));
        mp.tick(0);
        assert_eq!(mp.pop_ready(0).len(), 1);
    }

    #[test]
    fn throttle_halves_throughput() {
        let mut full = MemoryPartition::new(1, 16.0, 0, 128);
        let mut slow = MemoryPartition::new(1, 16.0, 0, 128);
        slow.throttle(0.5);
        for i in 0..200 {
            full.push(req(i, i * 128, false));
            slow.push(req(i, i * 128, false));
        }
        let (mut cf, mut cs) = (0, 0);
        for now in 0..800 {
            full.tick(now);
            slow.tick(now);
            cf += full.pop_ready(now).len();
            cs += slow.pop_ready(now).len();
        }
        let ratio = cs as f64 / cf as f64;
        assert!((0.4..=0.6).contains(&ratio), "cf={cf} cs={cs}");
    }

    #[test]
    fn writes_are_counted() {
        let mut mp = MemoryPartition::new(1, 1000.0, 1, 128);
        mp.push(req(1, 0, true));
        for now in 0..4 {
            mp.tick(now);
            mp.pop_ready(now);
        }
        assert_eq!(mp.served_writes(), 1);
    }
}
