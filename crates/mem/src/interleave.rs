//! PAE-style randomized address interleaving.
//!
//! The paper adopts the PAE address-mapping scheme (Liu et al., "Get Out of
//! the Valley", ISCA 2018), which XOR-hashes physical addresses so that
//! accesses distribute uniformly over LLC slices, memory channels and banks
//! even for strided access patterns. We model PAE with a strong 64-bit
//! mixing function salted per destination kind, which achieves the same
//! uniformity property (verified by the tests below and by a property test).

use mcgpu_types::LineAddr;

/// splitmix64 finalizer — a full-avalanche 64-bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Salts decorrelating the slice, channel and bank mappings so a line's
/// slice says nothing about its channel.
const SLICE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const CHANNEL_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;
const BANK_SALT: u64 = 0x1656_67b1_9e37_79f9;

/// LLC slice index (within a chip) for `line`, with `slices` slices.
///
/// Used by the memory-side organization to pick the home chip's slice, and
/// by the SM-side organization to pick the local slice.
///
/// # Panics
/// Panics if `slices` is zero.
#[inline]
pub fn slice_index(line: LineAddr, slices: usize) -> usize {
    assert!(slices > 0);
    (mix(line.index() ^ SLICE_SALT) % slices as u64) as usize
}

/// DRAM channel index (within a partition) for `line`, with `channels`
/// channels.
///
/// # Panics
/// Panics if `channels` is zero.
#[inline]
pub fn channel_index(line: LineAddr, channels: usize) -> usize {
    assert!(channels > 0);
    (mix(line.index() ^ CHANNEL_SALT) % channels as u64) as usize
}

/// DRAM bank index (within a channel) for `line`, with `banks` banks.
///
/// # Panics
/// Panics if `banks` is zero.
#[inline]
pub fn bank_index(line: LineAddr, banks: usize) -> usize {
    assert!(banks > 0);
    (mix(line.index() ^ BANK_SALT) % banks as u64) as usize
}

/// Chi-squared-style uniformity score: the ratio of the maximum bucket count
/// to the mean bucket count when distributing `lines` over `buckets` with
/// `f`. A perfectly uniform mapping scores 1.0.
pub fn uniformity<F: Fn(LineAddr, usize) -> usize>(
    lines: impl Iterator<Item = LineAddr>,
    buckets: usize,
    f: F,
) -> f64 {
    let mut counts = vec![0u64; buckets];
    let mut total = 0u64;
    for l in lines {
        counts[f(l, buckets)] += 1;
        total += 1;
    }
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / buckets as f64;
    let max = *counts.iter().max().expect("buckets > 0") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_traffic_spreads_uniformly() {
        // Pathological power-of-two stride (every 32nd line).
        let lines = (0..16_000u64).map(|i| LineAddr(i * 32));
        let score = uniformity(lines, 16, slice_index);
        assert!(score < 1.15, "slice uniformity {score}");

        let lines = (0..16_000u64).map(|i| LineAddr(i * 32));
        let score = uniformity(lines, 8, channel_index);
        assert!(score < 1.15, "channel uniformity {score}");
    }

    #[test]
    fn sequential_traffic_spreads_uniformly() {
        let lines = (0..10_000u64).map(LineAddr);
        assert!(uniformity(lines, 16, slice_index) < 1.15);
        let lines = (0..10_000u64).map(LineAddr);
        assert!(uniformity(lines, 32, bank_index) < 1.2);
    }

    #[test]
    fn mappings_are_decorrelated() {
        // Lines landing in slice 0 must still spread over all channels.
        let in_slice0: Vec<LineAddr> = (0..200_000u64)
            .map(LineAddr)
            .filter(|&l| slice_index(l, 16) == 0)
            .collect();
        assert!(in_slice0.len() > 5_000);
        let score = uniformity(in_slice0.into_iter(), 8, channel_index);
        assert!(score < 1.2, "decorrelation {score}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            slice_index(LineAddr(1234), 16),
            slice_index(LineAddr(1234), 16)
        );
        assert_eq!(
            channel_index(LineAddr(99), 8),
            channel_index(LineAddr(99), 8)
        );
    }

    #[test]
    fn single_bucket() {
        assert_eq!(slice_index(LineAddr(42), 1), 0);
        assert_eq!(channel_index(LineAddr(42), 1), 0);
    }
}
