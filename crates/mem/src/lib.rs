//! Memory-system substrates: first-touch page table, PAE-style randomized
//! address interleaving, and DRAM channel models.
//!
//! The paper's baseline (Table 3 / §4) uses
//!
//! * **first-touch page allocation** — a 4 KiB page is installed in the
//!   memory partition of the chip that first accesses it ([`PageTable`]),
//! * **PAE randomized address mapping** (Liu et al., ISCA 2018) — a mixing
//!   hash that spreads lines uniformly over LLC slices, DRAM channels and
//!   banks ([`interleave`]), and
//! * per-chip memory partitions of eight GDDR6 channels
//!   ([`MemoryPartition`]).
//!
//! # Example
//!
//! ```
//! use mcgpu_mem::PageTable;
//! use mcgpu_types::{ChipId, PageAddr};
//!
//! let mut pt = PageTable::new(4096);
//! // Chip 2 touches page 7 first: the page is homed there forever.
//! assert_eq!(pt.home_of(PageAddr(7), ChipId(2)), ChipId(2));
//! assert_eq!(pt.home_of(PageAddr(7), ChipId(0)), ChipId(2));
//! ```

pub mod dram;
pub mod interleave;
pub mod page_table;

pub use dram::{DramRequest, MemoryPartition};
pub use page_table::PageTable;
