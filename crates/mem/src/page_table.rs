//! First-touch page allocation.

use mcgpu_types::{ChipId, PageAddr};
use std::collections::HashMap;

/// Maps pages to home memory partitions using first-touch allocation
/// (Arunkumar et al.): the first chip to access any line of a page becomes
/// the page's home for the rest of the execution.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    homes: HashMap<PageAddr, ChipId>,
    pages_per_chip: Vec<u64>,
}

impl PageTable {
    /// Create an empty page table for `page_size`-byte pages.
    ///
    /// # Panics
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageTable {
            page_size,
            homes: HashMap::new(),
            pages_per_chip: Vec::new(),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Home chip of `page`, allocating it to `toucher`'s partition if this is
    /// the first access (first-touch policy).
    pub fn home_of(&mut self, page: PageAddr, toucher: ChipId) -> ChipId {
        match self.homes.entry(page) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(toucher);
                let idx = toucher.index();
                if self.pages_per_chip.len() <= idx {
                    self.pages_per_chip.resize(idx + 1, 0);
                }
                self.pages_per_chip[idx] += 1;
                toucher
            }
        }
    }

    /// Home chip of `page` if already mapped.
    pub fn lookup(&self, page: PageAddr) -> Option<ChipId> {
        self.homes.get(&page).copied()
    }

    /// Number of pages mapped so far.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Pages homed at each chip (index = chip index).
    pub fn pages_per_chip(&self) -> &[u64] {
        &self.pages_per_chip
    }

    /// Total bytes of memory footprint mapped so far.
    pub fn footprint_bytes(&self) -> u64 {
        self.homes.len() as u64 * self.page_size
    }

    /// Forget all mappings (new application run).
    pub fn clear(&mut self) {
        self.homes.clear();
        self.pages_per_chip.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_sticky() {
        let mut pt = PageTable::new(4096);
        assert_eq!(pt.home_of(PageAddr(1), ChipId(3)), ChipId(3));
        for chip in 0..4u8 {
            assert_eq!(pt.home_of(PageAddr(1), ChipId(chip)), ChipId(3));
        }
        assert_eq!(pt.lookup(PageAddr(1)), Some(ChipId(3)));
        assert_eq!(pt.lookup(PageAddr(2)), None);
    }

    #[test]
    fn counts_and_footprint() {
        let mut pt = PageTable::new(4096);
        pt.home_of(PageAddr(0), ChipId(0));
        pt.home_of(PageAddr(1), ChipId(0));
        pt.home_of(PageAddr(2), ChipId(1));
        assert_eq!(pt.len(), 3);
        assert_eq!(pt.pages_per_chip(), &[2, 1]);
        assert_eq!(pt.footprint_bytes(), 3 * 4096);
        pt.clear();
        assert!(pt.is_empty());
        assert_eq!(pt.footprint_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        PageTable::new(3000);
    }
}
