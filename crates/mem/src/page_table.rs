//! First-touch page allocation.

use mcgpu_types::{ChipId, PageAddr};
use std::collections::HashMap;

/// Maps pages to home memory partitions using first-touch allocation
/// (Arunkumar et al.): the first chip to access any line of a page becomes
/// the page's home for the rest of the execution.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    homes: HashMap<PageAddr, ChipId>,
    pages_per_chip: Vec<u64>,
}

impl PageTable {
    /// Create an empty page table for `page_size`-byte pages.
    ///
    /// # Panics
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageTable {
            page_size,
            homes: HashMap::new(),
            pages_per_chip: Vec::new(),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Home chip of `page`, allocating it to `toucher`'s partition if this is
    /// the first access (first-touch policy).
    pub fn home_of(&mut self, page: PageAddr, toucher: ChipId) -> ChipId {
        match self.homes.entry(page) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(toucher);
                let idx = toucher.index();
                if self.pages_per_chip.len() <= idx {
                    self.pages_per_chip.resize(idx + 1, 0);
                }
                self.pages_per_chip[idx] += 1;
                toucher
            }
        }
    }

    /// Home chip of `page` if already mapped.
    pub fn lookup(&self, page: PageAddr) -> Option<ChipId> {
        self.homes.get(&page).copied()
    }

    /// Number of pages mapped so far.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Pages homed at each chip (index = chip index).
    pub fn pages_per_chip(&self) -> &[u64] {
        &self.pages_per_chip
    }

    /// Total bytes of memory footprint mapped so far.
    pub fn footprint_bytes(&self) -> u64 {
        self.homes.len() as u64 * self.page_size
    }

    /// Forget all mappings (new application run).
    pub fn clear(&mut self) {
        self.homes.clear();
        self.pages_per_chip.clear();
    }

    /// Serialize the page table into a checkpoint payload. Mappings are
    /// written in sorted page order so the same table always encodes to
    /// the same bytes (hash-map iteration order is not deterministic).
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.page_size);
        let mut entries: Vec<(PageAddr, ChipId)> =
            self.homes.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_by_key(|&(p, _)| p);
        e.put_seq_len(entries.len());
        for (page, chip) in entries {
            e.put_u64(page.0);
            e.put_u8(chip.0);
        }
        e.put_seq_len(self.pages_per_chip.len());
        for &n in &self.pages_per_chip {
            e.put_u64(n);
        }
    }

    /// Deserialize a page table saved by [`PageTable::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let page_size = d.get_u64()?;
        if !page_size.is_power_of_two() {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "page size {page_size} is not a power of two"
            )));
        }
        let n = d.get_seq_len()?;
        let mut homes = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = PageAddr(d.get_u64()?);
            let chip = ChipId(d.get_u8()?);
            homes.insert(page, chip);
        }
        let n = d.get_seq_len()?;
        let mut pages_per_chip = Vec::with_capacity(n);
        for _ in 0..n {
            pages_per_chip.push(d.get_u64()?);
        }
        Ok(PageTable {
            page_size,
            homes,
            pages_per_chip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_sticky() {
        let mut pt = PageTable::new(4096);
        assert_eq!(pt.home_of(PageAddr(1), ChipId(3)), ChipId(3));
        for chip in 0..4u8 {
            assert_eq!(pt.home_of(PageAddr(1), ChipId(chip)), ChipId(3));
        }
        assert_eq!(pt.lookup(PageAddr(1)), Some(ChipId(3)));
        assert_eq!(pt.lookup(PageAddr(2)), None);
    }

    #[test]
    fn counts_and_footprint() {
        let mut pt = PageTable::new(4096);
        pt.home_of(PageAddr(0), ChipId(0));
        pt.home_of(PageAddr(1), ChipId(0));
        pt.home_of(PageAddr(2), ChipId(1));
        assert_eq!(pt.len(), 3);
        assert_eq!(pt.pages_per_chip(), &[2, 1]);
        assert_eq!(pt.footprint_bytes(), 3 * 4096);
        pt.clear();
        assert!(pt.is_empty());
        assert_eq!(pt.footprint_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        PageTable::new(3000);
    }
}
