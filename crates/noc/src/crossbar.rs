//! Output-queued crossbar with a bisection-bandwidth cap.

use mcgpu_types::{BandwidthBudget, Pipe};

/// An output-queued crossbar: every output port is a bandwidth- and
/// latency-limited FIFO, and a chip-wide bisection budget caps the total
/// bytes that may be injected per cycle across all ports.
///
/// This is the standard first-order model of a concentrated (hierarchical)
/// crossbar: internal contention shows up as the bisection cap, per-output
/// contention as the port queues. See the [crate docs](crate) for an
/// example.
#[derive(Debug, Clone)]
pub struct Crossbar<T> {
    outputs: Vec<Pipe<T>>,
    bisection: BandwidthBudget,
    injected_bytes: u64,
    rejected: u64,
}

impl<T> Crossbar<T> {
    /// Create a crossbar with `ports` output ports of `port_gbs` GB/s each,
    /// a total `bisection_gbs` injection cap, a per-hop `latency`, and a
    /// per-port queue depth of `queue_depth` packets.
    ///
    /// # Panics
    /// Panics if `ports` is zero.
    pub fn new(
        ports: usize,
        port_gbs: f64,
        bisection_gbs: f64,
        latency: u64,
        queue_depth: usize,
    ) -> Self {
        assert!(ports > 0);
        Crossbar {
            outputs: (0..ports)
                .map(|_| Pipe::new(port_gbs, latency, Some(queue_depth)))
                .collect(),
            bisection: BandwidthBudget::new(bisection_gbs),
            injected_bytes: 0,
            rejected: 0,
        }
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.outputs.len()
    }

    /// Try to inject `item` of `bytes` towards output `port`.
    ///
    /// # Errors
    /// Returns the item back when either the bisection budget for this cycle
    /// is exhausted or the port queue is full; the caller must retry next
    /// cycle (backpressure).
    ///
    /// # Panics
    /// Panics if `port` is out of range.
    pub fn try_push(&mut self, port: usize, item: T, bytes: u64) -> Result<(), T> {
        if !self.outputs[port].can_push() {
            self.rejected += 1;
            return Err(item);
        }
        if !self.bisection.try_consume(bytes) {
            self.rejected += 1;
            return Err(item);
        }
        self.injected_bytes += bytes;
        self.outputs[port].try_push(item, bytes) // cannot happen: can_push checked
    }

    /// Whether output `port` can currently accept a packet (ignoring the
    /// bisection budget).
    pub fn can_push(&self, port: usize) -> bool {
        self.outputs[port].can_push()
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: u64) {
        self.bisection.refill();
        for out in &mut self.outputs {
            out.tick(now);
        }
    }

    /// Pop the next delivered packet at output `port`, if any.
    pub fn pop_ready(&mut self, port: usize, now: u64) -> Option<T> {
        self.outputs[port].pop_ready(now)
    }

    /// Total packets currently inside the crossbar.
    pub fn len(&self) -> usize {
        self.outputs.iter().map(|o| o.len()).sum()
    }

    /// Whether the crossbar holds no packets.
    pub fn is_empty(&self) -> bool {
        self.outputs.iter().all(|o| o.is_empty())
    }

    /// Total bytes accepted since construction.
    pub fn injected_bytes(&self) -> u64 {
        self.injected_bytes
    }

    /// Number of rejected (back-pressured) injection attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Whether ticking this crossbar is a state no-op: no packets anywhere
    /// and every budget (the bisection cap and each output port's pipe) has
    /// saturated at its credit cap. The engine's idle-cycle skip requires
    /// this on every crossbar before jumping the clock.
    pub fn tick_is_noop(&self) -> bool {
        self.bisection.refill_is_noop() && self.outputs.iter().all(Pipe::tick_is_noop)
    }

    /// Drain all packets (LLC reconfiguration drains in-flight traffic).
    pub fn drain(&mut self) -> Vec<T> {
        self.outputs.iter_mut().flat_map(|o| o.drain()).collect()
    }

    /// Serialize the full crossbar state into a checkpoint payload,
    /// encoding each queued packet with `f`.
    pub fn save_with(
        &self,
        e: &mut mcgpu_types::Enc,
        mut f: impl FnMut(&mut mcgpu_types::Enc, &T),
    ) {
        e.put_seq_len(self.outputs.len());
        for out in &self.outputs {
            out.save_with(e, &mut f);
        }
        self.bisection.save(e);
        e.put_u64(self.injected_bytes);
        e.put_u64(self.rejected);
    }

    /// Deserialize a crossbar saved by [`Crossbar::save_with`], decoding
    /// each packet with `f`.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load_with(
        d: &mut mcgpu_types::Dec<'_>,
        mut f: impl FnMut(&mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<T>,
    ) -> mcgpu_types::CkptResult<Self> {
        let ports = d.get_seq_len()?;
        let mut outputs = Vec::with_capacity(ports);
        for _ in 0..ports {
            outputs.push(Pipe::load_with(d, &mut f)?);
        }
        Ok(Crossbar {
            outputs,
            bisection: BandwidthBudget::load(d)?,
            injected_bytes: d.get_u64()?,
            rejected: d.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency_to_right_port() {
        let mut x: Crossbar<u32> = Crossbar::new(3, 64.0, 1024.0, 7, 8);
        x.try_push(2, 99, 16).unwrap();
        x.tick(0);
        for now in 0..7 {
            assert!(x.pop_ready(2, now).is_none());
        }
        assert!(x.pop_ready(0, 7).is_none());
        assert!(x.pop_ready(1, 7).is_none());
        assert_eq!(x.pop_ready(2, 7), Some(99));
    }

    #[test]
    fn bisection_caps_total_injection() {
        // 4 ports x 1000 B/cy each but only 100 B/cy bisection.
        let mut x: Crossbar<u32> = Crossbar::new(4, 1000.0, 100.0, 0, 64);
        let mut accepted = 0;
        for now in 0..10 {
            x.tick(now);
            for i in 0..40 {
                if x.try_push((i % 4) as usize, i, 100).is_ok() {
                    accepted += 1;
                }
            }
        }
        // 10 cycles x 100 B/cy = ~1000 B => ~10 packets of 100 B.
        assert!((8..=14).contains(&accepted), "accepted {accepted}");
        assert!(x.rejected() > 0);
    }

    #[test]
    fn port_queue_backpressure() {
        let mut x: Crossbar<u32> = Crossbar::new(1, 0.0, 1e9, 0, 2);
        // Port bandwidth is zero: nothing ever drains, queue fills at 2.
        x.tick(0);
        assert!(x.try_push(0, 1, 8).is_ok());
        assert!(x.try_push(0, 2, 8).is_ok());
        assert_eq!(x.try_push(0, 3, 8), Err(3));
        assert!(!x.can_push(0));
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn drain_empties() {
        let mut x: Crossbar<u32> = Crossbar::new(2, 64.0, 1024.0, 10, 8);
        x.try_push(0, 1, 16).unwrap();
        x.try_push(1, 2, 16).unwrap();
        x.tick(0);
        let drained = x.drain();
        assert_eq!(drained.len(), 2);
        assert!(x.is_empty());
    }
}
