//! Inter-chip fabric: topology-generic packet transport.
//!
//! The fabric keeps one directed bandwidth/latency [`Pipe`] per (chip,
//! neighbor-slot) of the configured [`Topology`] and re-injects multi-hop
//! packets hop by hop in [`FabricNetwork::tick`], re-routing every hop so
//! traffic steers around failed links. On the paper's ring (Table 3: 12
//! bidirectional NVLink-class links in total, 3 per adjacent pair, 96 GB/s
//! per direction per pair) this reproduces the original hard-wired ring
//! fabric bit-for-bit: slot 0 is clockwise, slot 1 counter-clockwise, and
//! the [`Ring`](crate::topology::Ring) routing policy is the original
//! shortest-path/balanced-tie-break/long-way-around logic.

use crate::topology::{build_topology, Topology};
use mcgpu_types::{ChipId, MachineConfig, Pipe};

/// A packet travelling on the fabric towards `dest`.
#[derive(Debug, Clone)]
struct FabricPacket<T> {
    dest: ChipId,
    bytes: u64,
    payload: T,
}

/// Why [`FabricNetwork::try_send`] returned the payload to the caller.
/// Both cases are backpressure — the caller retries — but a `NoRoute`
/// signals a typed dead-route condition (link failures disconnected the
/// destination), never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError<T> {
    /// The outgoing link queue is full this cycle.
    Full(T),
    /// Link failures have left no live path to the destination.
    NoRoute(T),
}

impl<T> SendError<T> {
    /// Recover the payload for a retry.
    pub fn into_payload(self) -> T {
        match self {
            SendError::Full(p) | SendError::NoRoute(p) => p,
        }
    }
}

/// The inter-chip fabric: one directed [`Pipe`] per (chip, neighbor slot)
/// of the configured topology.
///
/// # Example
/// ```
/// use mcgpu_noc::FabricNetwork;
/// use mcgpu_types::{ChipId, MachineConfig};
///
/// let cfg = MachineConfig::paper_baseline(); // 4-chip ring
/// let mut fabric: FabricNetwork<&str> = FabricNetwork::new(&cfg, 20);
/// fabric.try_send(ChipId(0), ChipId(2), "two hops", 16).unwrap();
/// let mut arrived = Vec::new();
/// for now in 0..200 {
///     fabric.tick(now);
///     arrived.extend(fabric.pop_arrivals(ChipId(2), now));
/// }
/// assert_eq!(arrived, vec!["two hops"]);
/// ```
#[derive(Debug)]
pub struct FabricNetwork<T> {
    chips: usize,
    topo: Box<dyn Topology>,
    /// `links[from][slot]` carries traffic from `from` to its `slot`-th
    /// neighbor. On a ring, slot 0 = clockwise (to chip+1), slot 1 =
    /// counter-clockwise.
    links: Vec<Vec<Pipe<FabricPacket<T>>>>,
    /// `alive[from][slot]`: whether that directed link can carry traffic.
    /// Links die in pairs (both directions of an adjacency) via
    /// [`FabricNetwork::fail_link`].
    alive: Vec<Vec<bool>>,
    /// Packets that completed a hop and wait at an intermediate chip for
    /// re-injection, per chip.
    transit: Vec<Vec<FabricPacket<T>>>,
    /// Packets that reached their destination, per chip.
    arrived: Vec<Vec<FabricPacket<T>>>,
    delivered: u64,
    bytes_sent: u64,
    /// Bytes injected per source chip (observability tap).
    sent_from: Vec<u64>,
}

impl<T> FabricNetwork<T> {
    /// Build the fabric for `cfg.topology` over `cfg.chips` chips with
    /// per-link bandwidth `cfg.interchip_pair_gbs` and per-hop latency
    /// `cfg.link_latency`; `queue_depth` bounds each link's injection
    /// queue.
    pub fn new(cfg: &MachineConfig, queue_depth: usize) -> Self {
        let topo = build_topology(cfg);
        let n = cfg.chips;
        let links: Vec<Vec<Pipe<FabricPacket<T>>>> = ChipId::all(n)
            .map(|c| {
                topo.neighbors(c)
                    .iter()
                    .map(|_| Pipe::new(topo.link_gbs(), topo.link_latency(), Some(queue_depth)))
                    .collect()
            })
            .collect();
        let alive = ChipId::all(n)
            .map(|c| vec![true; topo.neighbors(c).len()])
            .collect();
        FabricNetwork {
            chips: n,
            topo,
            links,
            alive,
            transit: (0..n).map(|_| Vec::new()).collect(),
            arrived: (0..n).map(|_| Vec::new()).collect(),
            delivered: 0,
            bytes_sent: 0,
            sent_from: vec![0; n],
        }
    }

    /// The outgoing slot at `a` of the adjacency `a <-> b` (the first slot
    /// pointing at `b`, matching the original ring's direction mapping on
    /// a 2-chip ring where both slots reach the same chip).
    ///
    /// # Panics
    /// Panics if `a` and `b` are not adjacent — callers must hand in a
    /// validated fault plan.
    fn slot_towards(&self, a: ChipId, b: ChipId) -> usize {
        self.topo
            .neighbors(a)
            .iter()
            .position(|&n| n == b)
            .unwrap_or_else(|| {
                panic!("invariant violated: link fault endpoints {a:?} and {b:?} are not adjacent")
            })
    }

    /// Degrade the adjacency `a <-> b` to `factor` of its configured
    /// bandwidth, in both directions. Queued and in-flight packets are
    /// unaffected; future packets transmit at the reduced rate.
    pub fn degrade_link(&mut self, a: ChipId, b: ChipId, factor: f64) {
        let rate = self.topo.link_gbs() * factor;
        let s_ab = self.slot_towards(a, b);
        let s_ba = self.slot_towards(b, a);
        self.links[a.index()][s_ab].set_rate(rate);
        self.links[b.index()][s_ba].set_rate(rate);
    }

    /// Fail the adjacency `a <-> b` in both directions. Packets queued or
    /// in flight on the dead links are returned to their sending chip and
    /// re-routed along surviving links — conserved, not dropped.
    pub fn fail_link(&mut self, a: ChipId, b: ChipId) {
        for (from, to) in [(a, b), (b, a)] {
            let slot = self.slot_towards(from, to);
            self.alive[from.index()][slot] = false;
            let stranded = self.links[from.index()][slot].drain();
            self.transit[from.index()].extend(stranded);
        }
    }

    /// Whether the adjacency `a <-> b` is alive (in the `a -> b` direction;
    /// failures always take both).
    pub fn link_alive(&self, a: ChipId, b: ChipId) -> bool {
        self.alive[a.index()][self.slot_towards(a, b)]
    }

    /// Inject a packet at `from` destined for `to`.
    ///
    /// # Errors
    /// Returns the payload back as [`SendError::Full`] when the outgoing
    /// link queue is full, or [`SendError::NoRoute`] when link failures
    /// have left no live path from `from` to `to` (backpressure either way
    /// — the caller retries).
    ///
    /// # Panics
    /// Panics if `from == to`.
    pub fn try_send(
        &mut self,
        from: ChipId,
        to: ChipId,
        payload: T,
        bytes: u64,
    ) -> Result<(), SendError<T>> {
        assert_ne!(from, to, "fabric packets must cross chips");
        let Some(slot) = self.topo.route(from, to, &self.alive) else {
            return Err(SendError::NoRoute(payload));
        };
        let pkt = FabricPacket {
            dest: to,
            bytes,
            payload,
        };
        self.links[from.index()][slot]
            .try_push(pkt, bytes)
            .map(|()| {
                self.bytes_sent += bytes;
                self.sent_from[from.index()] += bytes;
            })
            .map_err(|pkt| SendError::Full(pkt.payload))
    }

    /// Whether `from` can currently inject a packet towards `to`.
    pub fn can_send(&self, from: ChipId, to: ChipId) -> bool {
        match self.topo.route(from, to, &self.alive) {
            Some(slot) => self.links[from.index()][slot].can_push(),
            None => false,
        }
    }

    /// Advance one cycle: move link traffic, land arrivals, and re-inject
    /// transit packets onto their next hop.
    pub fn tick(&mut self, now: u64) {
        // Re-inject packets waiting at intermediate chips first so they get
        // this cycle's bandwidth. Routing is re-evaluated every hop, so
        // packets stranded by a link failure take a surviving path; with no
        // live path they wait here (conserved) until one returns or the
        // engine's watchdog declares the machine wedged.
        for chip in 0..self.chips {
            let waiting = std::mem::take(&mut self.transit[chip]);
            for pkt in waiting {
                let from = ChipId(chip as u8);
                match self.topo.route(from, pkt.dest, &self.alive) {
                    Some(slot) => {
                        let bytes = pkt.bytes;
                        if let Err(p) = self.links[chip][slot].try_push(pkt, bytes) {
                            self.transit[chip].push(p);
                        }
                    }
                    None => self.transit[chip].push(pkt),
                }
            }
        }
        for chip in 0..self.chips {
            for pipe in &mut self.links[chip] {
                pipe.tick(now);
            }
        }
        // Land completed hops.
        for chip in 0..self.chips {
            for slot in 0..self.links[chip].len() {
                let next = self.topo.neighbors(ChipId(chip as u8))[slot];
                while let Some(pkt) = self.links[chip][slot].pop_ready(now) {
                    if pkt.dest == next {
                        self.delivered += 1;
                        self.arrived[next.index()].push(pkt);
                    } else {
                        self.transit[next.index()].push(pkt);
                    }
                }
            }
        }
    }

    /// Take the packets that arrived at `chip`.
    pub fn pop_arrivals(&mut self, chip: ChipId, now: u64) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_arrivals_into(chip, now, &mut out);
        out
    }

    /// Like [`pop_arrivals`](FabricNetwork::pop_arrivals), but appends into
    /// a caller-owned buffer — the per-cycle simulator loop reuses one
    /// scratch `Vec` instead of allocating each cycle.
    pub fn pop_arrivals_into(&mut self, chip: ChipId, _now: u64, out: &mut Vec<T>) {
        out.extend(self.arrived[chip.index()].drain(..).map(|p| p.payload));
    }

    /// Packets still anywhere in the network.
    pub fn len(&self) -> usize {
        self.links
            .iter()
            .flat_map(|l| l.iter())
            .map(|p| p.len())
            .sum::<usize>()
            + self.transit.iter().map(|t| t.len()).sum::<usize>()
            + self.arrived.iter().map(|a| a.len()).sum::<usize>()
    }

    /// Whether the network is completely idle.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether ticking the fabric is a state no-op: no packets anywhere
    /// (see [`is_empty`](FabricNetwork::is_empty)) and every link pipe's
    /// bandwidth budget has saturated at its credit cap. The engine's
    /// idle-cycle skip requires this before jumping the clock.
    pub fn tick_is_noop(&self) -> bool {
        self.transit.iter().all(Vec::is_empty)
            && self.arrived.iter().all(Vec::is_empty)
            && self
                .links
                .iter()
                .flat_map(|l| l.iter())
                .all(Pipe::tick_is_noop)
    }

    /// Packets currently held at `chip`: queued or in flight on its
    /// outgoing links, waiting in transit, or landed but not yet popped.
    /// Used for deadlock diagnostics.
    pub fn chip_load(&self, chip: ChipId) -> usize {
        let i = chip.index();
        self.links[i].iter().map(|p| p.len()).sum::<usize>()
            + self.transit[i].len()
            + self.arrived[i].len()
    }

    /// Count payloads anywhere in the fabric (link pipes, transit buffers,
    /// landed-but-unpopped arrivals) matching `pred`. Used by the engine's
    /// request-conservation audit to count request-carrying packets while
    /// ignoring writeback/invalidate traffic.
    pub fn count_matching(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.links
            .iter()
            .flat_map(|l| l.iter())
            .flat_map(|p| p.iter())
            .chain(self.transit.iter().flatten())
            .chain(self.arrived.iter().flatten())
            .filter(|pkt| pred(&pkt.payload))
            .count()
    }

    /// Packets delivered to their final destination so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total bytes injected so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Bytes injected so far by `chip` (observability tap).
    pub fn bytes_sent_from(&self, chip: ChipId) -> u64 {
        self.sent_from[chip.index()]
    }

    /// Serialize the full fabric state (link pipes with queued and
    /// in-flight packets, link liveness, transit and arrival buffers,
    /// counters) into a checkpoint payload, encoding each payload with
    /// `f`. The topology is not serialized — the restoring side rebuilds
    /// from the same [`MachineConfig`] (the checkpoint config fingerprint
    /// guarantees it matches).
    pub fn save_with(
        &self,
        e: &mut mcgpu_types::Enc,
        mut f: impl FnMut(&mut mcgpu_types::Enc, &T),
    ) {
        let mut put_pkt = |e: &mut mcgpu_types::Enc, pkt: &FabricPacket<T>| {
            e.put_u8(pkt.dest.0);
            e.put_u64(pkt.bytes);
            f(e, &pkt.payload);
        };
        e.put_seq_len(self.chips);
        for chip in 0..self.chips {
            for slot in 0..self.links[chip].len() {
                self.links[chip][slot].save_with(e, &mut put_pkt);
                e.put_bool(self.alive[chip][slot]);
            }
            e.put_seq_len(self.transit[chip].len());
            for pkt in &self.transit[chip] {
                put_pkt(e, pkt);
            }
            e.put_seq_len(self.arrived[chip].len());
            for pkt in &self.arrived[chip] {
                put_pkt(e, pkt);
            }
            e.put_u64(self.sent_from[chip]);
        }
        e.put_u64(self.delivered);
        e.put_u64(self.bytes_sent);
    }

    /// Overwrite this fabric's dynamic state from a payload saved by
    /// [`FabricNetwork::save_with`], decoding each payload with `f`. The
    /// fabric must have been constructed for the same machine (the slot
    /// count per chip is structural and is not re-validated here beyond
    /// the chip count).
    ///
    /// # Errors
    /// Returns a decode error on truncated input or a chip-count mismatch.
    pub fn load_into(
        &mut self,
        d: &mut mcgpu_types::Dec<'_>,
        mut f: impl FnMut(&mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<T>,
    ) -> mcgpu_types::CkptResult<()> {
        let chips = d.get_seq_len()?;
        if chips != self.chips {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "fabric chip count mismatch: snapshot {chips}, live {}",
                self.chips
            )));
        }
        let mut get_pkt =
            |d: &mut mcgpu_types::Dec<'_>| -> mcgpu_types::CkptResult<FabricPacket<T>> {
                let dest = ChipId(d.get_u8()?);
                let bytes = d.get_u64()?;
                let payload = f(d)?;
                Ok(FabricPacket {
                    dest,
                    bytes,
                    payload,
                })
            };
        for chip in 0..chips {
            for slot in 0..self.links[chip].len() {
                self.links[chip][slot] = Pipe::load_with(d, &mut get_pkt)?;
                self.alive[chip][slot] = d.get_bool()?;
            }
            let n = d.get_seq_len()?;
            self.transit[chip].clear();
            for _ in 0..n {
                let pkt = get_pkt(d)?;
                self.transit[chip].push(pkt);
            }
            let n = d.get_seq_len()?;
            self.arrived[chip].clear();
            for _ in 0..n {
                let pkt = get_pkt(d)?;
                self.arrived[chip].push(pkt);
            }
            self.sent_from[chip] = d.get_u64()?;
        }
        self.delivered = d.get_u64()?;
        self.bytes_sent = d.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::TopologyKind;

    fn cfg() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn run_until_empty<T>(fab: &mut FabricNetwork<T>, sink: &mut Vec<(usize, T)>, max: u64) {
        for now in 0..max {
            fab.tick(now);
            for chip in 0..fab.chips {
                for p in fab.pop_arrivals(ChipId(chip as u8), now) {
                    sink.push((chip, p));
                }
            }
            if fab.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn adjacent_delivery() {
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&cfg(), 16);
        ring.try_send(ChipId(0), ChipId(1), 7, 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 1000);
        assert_eq!(got, vec![(1, 7)]);
        assert_eq!(ring.delivered(), 1);
    }

    #[test]
    fn two_hop_delivery_takes_two_latencies() {
        let c = cfg();
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        ring.try_send(ChipId(0), ChipId(2), 9, 16).unwrap();
        let mut arrival_cycle = None;
        for now in 0..1000 {
            ring.tick(now);
            if !ring.pop_arrivals(ChipId(2), now).is_empty() {
                arrival_cycle = Some(now);
                break;
            }
        }
        let t = arrival_cycle.expect("delivered");
        assert!(
            t >= 2 * c.link_latency,
            "two hops must cost two link latencies, got {t}"
        );
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut c = cfg();
        c.interchip_pair_gbs = 16.0; // 16 B/cycle per direction
        c.link_latency = 0;
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 4);
        let mut sent = 0u32;
        let mut delivered = 0;
        for now in 0..1000 {
            ring.tick(now);
            // Saturate chip0 -> chip1 with 128 B packets.
            if ring.try_send(ChipId(0), ChipId(1), sent, 128).is_ok() {
                sent += 1;
            }
            delivered += ring.pop_arrivals(ChipId(1), now).len();
        }
        // 16 B/cy x 1000 cy / 128 B = ~125 packets.
        assert!((110..=140).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn opposite_chips_balance_directions() {
        let c = cfg();
        // chip0 -> chip2 ties: even source goes clockwise; chip1 -> chip3
        // (odd source) goes counter-clockwise.
        let mut ring: FabricNetwork<&str> = FabricNetwork::new(&c, 16);
        ring.try_send(ChipId(0), ChipId(2), "a", 16).unwrap();
        ring.try_send(ChipId(1), ChipId(3), "b", 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 2000);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn failed_link_reroutes_the_long_way() {
        let c = cfg();
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        ring.fail_link(ChipId(0), ChipId(1));
        assert!(!ring.link_alive(ChipId(0), ChipId(1)));
        // 0 -> 1 must now take 0 -> 3 -> 2 -> 1: three hops instead of one.
        ring.try_send(ChipId(0), ChipId(1), 42, 16).unwrap();
        let mut arrival = None;
        for now in 0..2000 {
            ring.tick(now);
            if !ring.pop_arrivals(ChipId(1), now).is_empty() {
                arrival = Some(now);
                break;
            }
        }
        let t = arrival.expect("rerouted packet must still arrive");
        assert!(
            t >= 3 * c.link_latency,
            "long way around is three hops, got {t}"
        );
        assert_eq!(ring.delivered(), 1);
    }

    #[test]
    fn fail_link_conserves_queued_packets() {
        let mut c = cfg();
        c.interchip_pair_gbs = 16.0;
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        // Queue several packets on 0 -> 1, then kill the link before they move.
        for i in 0..8 {
            ring.try_send(ChipId(0), ChipId(1), i, 128).unwrap();
        }
        ring.fail_link(ChipId(0), ChipId(1));
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 5000);
        assert_eq!(got.len(), 8, "every stranded packet must be re-delivered");
        assert!(got.iter().all(|&(chip, _)| chip == 1));
    }

    #[test]
    fn partitioned_ring_refuses_injection_but_holds_packets() {
        let c = cfg();
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        ring.try_send(ChipId(0), ChipId(2), 5, 16).unwrap();
        // Cut both directions out of the packet's current region.
        ring.fail_link(ChipId(0), ChipId(1));
        ring.fail_link(ChipId(3), ChipId(0));
        assert!(!ring.can_send(ChipId(0), ChipId(2)));
        assert_eq!(
            ring.try_send(ChipId(0), ChipId(2), 6, 16),
            Err(SendError::NoRoute(6))
        );
        for now in 0..500 {
            ring.tick(now);
        }
        // The stranded packet is conserved, not silently dropped.
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.delivered(), 0);
    }

    #[test]
    fn degraded_link_halves_throughput() {
        let mut c = cfg();
        c.interchip_pair_gbs = 16.0;
        c.link_latency = 0;
        let mut full: FabricNetwork<u32> = FabricNetwork::new(&c, 4);
        let mut degraded: FabricNetwork<u32> = FabricNetwork::new(&c, 4);
        degraded.degrade_link(ChipId(0), ChipId(1), 0.5);
        let mut counts = [0usize; 2];
        for (k, ring) in [&mut full, &mut degraded].into_iter().enumerate() {
            let mut sent = 0;
            for now in 0..1000 {
                ring.tick(now);
                if ring.try_send(ChipId(0), ChipId(1), sent, 128).is_ok() {
                    sent += 1;
                }
                counts[k] += ring.pop_arrivals(ChipId(1), now).len();
            }
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(
            (0.4..=0.6).contains(&ratio),
            "half-rate link should move ~half the packets: {counts:?}"
        );
    }

    #[test]
    fn backpressure_on_full_link() {
        let mut c = cfg();
        c.interchip_pair_gbs = 0.0;
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 1);
        assert!(ring.try_send(ChipId(0), ChipId(1), 1, 16).is_ok());
        assert_eq!(
            ring.try_send(ChipId(0), ChipId(1), 2, 16),
            Err(SendError::Full(2))
        );
        assert!(!ring.can_send(ChipId(0), ChipId(1)));
    }

    #[test]
    fn mesh_delivers_across_the_diagonal() {
        let mut c = cfg();
        c.topology = TopologyKind::Mesh2D;
        let mut mesh: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        // 2x2 mesh: 0 and 3 are diagonal, two hops apart.
        mesh.try_send(ChipId(0), ChipId(3), 11, 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut mesh, &mut got, 2000);
        assert_eq!(got, vec![(3, 11)]);
    }

    #[test]
    fn fully_connected_is_single_hop_between_any_pair() {
        let mut c = cfg();
        c.topology = TopologyKind::FullyConnected;
        c.chips = 8;
        let mut fc: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        fc.try_send(ChipId(0), ChipId(5), 3, 16).unwrap();
        let mut arrival = None;
        for now in 0..1000 {
            fc.tick(now);
            if !fc.pop_arrivals(ChipId(5), now).is_empty() {
                arrival = Some(now);
                break;
            }
        }
        let t = arrival.expect("delivered");
        assert!(
            t < 2 * c.link_latency,
            "all-to-all should deliver in one hop, got {t}"
        );
    }

    #[test]
    fn two_chip_ring_survives_single_link_failure() {
        let mut c = cfg();
        c.chips = 2;
        let mut ring: FabricNetwork<u32> = FabricNetwork::new(&c, 16);
        // fail_link takes the slot-0 parallel links on both sides; the
        // slot-1 pair survives and traffic reroutes onto it.
        ring.fail_link(ChipId(0), ChipId(1));
        ring.try_send(ChipId(0), ChipId(1), 9, 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 1000);
        assert_eq!(got, vec![(1, 9)]);
    }
}
