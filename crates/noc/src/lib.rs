//! Interconnect substrates: intra-chip crossbar NoC, topology-generic
//! inter-chip fabric, and a first-order physical (area/power) model.
//!
//! The baseline machine (§2) uses a concentrated hierarchical crossbar per
//! chip — logically a 38×22 crossbar connecting 32 SM clusters plus 6
//! inter-chip links on the input side to 16 LLC slices plus 6 inter-chip
//! links on the output side — and an inter-chip ring of 3 NVLink-class links
//! per adjacent pair. Requests and responses travel on **separate
//! networks** (§3.1), so the simulator instantiates two [`Crossbar`]s and
//! two [`FabricNetwork`]s per direction. The inter-chip fabric is generic
//! over a [`Topology`] ([`topology::Ring`], [`topology::FullyConnected`],
//! [`topology::Mesh2D`]); the paper's 4-chip ring is the default and the
//! `Ring` implementation reproduces the original hard-wired ring exactly.
//!
//! # Example
//!
//! ```
//! use mcgpu_noc::Crossbar;
//!
//! // 2 output ports, 64 B/cycle each, 128 B/cycle bisection, 5-cycle hop.
//! let mut xbar: Crossbar<&str> = Crossbar::new(2, 64.0, 128.0, 5, 8);
//! xbar.try_push(0, "pkt", 16).unwrap();
//! for now in 0..=5 {
//!     xbar.tick(now);
//!     if let Some(p) = xbar.pop_ready(0, now) {
//!         assert_eq!(p, "pkt");
//!     }
//! }
//! ```

pub mod crossbar;
pub mod fabric;
pub mod physical;
pub mod topology;

pub use crossbar::Crossbar;
pub use fabric::{FabricNetwork, SendError};
pub use physical::{NocPhysical, PhysicalEstimate};
pub use topology::{build_topology, Topology};
