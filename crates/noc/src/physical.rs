//! First-order NoC area and power model ("DSENT-lite").
//!
//! The paper quantifies physical overheads with DSENT, CACTI and the
//! Synopsys DesignWare library at 22 nm (§2.1, §3.6):
//!
//! * the two-NoC SM-side organization costs **+21% power / +18% area** over
//!   the single memory-side crossbar NoC, and
//! * SAC's bypass paths, selection logic and muxes cost only **+1.9% area /
//!   +1.6% power** over the memory-side NoC.
//!
//! We reproduce those comparisons with a parametric crossbar model:
//! `cost = Σ_xbars (n_in × n_out) + β × Σ_ports`, i.e. a switch-fabric term
//! quadratic in port counts plus a per-port (buffer/arbiter/serializer)
//! term. β is calibrated — once, analytically, not fitted to simulation —
//! so that the model reproduces the paper's published deltas for the
//! baseline port counts; the model then extrapolates across the design
//! space (chip counts, slice counts).

use mcgpu_types::MachineConfig;

/// Per-port coefficient of the area model, calibrated so the two-NoC
/// SM-side organization costs +18% area over the 38×22 memory-side crossbar.
const BETA_AREA: f64 = 12.6;
/// Per-port coefficient of the power model, calibrated for the +21% power
/// delta.
const BETA_POWER: f64 = 16.8;
/// SAC bypass overhead fractions from §3.6 (selection logic, muxes, wires).
const SAC_AREA_FRACTION: f64 = 0.019;
const SAC_POWER_FRACTION: f64 = 0.016;

/// An area/power estimate in arbitrary calibrated units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalEstimate {
    /// Area in model units (relative comparisons only).
    pub area: f64,
    /// Power in model units (relative comparisons only).
    pub power: f64,
}

impl PhysicalEstimate {
    /// Ratio of this estimate to a `baseline` (1.0 = equal).
    pub fn relative_to(&self, baseline: &PhysicalEstimate) -> (f64, f64) {
        (self.area / baseline.area, self.power / baseline.power)
    }
}

/// Physical model of a chip's NoC under each LLC organization.
#[derive(Debug, Clone)]
pub struct NocPhysical {
    clusters: usize,
    slices: usize,
    channels: usize,
    links: usize,
}

impl NocPhysical {
    /// Build the model for one chip of `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        NocPhysical {
            clusters: cfg.clusters_per_chip,
            slices: cfg.slices_per_chip,
            channels: cfg.channels_per_chip,
            // Fabric ports on the crossbar: one bundle of `links_per_pair`
            // physical links per fabric neighbor (2 on the ring — 6 ports
            // in the 38x22 baseline crossbar).
            links: cfg.links_per_pair * cfg.max_chip_degree(),
        }
    }

    fn xbar(n_in: usize, n_out: usize, beta: f64) -> f64 {
        (n_in * n_out) as f64 + beta * (n_in + n_out) as f64
    }

    /// The memory-side NoC: one crossbar from (clusters + links) to
    /// (slices + links) — 38×22 in the baseline.
    pub fn memory_side(&self) -> PhysicalEstimate {
        let n_in = self.clusters + self.links;
        let n_out = self.slices + self.links;
        PhysicalEstimate {
            area: Self::xbar(n_in, n_out, BETA_AREA),
            power: Self::xbar(n_in, n_out, BETA_POWER),
        }
    }

    /// The SM-side organization needs two NoCs (§2.1): clusters→slices and
    /// (slices + links-in) → (memory channels + links-out).
    pub fn sm_side(&self) -> PhysicalEstimate {
        let first_area = Self::xbar(self.clusters, self.slices, BETA_AREA);
        let first_power = Self::xbar(self.clusters, self.slices, BETA_POWER);
        let second_in = self.slices + self.links;
        let second_out = self.channels + self.links;
        PhysicalEstimate {
            area: first_area + Self::xbar(second_in, second_out, BETA_AREA),
            power: first_power + Self::xbar(second_in, second_out, BETA_POWER),
        }
    }

    /// SAC reuses the memory-side crossbar unchanged and adds bypass paths,
    /// selection logic and muxes at each slice (§3.6).
    pub fn sac(&self) -> PhysicalEstimate {
        let base = self.memory_side();
        PhysicalEstimate {
            area: base.area * (1.0 + SAC_AREA_FRACTION),
            power: base.power * (1.0 + SAC_POWER_FRACTION),
        }
    }

    /// NoC power and area *savings* of SAC versus the two-NoC SM-side
    /// design, as fractions (paper: 21% power, 18% area).
    pub fn sac_savings_vs_sm_side(&self) -> (f64, f64) {
        let sac = self.sac();
        let sm = self.sm_side();
        (1.0 - sac.power / sm.power, 1.0 - sac.area / sm.area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_deltas_match_paper() {
        let m = NocPhysical::new(&MachineConfig::paper_baseline());
        let (area_ratio, power_ratio) = m.sm_side().relative_to(&m.memory_side());
        // Paper: SM-side NoC is +18% area, +21% power vs memory-side.
        assert!((area_ratio - 1.18).abs() < 0.02, "area ratio {area_ratio}");
        assert!(
            (power_ratio - 1.21).abs() < 0.02,
            "power ratio {power_ratio}"
        );
    }

    #[test]
    fn sac_overhead_is_small() {
        let m = NocPhysical::new(&MachineConfig::paper_baseline());
        let (area_ratio, power_ratio) = m.sac().relative_to(&m.memory_side());
        assert!((area_ratio - 1.019).abs() < 1e-9);
        assert!((power_ratio - 1.016).abs() < 1e-9);
    }

    #[test]
    fn sac_saves_vs_sm_side() {
        let m = NocPhysical::new(&MachineConfig::paper_baseline());
        let (power_saving, area_saving) = m.sac_savings_vs_sm_side();
        // Roughly the paper's 21% / 18% (minus SAC's small additions).
        assert!(power_saving > 0.14 && power_saving < 0.25, "{power_saving}");
        assert!(area_saving > 0.11 && area_saving < 0.22, "{area_saving}");
    }

    #[test]
    fn scaled_machines_still_favor_single_noc() {
        let cfg = MachineConfig::experiment_baseline();
        let m = NocPhysical::new(&cfg);
        let (area_ratio, power_ratio) = m.sm_side().relative_to(&m.memory_side());
        assert!(area_ratio > 1.0);
        assert!(power_ratio > 1.0);
    }
}
