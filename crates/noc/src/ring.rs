//! Inter-chip ring network.
//!
//! Chips are connected in a ring (Table 3: 12 bidirectional NVLink-class
//! links in total, 3 per adjacent pair, 96 GB/s per direction per pair).
//! Each directed adjacency is one bandwidth/latency [`Pipe`]; multi-hop
//! packets are re-injected hop by hop by [`RingNetwork::tick`] using
//! shortest-path routing with tie-breaking that balances both directions.

use mcgpu_types::{ChipId, MachineConfig, Pipe};

/// A packet travelling on the ring towards `dest`.
#[derive(Debug, Clone)]
struct RingPacket<T> {
    dest: ChipId,
    bytes: u64,
    payload: T,
}

/// The inter-chip ring: one directed [`Pipe`] per adjacent ordered chip
/// pair.
///
/// # Example
/// ```
/// use mcgpu_noc::RingNetwork;
/// use mcgpu_types::{ChipId, MachineConfig};
///
/// let cfg = MachineConfig::paper_baseline();
/// let mut ring: RingNetwork<&str> = RingNetwork::new(&cfg, 20);
/// ring.try_send(ChipId(0), ChipId(2), "two hops", 16).unwrap();
/// let mut arrived = Vec::new();
/// for now in 0..200 {
///     ring.tick(now);
///     arrived.extend(ring.pop_arrivals(ChipId(2), now));
/// }
/// assert_eq!(arrived, vec!["two hops"]);
/// ```
#[derive(Debug)]
pub struct RingNetwork<T> {
    chips: usize,
    /// `links[from][0]` = clockwise (to chip+1), `links[from][1]` =
    /// counter-clockwise (to chip-1).
    links: Vec<[Pipe<RingPacket<T>>; 2]>,
    /// Packets that completed a hop and wait at an intermediate chip for
    /// re-injection, per chip.
    transit: Vec<Vec<RingPacket<T>>>,
    /// Packets that reached their destination, per chip.
    arrived: Vec<Vec<RingPacket<T>>>,
    topo: MachineConfig,
    delivered: u64,
    bytes_sent: u64,
}

impl<T> RingNetwork<T> {
    /// Build the ring for `cfg.chips` chips with per-pair bandwidth
    /// `cfg.interchip_pair_gbs` and per-hop latency `cfg.link_latency`;
    /// `queue_depth` bounds each link's injection queue.
    pub fn new(cfg: &MachineConfig, queue_depth: usize) -> Self {
        let n = cfg.chips;
        RingNetwork {
            chips: n,
            links: (0..n)
                .map(|_| {
                    [
                        Pipe::new(cfg.interchip_pair_gbs, cfg.link_latency, Some(queue_depth)),
                        Pipe::new(cfg.interchip_pair_gbs, cfg.link_latency, Some(queue_depth)),
                    ]
                })
                .collect(),
            transit: (0..n).map(|_| Vec::new()).collect(),
            arrived: (0..n).map(|_| Vec::new()).collect(),
            topo: cfg.clone(),
            delivered: 0,
            bytes_sent: 0,
        }
    }

    #[inline]
    fn direction(&self, from: ChipId, to: ChipId) -> usize {
        let next = self.topo.ring_next_hop(from, to);
        if next.index() == (from.index() + 1) % self.chips {
            0
        } else {
            1
        }
    }

    /// Inject a packet at `from` destined for `to`.
    ///
    /// # Errors
    /// Returns the payload back when the outgoing link queue is full.
    ///
    /// # Panics
    /// Panics if `from == to`.
    pub fn try_send(&mut self, from: ChipId, to: ChipId, payload: T, bytes: u64) -> Result<(), T> {
        assert_ne!(from, to, "ring packets must cross chips");
        let dir = self.direction(from, to);
        let pkt = RingPacket {
            dest: to,
            bytes,
            payload,
        };
        self.links[from.index()][dir]
            .try_push(pkt, bytes)
            .map(|()| {
                self.bytes_sent += bytes;
            })
            .map_err(|pkt| pkt.payload)
    }

    /// Whether `from` can currently inject a packet towards `to`.
    pub fn can_send(&self, from: ChipId, to: ChipId) -> bool {
        let dir = self.direction(from, to);
        self.links[from.index()][dir].can_push()
    }

    /// Advance one cycle: move link traffic, land arrivals, and re-inject
    /// transit packets onto their next hop.
    pub fn tick(&mut self, now: u64) {
        // Re-inject packets waiting at intermediate chips first so they get
        // this cycle's bandwidth.
        for chip in 0..self.chips {
            let waiting = std::mem::take(&mut self.transit[chip]);
            for pkt in waiting {
                let from = ChipId(chip as u8);
                let dir = self.direction(from, pkt.dest);
                let bytes = pkt.bytes;
                if let Err(p) = self.links[chip][dir].try_push(pkt, bytes) {
                    self.transit[chip].push(p);
                }
            }
        }
        for chip in 0..self.chips {
            for dir in 0..2 {
                self.links[chip][dir].tick(now);
            }
        }
        // Land completed hops.
        for chip in 0..self.chips {
            let cw_next = (chip + 1) % self.chips;
            let ccw_next = (chip + self.chips - 1) % self.chips;
            for (dir, next) in [(0usize, cw_next), (1usize, ccw_next)] {
                while let Some(pkt) = self.links[chip][dir].pop_ready(now) {
                    if pkt.dest.index() == next {
                        self.delivered += 1;
                        self.arrived[next].push(pkt);
                    } else {
                        self.transit[next].push(pkt);
                    }
                }
            }
        }
    }

    /// Take the packets that arrived at `chip`.
    pub fn pop_arrivals(&mut self, chip: ChipId, _now: u64) -> Vec<T> {
        self.arrived[chip.index()]
            .drain(..)
            .map(|p| p.payload)
            .collect()
    }

    /// Packets still anywhere in the network.
    pub fn len(&self) -> usize {
        self.links
            .iter()
            .flat_map(|l| l.iter())
            .map(|p| p.len())
            .sum::<usize>()
            + self.transit.iter().map(|t| t.len()).sum::<usize>()
            + self.arrived.iter().map(|a| a.len()).sum::<usize>()
    }

    /// Whether the network is completely idle.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets delivered to their final destination so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total bytes injected so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::paper_baseline()
    }

    fn run_until_empty<T>(ring: &mut RingNetwork<T>, sink: &mut Vec<(usize, T)>, max: u64) {
        for now in 0..max {
            ring.tick(now);
            for chip in 0..4 {
                for p in ring.pop_arrivals(ChipId(chip), now) {
                    sink.push((chip as usize, p));
                }
            }
            if ring.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn adjacent_delivery() {
        let mut ring: RingNetwork<u32> = RingNetwork::new(&cfg(), 16);
        ring.try_send(ChipId(0), ChipId(1), 7, 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 1000);
        assert_eq!(got, vec![(1, 7)]);
        assert_eq!(ring.delivered(), 1);
    }

    #[test]
    fn two_hop_delivery_takes_two_latencies() {
        let c = cfg();
        let mut ring: RingNetwork<u32> = RingNetwork::new(&c, 16);
        ring.try_send(ChipId(0), ChipId(2), 9, 16).unwrap();
        let mut arrival_cycle = None;
        for now in 0..1000 {
            ring.tick(now);
            if !ring.pop_arrivals(ChipId(2), now).is_empty() {
                arrival_cycle = Some(now);
                break;
            }
        }
        let t = arrival_cycle.expect("delivered");
        assert!(
            t >= 2 * c.link_latency,
            "two hops must cost two link latencies, got {t}"
        );
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut c = cfg();
        c.interchip_pair_gbs = 16.0; // 16 B/cycle per direction
        c.link_latency = 0;
        let mut ring: RingNetwork<u32> = RingNetwork::new(&c, 4);
        let mut sent = 0u32;
        let mut delivered = 0;
        for now in 0..1000 {
            ring.tick(now);
            // Saturate chip0 -> chip1 with 128 B packets.
            if ring.try_send(ChipId(0), ChipId(1), sent, 128).is_ok() {
                sent += 1;
            }
            delivered += ring.pop_arrivals(ChipId(1), now).len();
        }
        // 16 B/cy x 1000 cy / 128 B = ~125 packets.
        assert!((110..=140).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn opposite_chips_balance_directions() {
        let c = cfg();
        // chip0 -> chip2 ties: even source goes clockwise; chip1 -> chip3
        // (odd source) goes counter-clockwise.
        let mut ring: RingNetwork<&str> = RingNetwork::new(&c, 16);
        ring.try_send(ChipId(0), ChipId(2), "a", 16).unwrap();
        ring.try_send(ChipId(1), ChipId(3), "b", 16).unwrap();
        let mut got = Vec::new();
        run_until_empty(&mut ring, &mut got, 2000);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn backpressure_on_full_link() {
        let mut c = cfg();
        c.interchip_pair_gbs = 0.0;
        let mut ring: RingNetwork<u32> = RingNetwork::new(&c, 1);
        assert!(ring.try_send(ChipId(0), ChipId(1), 1, 16).is_ok());
        assert_eq!(ring.try_send(ChipId(0), ChipId(1), 2, 16), Err(2));
        assert!(!ring.can_send(ChipId(0), ChipId(1)));
    }
}
