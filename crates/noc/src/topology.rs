//! Inter-chip fabric topologies.
//!
//! [`Topology`] abstracts the structure of the inter-chip fabric — node
//! count, slot-ordered neighbor sets, per-link bandwidth/latency, and a
//! deterministic fault-aware `route` — so the packet-moving fabric
//! ([`crate::FabricNetwork`]) is topology-generic. Three implementations
//! ship: [`Ring`] (bit-exact reproduction of the original hard-wired
//! 4-chip ring, Table 3), [`FullyConnected`], and [`Mesh2D`]. The
//! structural facts (who neighbors whom, canonical link lists) come from
//! [`MachineConfig`] so every layer — fault validation, checkpoint link
//! factors, this fabric — agrees on the same graph.

use mcgpu_types::{ChipId, MachineConfig, TopologyKind};

/// Per-chip, per-slot directed-link liveness: `alive[chip][slot]` is
/// whether chip `chip` can transmit on its `slot`-th outgoing link.
pub type LinkLiveness = [Vec<bool>];

/// The structure of an inter-chip fabric.
///
/// Slots are positions in a chip's ordered neighbor list; the fabric keeps
/// one directed [`mcgpu_types::Pipe`] per (chip, slot). `route` returns
/// the outgoing slot a packet should take for its next hop and must be
/// deterministic in its inputs — simulation reproducibility (and the
/// byte-exact golden suite) depends on it.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Which topology this is.
    fn kind(&self) -> TopologyKind;

    /// Number of chips on the fabric.
    fn nodes(&self) -> usize;

    /// Slot-ordered neighbors of `chip`. A slot's position is stable for
    /// the lifetime of the fabric; a 2-chip ring has two slots both
    /// pointing at the other chip (parallel links).
    fn neighbors(&self, chip: ChipId) -> &[ChipId];

    /// Bandwidth of one directed link, GB/s (== bytes/cycle).
    fn link_gbs(&self) -> f64;

    /// Latency of one hop, cycles.
    fn link_latency(&self) -> u64;

    /// The outgoing slot at `from` for a packet destined to `dest`, given
    /// current link liveness, or `None` when failures have disconnected
    /// `dest` from `from`. Routing is re-evaluated every hop, so a
    /// returned slot only ever commits one hop.
    fn route(&self, from: ChipId, dest: ChipId, alive: &LinkLiveness) -> Option<usize>;

    /// Shortest-path route over live links by breadth-first search,
    /// expanding neighbors in slot order — deterministic, and the default
    /// `route` for topologies without a closed-form policy.
    fn bfs_route(&self, from: ChipId, dest: ChipId, alive: &LinkLiveness) -> Option<usize> {
        debug_assert_ne!(from, dest);
        let n = self.nodes();
        // first_slot[c] = the slot taken *at `from`* on the shortest path
        // reaching c; usize::MAX = unvisited.
        let mut first_slot = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        for (slot, &next) in self.neighbors(from).iter().enumerate() {
            if alive[from.index()][slot] && first_slot[next.index()] == usize::MAX {
                if next == dest {
                    return Some(slot);
                }
                first_slot[next.index()] = slot;
                queue.push_back(next);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let inherited = first_slot[cur.index()];
            for (slot, &next) in self.neighbors(cur).iter().enumerate() {
                if alive[cur.index()][slot]
                    && next != from
                    && first_slot[next.index()] == usize::MAX
                {
                    if next == dest {
                        return Some(inherited);
                    }
                    first_slot[next.index()] = inherited;
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// Shared structural skeleton: precomputed slot-ordered neighbor lists
/// plus uniform link bandwidth/latency, all taken from [`MachineConfig`].
#[derive(Debug)]
struct Structure {
    chips: usize,
    neighbors: Vec<Vec<ChipId>>,
    link_gbs: f64,
    link_latency: u64,
}

impl Structure {
    fn from_config(cfg: &MachineConfig) -> Self {
        Structure {
            chips: cfg.chips,
            neighbors: ChipId::all(cfg.chips)
                .map(|c| cfg.neighbor_list(c))
                .collect(),
            link_gbs: cfg.interchip_pair_gbs,
            link_latency: cfg.link_latency,
        }
    }
}

/// The paper's ring (Table 3): slot 0 is clockwise (towards `chip + 1`),
/// slot 1 counter-clockwise. Routing reproduces the original hard-wired
/// behavior exactly: shortest path with even-source-goes-clockwise
/// tie-breaking, whole-path liveness check per direction, fall back to the
/// long way around, `None` on partition.
#[derive(Debug)]
pub struct Ring {
    s: Structure,
}

impl Ring {
    /// Build from `cfg` (`cfg.topology` need not be `Ring`; the structure
    /// is taken as a ring of `cfg.chips` chips).
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut ring_cfg = cfg.clone();
        ring_cfg.topology = TopologyKind::Ring;
        Ring {
            s: Structure::from_config(&ring_cfg),
        }
    }

    /// The preferred (shortest-path) direction from `from` to `dest`:
    /// 0 = clockwise, 1 = counter-clockwise, ties broken clockwise for
    /// even-indexed sources to balance the two directions.
    fn preferred_dir(&self, from: ChipId, dest: ChipId) -> usize {
        let n = self.s.chips;
        let cw = (dest.index() + n - from.index()) % n;
        let ccw = n - cw;
        let clockwise = match cw.cmp(&ccw) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => from.index().is_multiple_of(2),
        };
        let next = if clockwise {
            (from.index() + 1) % n
        } else {
            (from.index() + n - 1) % n
        };
        // Map the chosen next-hop chip back to a slot the way the original
        // ring fabric did: anything landing on `from + 1` is slot 0. On a
        // 2-chip ring both directions reach the same chip, so everything
        // rides slot 0 — exactly the legacy behavior.
        if next == (from.index() + 1) % n {
            0
        } else {
            1
        }
    }

    /// Whether every directed link from `from` to `dest` going `dir` is
    /// alive.
    fn path_alive(&self, from: usize, dest: usize, dir: usize, alive: &LinkLiveness) -> bool {
        let n = self.s.chips;
        let mut c = from;
        while c != dest {
            if !alive[c][dir] {
                return false;
            }
            c = if dir == 0 {
                (c + 1) % n
            } else {
                (c + n - 1) % n
            };
        }
        true
    }
}

impl Topology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }

    fn nodes(&self) -> usize {
        self.s.chips
    }

    fn neighbors(&self, chip: ChipId) -> &[ChipId] {
        &self.s.neighbors[chip.index()]
    }

    fn link_gbs(&self) -> f64 {
        self.s.link_gbs
    }

    fn link_latency(&self) -> u64 {
        self.s.link_latency
    }

    fn route(&self, from: ChipId, dest: ChipId, alive: &LinkLiveness) -> Option<usize> {
        let preferred = self.preferred_dir(from, dest);
        if self.path_alive(from.index(), dest.index(), preferred, alive) {
            return Some(preferred);
        }
        let other = 1 - preferred;
        if self.path_alive(from.index(), dest.index(), other, alive) {
            return Some(other);
        }
        None
    }
}

/// Every chip pair directly linked; routing is the direct link when alive,
/// else a BFS detour through an intermediate chip.
#[derive(Debug)]
pub struct FullyConnected {
    s: Structure,
}

impl FullyConnected {
    /// Build an all-to-all fabric over `cfg.chips` chips.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut fc_cfg = cfg.clone();
        fc_cfg.topology = TopologyKind::FullyConnected;
        FullyConnected {
            s: Structure::from_config(&fc_cfg),
        }
    }
}

impl Topology for FullyConnected {
    fn kind(&self) -> TopologyKind {
        TopologyKind::FullyConnected
    }

    fn nodes(&self) -> usize {
        self.s.chips
    }

    fn neighbors(&self, chip: ChipId) -> &[ChipId] {
        &self.s.neighbors[chip.index()]
    }

    fn link_gbs(&self) -> f64 {
        self.s.link_gbs
    }

    fn link_latency(&self) -> u64 {
        self.s.link_latency
    }

    fn route(&self, from: ChipId, dest: ChipId, alive: &LinkLiveness) -> Option<usize> {
        self.bfs_route(from, dest, alive)
    }
}

/// A 2-D mesh: chips placed row-major on the most balanced
/// `rows x cols` grid (see [`MachineConfig::mesh_dims`]), slot order
/// north, south, west, east (absent edges skipped). Routing is BFS
/// shortest-path over live links, which reduces to deterministic
/// dimension-ordered-ish routing on a healthy mesh and reroutes around
/// failed links automatically.
#[derive(Debug)]
pub struct Mesh2D {
    s: Structure,
}

impl Mesh2D {
    /// Build the mesh fabric over `cfg.chips` chips.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut mesh_cfg = cfg.clone();
        mesh_cfg.topology = TopologyKind::Mesh2D;
        Mesh2D {
            s: Structure::from_config(&mesh_cfg),
        }
    }
}

impl Topology for Mesh2D {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh2D
    }

    fn nodes(&self) -> usize {
        self.s.chips
    }

    fn neighbors(&self, chip: ChipId) -> &[ChipId] {
        &self.s.neighbors[chip.index()]
    }

    fn link_gbs(&self) -> f64 {
        self.s.link_gbs
    }

    fn link_latency(&self) -> u64 {
        self.s.link_latency
    }

    fn route(&self, from: ChipId, dest: ChipId, alive: &LinkLiveness) -> Option<usize> {
        self.bfs_route(from, dest, alive)
    }
}

/// Instantiate the topology selected by `cfg.topology`.
pub fn build_topology(cfg: &MachineConfig) -> Box<dyn Topology> {
    match cfg.topology {
        TopologyKind::Ring => Box::new(Ring::new(cfg)),
        TopologyKind::FullyConnected => Box::new(FullyConnected::new(cfg)),
        TopologyKind::Mesh2D => Box::new(Mesh2D::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(kind: TopologyKind, chips: usize) -> MachineConfig {
        let mut c = MachineConfig::paper_baseline();
        c.topology = kind;
        c.chips = chips;
        c
    }

    fn all_alive(topo: &dyn Topology) -> Vec<Vec<bool>> {
        ChipId::all(topo.nodes())
            .map(|c| vec![true; topo.neighbors(c).len()])
            .collect()
    }

    #[test]
    fn neighbors_match_config_structure() {
        for kind in TopologyKind::ALL {
            for chips in [2usize, 4, 8, 16] {
                let cfg = cfg_for(kind, chips);
                let topo = build_topology(&cfg);
                assert_eq!(topo.kind(), kind);
                assert_eq!(topo.nodes(), chips);
                for chip in ChipId::all(chips) {
                    assert_eq!(topo.neighbors(chip), cfg.neighbor_list(chip).as_slice());
                }
            }
        }
    }

    #[test]
    fn ring_route_matches_legacy_direction_policy() {
        let cfg = cfg_for(TopologyKind::Ring, 4);
        let ring = Ring::new(&cfg);
        let alive = all_alive(&ring);
        // Adjacent: shortest direction.
        assert_eq!(ring.route(ChipId(0), ChipId(1), &alive), Some(0));
        assert_eq!(ring.route(ChipId(0), ChipId(3), &alive), Some(1));
        // Opposite: even source clockwise, odd counter-clockwise.
        assert_eq!(ring.route(ChipId(0), ChipId(2), &alive), Some(0));
        assert_eq!(ring.route(ChipId(1), ChipId(3), &alive), Some(1));
    }

    #[test]
    fn ring_reroutes_long_way_and_detects_partition() {
        let cfg = cfg_for(TopologyKind::Ring, 4);
        let ring = Ring::new(&cfg);
        let mut alive = all_alive(&ring);
        alive[0][0] = false; // 0 -> 1 dead
        assert_eq!(ring.route(ChipId(0), ChipId(1), &alive), Some(1));
        alive[0][1] = false; // 0 -> 3 dead too: 0 cannot transmit at all
        assert_eq!(ring.route(ChipId(0), ChipId(1), &alive), None);
    }

    #[test]
    fn full_routes_direct_and_detours_around_dead_link() {
        let cfg = cfg_for(TopologyKind::FullyConnected, 4);
        let topo = FullyConnected::new(&cfg);
        let mut alive = all_alive(&topo);
        // Direct: slot of dest in 0's neighbor list [1, 2, 3].
        assert_eq!(topo.route(ChipId(0), ChipId(2), &alive), Some(1));
        // Kill 0 -> 2 (slot 1 at chip 0): detour via first live neighbor.
        alive[0][1] = false;
        assert_eq!(topo.route(ChipId(0), ChipId(2), &alive), Some(0));
    }

    #[test]
    fn mesh_routes_shortest_and_reroutes() {
        // 2x2 mesh: 0 1 / 2 3. Chip 0 neighbors: [south=2, east=1].
        let cfg = cfg_for(TopologyKind::Mesh2D, 4);
        let topo = Mesh2D::new(&cfg);
        let mut alive = all_alive(&topo);
        assert_eq!(topo.neighbors(ChipId(0)), &[ChipId(2), ChipId(1)]);
        // Diagonal 0 -> 3: two equal 2-hop paths; BFS slot order picks
        // south first.
        assert_eq!(topo.route(ChipId(0), ChipId(3), &alive), Some(0));
        // Kill 0 -> 2: the east path remains.
        alive[0][0] = false;
        assert_eq!(topo.route(ChipId(0), ChipId(3), &alive), Some(1));
        assert_eq!(topo.route(ChipId(0), ChipId(2), &alive), Some(1));
        // Kill 0 -> 1 too: chip 0 is mute.
        alive[0][1] = false;
        assert_eq!(topo.route(ChipId(0), ChipId(2), &alive), None);
    }
}
