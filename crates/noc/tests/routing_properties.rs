//! Property tests for topology-generic routing: every (src, dst) pair on
//! every topology × chip count delivers with no packet loss under `tick`,
//! and a single link failure either reroutes or yields a typed
//! `SendError::NoRoute` — never a silent drop.

use mcgpu_noc::{FabricNetwork, SendError};
use mcgpu_types::{ChipId, MachineConfig, TopologyKind};
use proptest::prelude::*;

fn cfg_for(kind: TopologyKind, chips: usize) -> MachineConfig {
    let mut c = MachineConfig::paper_baseline();
    c.topology = kind;
    c.chips = chips;
    // Plenty of bandwidth and a short latency keep the exhaustive
    // all-pairs drain fast while still exercising multi-hop forwarding.
    c.interchip_pair_gbs = 256.0;
    c.link_latency = 2;
    c
}

fn topology_kind() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Ring),
        Just(TopologyKind::FullyConnected),
        Just(TopologyKind::Mesh2D),
    ]
}

/// Inject one packet per ordered (src, dst) pair, ticking through `Full`
/// backpressure, and drain the fabric. Returns (delivered payloads as
/// (dst, src*256+dst), no-route payload count).
fn drive_all_pairs(
    fabric: &mut FabricNetwork<u32>,
    chips: usize,
    max_cycles: u64,
) -> (Vec<(usize, u32)>, usize) {
    let mut pending: Vec<(ChipId, ChipId, u32)> = Vec::new();
    for src in 0..chips {
        for dst in 0..chips {
            if src != dst {
                pending.push((
                    ChipId(src as u8),
                    ChipId(dst as u8),
                    (src * 256 + dst) as u32,
                ));
            }
        }
    }
    let mut delivered = Vec::new();
    let mut no_route = 0usize;
    for now in 0..max_cycles {
        pending.retain(
            |&(src, dst, tag)| match fabric.try_send(src, dst, tag, 32) {
                Ok(()) => false,
                Err(SendError::Full(_)) => true,
                Err(SendError::NoRoute(_)) => {
                    no_route += 1;
                    false
                }
            },
        );
        fabric.tick(now);
        for chip in 0..chips {
            for tag in fabric.pop_arrivals(ChipId(chip as u8), now) {
                delivered.push((chip, tag));
            }
        }
        if pending.is_empty() && fabric.is_empty() {
            break;
        }
    }
    (delivered, no_route)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Healthy fabric: every ordered pair delivers exactly once, to the
    /// right chip, with zero loss.
    #[test]
    fn all_pairs_deliver_on_healthy_fabric(
        kind in topology_kind(),
        chips in 2usize..=16,
    ) {
        let cfg = cfg_for(kind, chips);
        let mut fabric: FabricNetwork<u32> = FabricNetwork::new(&cfg, 8);
        let (delivered, no_route) = drive_all_pairs(&mut fabric, chips, 50_000);
        prop_assert_eq!(no_route, 0, "healthy {} fabric refused a route", kind);
        prop_assert!(fabric.is_empty(), "packets stuck in the {} fabric", kind);
        prop_assert_eq!(delivered.len(), chips * (chips - 1));
        for (chip, tag) in delivered {
            prop_assert_eq!(tag as usize % 256, chip, "misdelivered packet {tag}");
        }
    }

    /// One failed link: every packet either still delivers (reroute) or is
    /// refused up front with a typed `NoRoute` — injected + refused adds up
    /// exactly, and nothing is silently dropped in flight.
    #[test]
    fn single_link_failure_reroutes_or_reports(
        kind in topology_kind(),
        chips in 2usize..=16,
        link_pick in 0usize..1024,
    ) {
        let cfg = cfg_for(kind, chips);
        let pairs = cfg.link_pairs();
        let (a, b) = pairs[link_pick % pairs.len()];
        let mut fabric: FabricNetwork<u32> = FabricNetwork::new(&cfg, 8);
        fabric.fail_link(a, b);
        prop_assert!(!fabric.link_alive(a, b));
        let (delivered, no_route) = drive_all_pairs(&mut fabric, chips, 100_000);
        // Conservation: every injected packet lands; refusals are typed.
        prop_assert!(
            fabric.is_empty(),
            "{} fabric with dead link {:?}-{:?} lost packets in flight",
            kind, a, b
        );
        prop_assert_eq!(
            delivered.len() + no_route,
            chips * (chips - 1),
            "accepted + refused must cover every pair"
        );
        for (chip, tag) in &delivered {
            prop_assert_eq!(*tag as usize % 256, *chip, "misdelivered packet {tag}");
        }
        // A single link failure can only partition a line-shaped mesh
        // (1 x n grids); rings, all-to-all, and 2-D grids stay connected.
        let (rows, _) = cfg.mesh_dims();
        if !(kind == TopologyKind::Mesh2D && rows == 1) {
            prop_assert_eq!(no_route, 0, "{} should reroute around one dead link", kind);
        }
    }
}
