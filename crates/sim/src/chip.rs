//! Per-chip hardware: clusters, NoCs, LLC slices, memory partition.

use crate::cluster::Cluster;
use crate::packet::{ReqEnvelope, RingPayload, RspEnvelope};
use mcgpu_cache::{CacheConfig, SetAssocCache};
use mcgpu_mem::MemoryPartition;
use mcgpu_noc::Crossbar;
use mcgpu_types::{AccessKind, ChipId, ClusterId, MachineConfig, Pipe};
use std::collections::VecDeque;

/// Queue depth of each crossbar output port and the ring egress.
const PORT_QUEUE: usize = 32;
/// Queue depth in front of each LLC slice.
const SLICE_QUEUE: usize = 48;

/// Slice MSHRs: outstanding line fetches with the requests merged onto
/// them, stored as a flat `(line index, waiters)` table with a recycled
/// waiter-list pool. The table holds one entry per fetch in flight at one
/// slice — small enough that a linear scan beats hashing — and completed
/// entries return their `Vec` to the pool, so steady-state operation does
/// not allocate.
#[derive(Debug, Default)]
pub struct PendingFetches {
    entries: Vec<(u64, Vec<ReqEnvelope>)>,
    spare: Vec<Vec<ReqEnvelope>>,
}

impl PendingFetches {
    /// Whether a fetch for `line` is outstanding.
    pub fn contains(&self, line: u64) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Merge `env` onto the outstanding fetch for `line`, if one exists.
    pub fn merge(&mut self, line: u64, env: ReqEnvelope) -> bool {
        if let Some((_, waiters)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            waiters.push(env);
            true
        } else {
            false
        }
    }

    /// Register a new outstanding fetch for `line` with no waiters yet (the
    /// initiating request rides the memory path itself).
    pub fn begin(&mut self, line: u64) {
        debug_assert!(!self.contains(line));
        let waiters = self.spare.pop().unwrap_or_default();
        self.entries.push((line, waiters));
    }

    /// Complete the fetch for `line`, returning its merged waiters. Give
    /// the `Vec` back via [`recycle`](PendingFetches::recycle) once drained.
    pub fn take(&mut self, line: u64) -> Option<Vec<ReqEnvelope>> {
        let i = self.entries.iter().position(|(l, _)| *l == line)?;
        Some(self.entries.swap_remove(i).1)
    }

    /// Return a drained waiter list to the pool.
    pub fn recycle(&mut self, mut waiters: Vec<ReqEnvelope>) {
        waiters.clear();
        self.spare.push(waiters);
    }

    /// Total requests waiting on outstanding fetches.
    pub fn waiting(&self) -> usize {
        self.entries.iter().map(|(_, w)| w.len()).sum()
    }

    /// Whether no fetch is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize the outstanding fetches into a checkpoint payload. The
    /// recycled spare pool is allocation-only state and is not saved.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.entries.len());
        for (line, waiters) in &self.entries {
            e.put_u64(*line);
            e.put_seq_len(waiters.len());
            for w in waiters {
                w.save(e);
            }
        }
    }

    /// Restore state saved by [`PendingFetches::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load_into(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        let n = d.get_seq_len()?;
        self.entries.clear();
        for _ in 0..n {
            let line = d.get_u64()?;
            let m = d.get_seq_len()?;
            let mut waiters = self.spare.pop().unwrap_or_default();
            waiters.reserve(m);
            for _ in 0..m {
                waiters.push(ReqEnvelope::load(d)?);
            }
            self.entries.push((line, waiters));
        }
        Ok(())
    }
}

/// One LLC slice: the cache array behind a bandwidth/latency service pipe.
#[derive(Debug)]
pub struct LlcSlice {
    /// The cache array.
    pub cache: SetAssocCache,
    /// Service pipe modelling slice lookup bandwidth (`B_LLC / N`) and
    /// latency.
    pub service: Pipe<ReqEnvelope>,
    /// Slice MSHRs: requests merged onto an in-flight line fetch, keyed by
    /// line index. An entry is inserted when the fetch is initiated and
    /// drained when the line arrives.
    pub pending: PendingFetches,
    /// Fused off by fault injection: the slice no longer holds or allocates
    /// lines (every lookup misses, fills are dropped), but its service pipe
    /// and MSHRs keep draining so no request is lost.
    pub disabled: bool,
    line_size: u64,
}

impl LlcSlice {
    fn new(cfg: &MachineConfig) -> Self {
        let mut ccfg = CacheConfig::llc_slice(cfg.llc_slice_bytes(), cfg.llc_assoc, cfg.line_size);
        if cfg.sectored {
            ccfg = ccfg.with_sectors(cfg.sectors_per_line);
        }
        LlcSlice {
            cache: SetAssocCache::new(ccfg),
            service: Pipe::new(cfg.llc_slice_gbs, cfg.llc_latency, Some(SLICE_QUEUE)),
            pending: PendingFetches::default(),
            disabled: false,
            line_size: cfg.line_size,
        }
    }

    /// Bytes a request charges against the slice's lookup bandwidth: a full
    /// line for reads (data array read-out), the coalesced sector for
    /// writes.
    pub fn charge_bytes(&self, env: &ReqEnvelope) -> u64 {
        match env.req.access.kind {
            AccessKind::Read => self.line_size,
            AccessKind::Write => mcgpu_types::packet::WRITE_PAYLOAD_BYTES,
        }
    }
}

/// One GPU chip of the multi-chip package.
#[derive(Debug)]
pub struct Chip {
    /// This chip's id.
    pub id: ChipId,
    /// SM clusters with their private L1s.
    pub clusters: Vec<Cluster>,
    /// Request network: SM clusters (+ ring ingress) → LLC slices.
    pub xbar_req: Crossbar<ReqEnvelope>,
    /// Response network: slices/memory (+ ring ingress) → SM clusters.
    pub xbar_rsp: Crossbar<RspEnvelope>,
    /// The LLC slices.
    pub slices: Vec<LlcSlice>,
    /// The chip's memory partition.
    pub memory: MemoryPartition,
    /// NoC leg carrying traffic towards the inter-chip links.
    pub ring_egress: Pipe<RingPayload>,
    /// Payloads waiting to enter `ring_egress`.
    pub pending_ring: VecDeque<RingPayload>,
    /// Payload that left `ring_egress` but found the ring link full.
    pub ring_retry: Option<RingPayload>,
    /// Requests (from the ring) waiting to enter `xbar_req`.
    pub pending_req: VecDeque<ReqEnvelope>,
    /// Responses waiting to enter `xbar_rsp`.
    pub pending_rsp: VecDeque<RspEnvelope>,
    /// SM-side bypass path: ring → memory controller (Fig. 6, path 4).
    pub bypass_to_mem: Pipe<ReqEnvelope>,
}

impl Chip {
    /// Build one chip of the configured machine.
    pub fn new(cfg: &MachineConfig, id: ChipId) -> Self {
        let clusters = (0..cfg.clusters_per_chip)
            .map(|i| Cluster::new(cfg, ClusterId::new(id, i)))
            .collect();
        let slices = (0..cfg.slices_per_chip)
            .map(|_| LlcSlice::new(cfg))
            .collect();
        // Request ports feed the slices at slice intake bandwidth; response
        // ports share the bisection evenly over clusters.
        let req_port_gbs = cfg.llc_slice_gbs;
        let rsp_port_gbs = cfg.noc_bisection_gbs / cfg.clusters_per_chip as f64;
        Chip {
            id,
            clusters,
            xbar_req: Crossbar::new(
                cfg.slices_per_chip,
                req_port_gbs,
                cfg.noc_bisection_gbs,
                cfg.noc_latency,
                PORT_QUEUE,
            ),
            xbar_rsp: Crossbar::new(
                cfg.clusters_per_chip,
                rsp_port_gbs,
                cfg.noc_bisection_gbs,
                cfg.noc_latency,
                PORT_QUEUE,
            ),
            slices,
            memory: MemoryPartition::new(
                cfg.channels_per_chip,
                cfg.dram_channel_gbs,
                cfg.dram_latency,
                cfg.line_size,
            ),
            ring_egress: Pipe::new(cfg.egress_gbs(id), 4, Some(PORT_QUEUE)),
            pending_ring: VecDeque::new(),
            ring_retry: None,
            pending_req: VecDeque::new(),
            pending_rsp: VecDeque::new(),
            bypass_to_mem: Pipe::latency_only(8),
        }
    }

    /// Whether every queue, pipe, network and memory channel on this chip
    /// is empty (used for drain detection).
    pub fn is_quiescent(&self) -> bool {
        self.xbar_req.is_empty()
            && self.xbar_rsp.is_empty()
            && self
                .slices
                .iter()
                .all(|s| s.service.is_empty() && s.pending.is_empty())
            && self.memory.is_empty()
            && self.ring_egress.is_empty()
            && self.pending_ring.is_empty()
            && self.ring_retry.is_none()
            && self.pending_req.is_empty()
            && self.pending_rsp.is_empty()
            && self.bypass_to_mem.is_empty()
    }

    /// Whether ticking every datapath element on this chip is a state
    /// no-op: [`is_quiescent`](Chip::is_quiescent) plus every bandwidth
    /// budget (crossbar bisections and ports, slice service pipes, memory
    /// channels, ring egress, the bypass pipe) saturated at its credit cap,
    /// so the per-cycle refills no longer change any stored bits. This is
    /// the per-chip precondition for the engine's idle-cycle skip.
    pub fn tick_is_noop(&self) -> bool {
        self.is_quiescent()
            && self.xbar_req.tick_is_noop()
            && self.xbar_rsp.tick_is_noop()
            && self.slices.iter().all(|s| s.service.tick_is_noop())
            && self.memory.tick_is_noop()
            && self.ring_egress.tick_is_noop()
            && self.bypass_to_mem.tick_is_noop()
    }

    /// Aggregate LLC statistics over this chip's slices.
    pub fn llc_stats(&self) -> mcgpu_cache::CacheStats {
        let mut s = mcgpu_cache::CacheStats::default();
        for slice in &self.slices {
            s.merge(slice.cache.stats());
        }
        s
    }

    /// Aggregate L1 statistics over this chip's clusters.
    pub fn l1_stats(&self) -> mcgpu_cache::CacheStats {
        let mut s = mcgpu_cache::CacheStats::default();
        for c in &self.clusters {
            s.merge(c.l1_stats());
        }
        s
    }

    /// LLC occupancy by home across all slices `(local, remote, capacity)`.
    pub fn llc_occupancy(&self) -> (usize, usize, usize) {
        let mut local = 0;
        let mut remote = 0;
        let mut cap = 0;
        for s in &self.slices {
            let (l, r) = s.cache.occupancy_by_home();
            local += l;
            remote += r;
            cap += s.cache.config().capacity_lines();
        }
        (local, remote, cap)
    }

    /// Serialize the chip's full live state (clusters, crossbars, slices,
    /// memory partition, ring-side queues) into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.clusters.len());
        for cl in &self.clusters {
            cl.save(e);
        }
        self.xbar_req.save_with(e, |e, env| env.save(e));
        self.xbar_rsp.save_with(e, |e, env| env.save(e));
        e.put_seq_len(self.slices.len());
        for s in &self.slices {
            s.cache.save(e);
            s.service.save_with(e, |e, env| env.save(e));
            s.pending.save(e);
            e.put_bool(s.disabled);
        }
        self.memory.save(e);
        self.ring_egress.save_with(e, |e, p| p.save(e));
        e.put_seq_len(self.pending_ring.len());
        for p in &self.pending_ring {
            p.save(e);
        }
        e.put_bool(self.ring_retry.is_some());
        if let Some(p) = &self.ring_retry {
            p.save(e);
        }
        e.put_seq_len(self.pending_req.len());
        for env in &self.pending_req {
            env.save(e);
        }
        e.put_seq_len(self.pending_rsp.len());
        for env in &self.pending_rsp {
            env.save(e);
        }
        self.bypass_to_mem.save_with(e, |e, env| env.save(e));
    }

    /// Restore state saved by [`Chip::save`] into this chip. The caller
    /// must have re-attached the in-progress kernel's traces to the
    /// clusters first.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input, or when the
    /// snapshot's geometry (cluster/slice counts) does not match this chip.
    pub fn load_into(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        let n = d.get_seq_len()?;
        if n != self.clusters.len() {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "snapshot has {n} clusters, chip has {}",
                self.clusters.len()
            )));
        }
        for cl in &mut self.clusters {
            cl.load_into(d)?;
        }
        self.xbar_req = mcgpu_noc::Crossbar::load_with(d, ReqEnvelope::load)?;
        self.xbar_rsp = mcgpu_noc::Crossbar::load_with(d, RspEnvelope::load)?;
        let n = d.get_seq_len()?;
        if n != self.slices.len() {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "snapshot has {n} LLC slices, chip has {}",
                self.slices.len()
            )));
        }
        for s in &mut self.slices {
            s.cache.load_into(d)?;
            s.service = Pipe::load_with(d, ReqEnvelope::load)?;
            s.pending.load_into(d)?;
            s.disabled = d.get_bool()?;
        }
        self.memory.load_into(d)?;
        self.ring_egress = Pipe::load_with(d, RingPayload::load)?;
        let n = d.get_seq_len()?;
        self.pending_ring.clear();
        for _ in 0..n {
            self.pending_ring.push_back(RingPayload::load(d)?);
        }
        self.ring_retry = if d.get_bool()? {
            Some(RingPayload::load(d)?)
        } else {
            None
        };
        let n = d.get_seq_len()?;
        self.pending_req.clear();
        for _ in 0..n {
            self.pending_req.push_back(ReqEnvelope::load(d)?);
        }
        let n = d.get_seq_len()?;
        self.pending_rsp.clear();
        for _ in 0..n {
            self.pending_rsp.push_back(RspEnvelope::load(d)?);
        }
        self.bypass_to_mem = Pipe::load_with(d, ReqEnvelope::load)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_matches_configuration() {
        let cfg = MachineConfig::experiment_baseline();
        let chip = Chip::new(&cfg, ChipId(2));
        assert_eq!(chip.clusters.len(), cfg.clusters_per_chip);
        assert_eq!(chip.slices.len(), cfg.slices_per_chip);
        assert_eq!(chip.memory.num_channels(), cfg.channels_per_chip);
        assert_eq!(chip.xbar_req.ports(), cfg.slices_per_chip);
        assert_eq!(chip.xbar_rsp.ports(), cfg.clusters_per_chip);
        assert!(chip.is_quiescent());
    }

    #[test]
    fn slice_charges_line_for_reads() {
        let cfg = MachineConfig::experiment_baseline();
        let chip = Chip::new(&cfg, ChipId(0));
        let read = ReqEnvelope {
            req: mcgpu_types::Request {
                id: mcgpu_types::RequestId(1),
                origin: ClusterId::new(ChipId(0), 0),
                access: mcgpu_types::MemAccess::read(0u64),
                home: ChipId(0),
            },
            stage: crate::packet::ReqStage::ToHomeSlice,
        };
        assert_eq!(chip.slices[0].charge_bytes(&read), cfg.line_size);
        let write = ReqEnvelope {
            req: mcgpu_types::Request {
                access: mcgpu_types::MemAccess::write(0u64),
                ..read.req
            },
            ..read
        };
        assert_eq!(chip.slices[0].charge_bytes(&write), 32);
    }
}
