//! SM-cluster frontend: trace-driven request generation behind a private
//! write-through L1 with MSHRs.

use mcgpu_cache::{CacheConfig, DataHome, LookupOutcome, SetAssocCache};
use mcgpu_types::{AccessKind, ClusterId, LineAddr, MachineConfig, MemAccess, SectorId};
use std::sync::Arc;

/// The cluster's MSHR file: a preallocated flat table of
/// `(line index, merged count)` entries, linear-scanned on lookup. The
/// table never exceeds `mshrs_per_cluster` entries (64 in the baseline),
/// where a scan beats hashing and the storage never reallocates on the
/// per-cycle path.
#[derive(Debug)]
struct MshrFile {
    entries: Vec<(u64, u32)>,
}

impl MshrFile {
    fn with_capacity(limit: usize) -> Self {
        MshrFile {
            entries: Vec::with_capacity(limit),
        }
    }

    /// Merge another access onto an outstanding miss. Returns `false` when
    /// no fetch for `line` is in flight.
    fn merge(&mut self, line: u64) -> bool {
        if let Some((_, merged)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            *merged += 1;
            true
        } else {
            false
        }
    }

    /// Allocate a new entry for `line` with one merged access.
    fn allocate(&mut self, line: u64) {
        debug_assert!(!self.entries.iter().any(|(l, _)| *l == line));
        self.entries.push((line, 1));
    }

    /// Retire the entry for `line`, returning its merged count (1 when the
    /// fill had no registered miss, e.g. an L1 refill after a flush).
    fn retire(&mut self, line: u64) -> u32 {
        match self.entries.iter().position(|(l, _)| *l == line) {
            Some(i) => self.entries.swap_remove(i).1,
            None => 1,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One SM cluster (two SMs sharing a NoC port): issues the accesses of its
/// trace stream, filters them through the private L1, merges outstanding
/// misses in MSHRs, and paces itself with a compute gap.
#[derive(Debug)]
pub struct Cluster {
    id: ClusterId,
    l1: SetAssocCache,
    line_size: u64,
    sectors: Option<u32>,
    trace: Arc<[MemAccess]>,
    cursor: usize,
    gap_remaining: u32,
    compute_gap: u32,
    mshr_limit: usize,
    /// Read misses in flight: line index → number of merged accesses.
    mshrs: MshrFile,
    /// An access that missed the L1 but whose request could not be injected
    /// (backpressure); retried before the trace advances.
    deferred: Option<MemAccess>,
    reads_done: u64,
    writes_issued: u64,
}

impl Cluster {
    /// Create a cluster with the machine's L1 geometry.
    pub fn new(cfg: &MachineConfig, id: ClusterId) -> Self {
        let mut l1cfg = CacheConfig::l1(cfg.l1_bytes_per_cluster, cfg.l1_assoc, cfg.line_size);
        if cfg.sectored {
            l1cfg = l1cfg.with_sectors(cfg.sectors_per_line);
        }
        Cluster {
            id,
            l1: SetAssocCache::new(l1cfg),
            line_size: cfg.line_size,
            sectors: cfg.sectored.then_some(cfg.sectors_per_line),
            trace: Arc::from(Vec::new()),
            cursor: 0,
            gap_remaining: 0,
            compute_gap: 0,
            mshr_limit: cfg.mshrs_per_cluster,
            mshrs: MshrFile::with_capacity(cfg.mshrs_per_cluster),
            deferred: None,
            reads_done: 0,
            writes_issued: 0,
        }
    }

    /// This cluster's identifier.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Load a kernel's access stream and compute gap; resets the cursor but
    /// keeps L1 contents (software coherence invalidates explicitly via
    /// [`flush_l1`](Cluster::flush_l1)). The stream is shared, not copied:
    /// the simulator hands each cluster an `Arc` clone of the workload's
    /// trace.
    pub fn load_kernel(&mut self, trace: impl Into<Arc<[MemAccess]>>, compute_gap: u32) {
        self.trace = trace.into();
        self.cursor = 0;
        self.gap_remaining = 0;
        self.compute_gap = compute_gap;
        self.deferred = None;
    }

    /// The sector of `access` if the machine uses sectored caches.
    pub fn sector_of(&self, access: &MemAccess) -> Option<SectorId> {
        self.sectors
            .map(|s| LineAddr::sector_of(access.addr, self.line_size, s))
    }

    /// Attempt to issue the next memory instruction. Returns the L1 miss
    /// produced this cycle, tagged with whether it needs a new request
    /// (`true`) or merged into an outstanding MSHR (`false` — observable
    /// but nothing to send). Returns `None` when the cluster is idle this
    /// cycle (compute gap, L1 hit consumed the instruction, MSHRs
    /// exhausted, or trace finished).
    ///
    /// The caller must either successfully inject a request for a
    /// needs-request access or give it back via [`defer`](Cluster::defer).
    pub fn issue(&mut self) -> Option<(MemAccess, bool)> {
        // Retry a back-pressured access first: its L1 work is already done.
        if let Some(acc) = self.deferred.take() {
            return Some((acc, true));
        }
        if self.gap_remaining > 0 {
            self.gap_remaining -= 1;
            return None;
        }
        let acc = *self.trace.get(self.cursor)?;
        let line = acc.addr.line(self.line_size);
        let sector = self.sector_of(&acc);
        match acc.kind {
            AccessKind::Read => {
                match self.l1.lookup(line, sector, false) {
                    LookupOutcome::Hit => {
                        self.cursor += 1;
                        self.reads_done += 1;
                        self.gap_remaining = self.compute_gap;
                        // Zero-gap clusters may hit repeatedly; issue at
                        // most one instruction per `issue` call to model
                        // the issue width.
                        None
                    }
                    LookupOutcome::Miss | LookupOutcome::SectorMiss => {
                        if self.mshrs.merge(line.index()) {
                            // Merged into the outstanding miss.
                            self.cursor += 1;
                            self.gap_remaining = self.compute_gap;
                            return Some((acc, false));
                        }
                        if self.mshrs.len() >= self.mshr_limit {
                            return None; // stall: no MSHR free
                        }
                        self.mshrs.allocate(line.index());
                        self.cursor += 1;
                        self.gap_remaining = self.compute_gap;
                        Some((acc, true))
                    }
                }
            }
            AccessKind::Write => {
                // Write-through, no write-allocate: update the line in
                // place if present (kept clean; the LLC owns dirtiness)
                // and always send the write onward.
                let _ = self.l1.lookup(line, sector, false);
                self.cursor += 1;
                self.writes_issued += 1;
                self.gap_remaining = self.compute_gap;
                Some((acc, true))
            }
        }
    }

    /// Give back an access whose request could not be injected this cycle.
    pub fn defer(&mut self, acc: MemAccess) {
        debug_assert!(self.deferred.is_none());
        self.deferred = Some(acc);
    }

    /// A read response for `access` arrived: fill the L1 and complete all
    /// merged accesses. Returns the number of accesses completed.
    pub fn complete_read(&mut self, access: &MemAccess) -> u32 {
        let line = access.addr.line(self.line_size);
        let sector = self.sector_of(access);
        self.l1.fill(line, sector, DataHome::Local, false);
        let merged = self.mshrs.retire(line.index());
        self.reads_done += merged as u64;
        merged
    }

    /// Outstanding read misses (MSHRs in use).
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }

    /// Instructions of the current kernel consumed so far (trace cursor).
    pub fn progress(&self) -> usize {
        self.cursor
    }

    /// Instructions in the current kernel's stream.
    pub fn stream_len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the cluster has issued everything and all misses returned.
    pub fn done(&self) -> bool {
        self.cursor >= self.trace.len() && self.mshrs.is_empty() && self.deferred.is_none()
    }

    /// Reads completed (including L1 hits and merged misses).
    pub fn reads_done(&self) -> u64 {
        self.reads_done
    }

    /// Remaining compute-gap cycles before the next instruction can issue.
    pub fn gap_remaining(&self) -> u32 {
        self.gap_remaining
    }

    /// Whether a back-pressured access is waiting to be retried.
    pub fn has_deferred(&self) -> bool {
        self.deferred.is_some()
    }

    /// Idle-cycle skip: account for `k` issue opportunities during which
    /// this cluster would only have decremented its compute gap. Replicates
    /// exactly what `k` consecutive [`issue`](Cluster::issue) calls do when
    /// each returns `None` in the gap branch — the caller guarantees `k`
    /// never runs past the point where the cluster would have issued (a
    /// finished cluster's gap simply drains to zero and stays there, as it
    /// does in the stepped loop).
    pub fn skip_gap(&mut self, k: u64) {
        self.gap_remaining = self
            .gap_remaining
            .saturating_sub(u32::try_from(k).unwrap_or(u32::MAX));
    }

    /// Writes issued into the memory system.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }

    /// Software coherence: invalidate the L1 (write-through, so nothing to
    /// write back).
    pub fn flush_l1(&mut self) {
        let dirty = self.l1.flush_all();
        debug_assert!(dirty.is_empty(), "write-through L1 is never dirty");
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &mcgpu_cache::CacheStats {
        self.l1.stats()
    }

    /// Serialize the cluster's live state (L1 contents, trace cursor,
    /// MSHRs, pacing) into a checkpoint payload. The trace itself is not
    /// serialized — restore re-attaches it from the workload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        self.l1.save(e);
        e.put_usize(self.cursor);
        e.put_u32(self.gap_remaining);
        e.put_u32(self.compute_gap);
        e.put_seq_len(self.mshrs.entries.len());
        for &(line, merged) in &self.mshrs.entries {
            e.put_u64(line);
            e.put_u32(merged);
        }
        e.put_bool(self.deferred.is_some());
        if let Some(acc) = &self.deferred {
            e.put_access(acc);
        }
        e.put_u64(self.reads_done);
        e.put_u64(self.writes_issued);
    }

    /// Restore state saved by [`Cluster::save`] into this cluster. The
    /// caller must have re-attached the in-progress kernel's trace (via
    /// [`Cluster::load_kernel`]) first — the saved cursor is validated
    /// against the attached stream.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input, or when the
    /// saved cursor runs past the attached trace.
    pub fn load_into(&mut self, d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<()> {
        self.l1.load_into(d)?;
        let cursor = d.get_usize()?;
        if cursor > self.trace.len() {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "cluster cursor {cursor} exceeds attached trace length {}",
                self.trace.len()
            )));
        }
        self.cursor = cursor;
        self.gap_remaining = d.get_u32()?;
        self.compute_gap = d.get_u32()?;
        let n = d.get_seq_len()?;
        self.mshrs.entries.clear();
        for _ in 0..n {
            let line = d.get_u64()?;
            let merged = d.get_u32()?;
            self.mshrs.entries.push((line, merged));
        }
        self.deferred = if d.get_bool()? {
            Some(d.get_access()?)
        } else {
            None
        };
        self.reads_done = d.get_u64()?;
        self.writes_issued = d.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_types::{Address, ChipId};

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    fn cluster() -> Cluster {
        Cluster::new(&cfg(), ClusterId::new(ChipId(0), 0))
    }

    fn read(line: u64) -> MemAccess {
        MemAccess::read(Address::new(line * 128))
    }

    fn write(line: u64) -> MemAccess {
        MemAccess::write(Address::new(line * 128))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cluster();
        c.load_kernel(vec![read(1), read(1)], 0);
        let (acc, needs) = c.issue().expect("first read misses");
        assert!(needs);
        assert_eq!(acc.addr.raw(), 128);
        assert_eq!(c.outstanding(), 1);
        // The second read merges into the MSHR instead of re-requesting.
        let (_, needs) = c.issue().expect("merged miss is still reported");
        assert!(!needs);
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.complete_read(&acc), 2);
        assert!(c.done());
        assert_eq!(c.reads_done(), 2);
        // A later kernel re-reading the line hits in L1.
        c.load_kernel(vec![read(1)], 0);
        assert!(c.issue().is_none());
        assert!(c.done());
        assert_eq!(c.reads_done(), 3);
    }

    #[test]
    fn mshr_limit_stalls() {
        let mut cfg = cfg();
        cfg.mshrs_per_cluster = 2;
        let mut c = Cluster::new(&cfg, ClusterId::new(ChipId(0), 0));
        c.load_kernel(vec![read(1), read(2), read(3)], 0);
        assert!(c.issue().is_some());
        assert!(c.issue().is_some());
        assert!(c.issue().is_none(), "MSHRs full");
        assert!(!c.done());
        c.complete_read(&read(1));
        assert!(c.issue().is_some(), "freed MSHR allows the third miss");
    }

    #[test]
    fn writes_always_go_out() {
        let mut c = cluster();
        c.load_kernel(vec![write(5), write(5)], 0);
        assert_eq!(c.issue().unwrap().0.kind, AccessKind::Write);
        assert_eq!(c.issue().unwrap().0.kind, AccessKind::Write);
        assert!(c.done(), "writes hold no MSHRs");
        assert_eq!(c.writes_issued(), 2);
    }

    #[test]
    fn compute_gap_paces_issue() {
        let mut c = cluster();
        c.load_kernel(vec![write(1), write(2)], 2);
        assert!(c.issue().is_some()); // cycle 0: first write
        assert!(c.issue().is_none()); // gap
        assert!(c.issue().is_none()); // gap
        assert!(c.issue().is_some()); // second write
    }

    #[test]
    fn deferred_access_is_retried_first() {
        let mut c = cluster();
        c.load_kernel(vec![read(1), read(2)], 0);
        let (a, _) = c.issue().unwrap();
        c.defer(a);
        let (again, needs) = c.issue().unwrap();
        assert_eq!(a, again);
        assert!(needs);
        assert!(!c.done());
    }

    #[test]
    fn flush_l1_forces_refetch() {
        let mut c = cluster();
        c.load_kernel(vec![read(9)], 0);
        let (a, _) = c.issue().unwrap();
        c.complete_read(&a);
        c.flush_l1();
        c.load_kernel(vec![read(9)], 0);
        assert!(c.issue().is_some(), "post-flush read must miss");
    }
}
