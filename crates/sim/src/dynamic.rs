//! The Dynamic LLC partitioning heuristic (Milic et al., MICRO 2017).
//!
//! Starting from a half-local / half-remote way split, the controller
//! periodically compares the bandwidth drawn from the local memory
//! partitions (outgoing local memory bandwidth) against the bandwidth
//! arriving over the inter-chip links, and shifts one way towards whichever
//! side is the bottleneck: more remote ways cache more remote data locally
//! and relieve the inter-chip links; more local ways relieve local memory.

/// Epoch-based way-split controller for the Dynamic LLC organization.
#[derive(Debug, Clone)]
pub struct DynamicCtl {
    epoch_cycles: u64,
    next_epoch: u64,
    assoc: usize,
    local_ways: usize,
    last_ring_bytes: u64,
    last_mem_bytes: u64,
    adjustments: u64,
}

impl DynamicCtl {
    /// Create a controller for caches of `assoc` ways, starting half/half,
    /// re-evaluating every `epoch_cycles`.
    ///
    /// # Panics
    /// Panics if `assoc < 2` (both pools need at least one way).
    pub fn new(assoc: usize, epoch_cycles: u64) -> Self {
        assert!(assoc >= 2, "dynamic partitioning needs at least 2 ways");
        DynamicCtl {
            epoch_cycles,
            next_epoch: epoch_cycles,
            assoc,
            local_ways: assoc / 2,
            last_ring_bytes: 0,
            last_mem_bytes: 0,
            adjustments: 0,
        }
    }

    /// Ways currently reserved for local data.
    pub fn local_ways(&self) -> usize {
        self.local_ways
    }

    /// Number of epoch adjustments performed.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The next cycle at which [`maybe_adjust`](DynamicCtl::maybe_adjust)
    /// can act; before this cycle it is a pure no-op. Feeds the engine's
    /// next-event scan for idle-cycle skipping.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Evaluate at cycle `now` given the machine-wide cumulative ring bytes
    /// and local-memory bytes. Returns the new local-way count when the
    /// split changed.
    pub fn maybe_adjust(&mut self, now: u64, ring_bytes: u64, mem_bytes: u64) -> Option<usize> {
        if now < self.next_epoch {
            return None;
        }
        self.next_epoch = now + self.epoch_cycles;
        let ring_delta = ring_bytes.saturating_sub(self.last_ring_bytes);
        let mem_delta = mem_bytes.saturating_sub(self.last_mem_bytes);
        self.last_ring_bytes = ring_bytes;
        self.last_mem_bytes = mem_bytes;

        let before = self.local_ways;
        // Inter-chip pressure dominating: grow the remote pool; local-memory
        // pressure dominating: grow the local pool. A 25% hysteresis band
        // avoids oscillation.
        if ring_delta as f64 > mem_delta as f64 * 1.25 && self.local_ways > 1 {
            self.local_ways -= 1;
        } else if mem_delta as f64 > ring_delta as f64 * 1.25 && self.local_ways < self.assoc - 1 {
            self.local_ways += 1;
        }
        if self.local_ways != before {
            self.adjustments += 1;
            Some(self.local_ways)
        } else {
            None
        }
    }

    /// Reset measurement state at a kernel boundary (the way split is kept —
    /// the design adapts continuously across kernels).
    pub fn new_kernel(&mut self, now: u64, ring_bytes: u64, mem_bytes: u64) {
        self.next_epoch = now + self.epoch_cycles;
        self.last_ring_bytes = ring_bytes;
        self.last_mem_bytes = mem_bytes;
    }

    /// Serialize the controller state into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.epoch_cycles);
        e.put_u64(self.next_epoch);
        e.put_usize(self.assoc);
        e.put_usize(self.local_ways);
        e.put_u64(self.last_ring_bytes);
        e.put_u64(self.last_mem_bytes);
        e.put_u64(self.adjustments);
    }

    /// Deserialize a controller saved by [`DynamicCtl::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input, or when the
    /// saved way split is out of range for the saved associativity.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let epoch_cycles = d.get_u64()?;
        let next_epoch = d.get_u64()?;
        let assoc = d.get_usize()?;
        let local_ways = d.get_usize()?;
        if assoc < 2 || local_ways == 0 || local_ways >= assoc {
            return Err(mcgpu_types::CkptError::Decode(format!(
                "invalid dynamic way split: {local_ways} local of {assoc} ways"
            )));
        }
        Ok(DynamicCtl {
            epoch_cycles,
            next_epoch,
            assoc,
            local_ways,
            last_ring_bytes: d.get_u64()?,
            last_mem_bytes: d.get_u64()?,
            adjustments: d.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_half_half() {
        let c = DynamicCtl::new(16, 1000);
        assert_eq!(c.local_ways(), 8);
    }

    #[test]
    fn ring_pressure_grows_remote_pool() {
        let mut c = DynamicCtl::new(16, 1000);
        // Heavy ring traffic, light memory traffic.
        assert_eq!(c.maybe_adjust(1000, 1_000_000, 100), Some(7));
        assert_eq!(c.maybe_adjust(2000, 2_000_000, 200), Some(6));
        assert_eq!(c.local_ways(), 6);
    }

    #[test]
    fn memory_pressure_grows_local_pool() {
        let mut c = DynamicCtl::new(16, 1000);
        assert_eq!(c.maybe_adjust(1000, 100, 1_000_000), Some(9));
        assert_eq!(c.local_ways(), 9);
    }

    #[test]
    fn clamped_to_leave_one_way_each() {
        let mut c = DynamicCtl::new(4, 100);
        for e in 1..20u64 {
            c.maybe_adjust(e * 100, e * 1_000_000, 0);
        }
        assert_eq!(c.local_ways(), 1);
        let mut c = DynamicCtl::new(4, 100);
        for e in 1..20u64 {
            c.maybe_adjust(e * 100, 0, e * 1_000_000);
        }
        assert_eq!(c.local_ways(), 3);
    }

    #[test]
    fn balanced_traffic_holds_steady() {
        let mut c = DynamicCtl::new(16, 1000);
        assert_eq!(c.maybe_adjust(1000, 1000, 1000), None);
        assert_eq!(c.maybe_adjust(2000, 2100, 2000), None, "within hysteresis");
        assert_eq!(c.local_ways(), 8);
        assert_eq!(c.adjustments(), 0);
    }

    #[test]
    fn epoch_gating() {
        let mut c = DynamicCtl::new(16, 1000);
        assert_eq!(c.maybe_adjust(500, 1_000_000, 0), None, "too early");
        assert!(c.maybe_adjust(1000, 1_000_000, 0).is_some());
    }
}
