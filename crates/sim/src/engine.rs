//! The cycle-stepped simulation engine.

use crate::chip::Chip;
use crate::cluster::Cluster;
use crate::dynamic::DynamicCtl;
use crate::packet::{FillAction, ReqEnvelope, ReqStage, RingPayload, RspEnvelope};
use crate::stats::{KernelStats, RunStats};
use mcgpu_cache::{DataHome, LookupOutcome};
use mcgpu_mem::{interleave, DramRequest, PageTable};
use mcgpu_noc::RingNetwork;
use mcgpu_trace::Workload;
use mcgpu_types::{
    AccessKind, ChipId, CoherenceKind, ConfigError, FaultKind, FaultPlan, LineAddr, LlcOrgKind,
    MachineConfig, MemAccess, Request, RequestId, Response, ResponseOrigin,
};
use sac::eab::{ArchBandwidth, EabModel};
use sac::{LlcMode, SacConfig, SacController};

/// Chip-granularity sharer directory for hardware coherence, stored as a
/// flat byte-per-line bitmask table indexed by line index. The table grows
/// on demand to the highest line ever filled and is reset with a `memset`
/// at kernel boundaries, so the per-access path is one bounds check and one
/// byte load — no hashing, no per-kernel reallocation.
#[derive(Debug, Default)]
struct SharerDirectory {
    masks: Vec<u8>,
}

impl SharerDirectory {
    /// Sharer mask for `line` (`0` = untracked).
    fn mask(&self, line: u64) -> u8 {
        self.masks.get(line as usize).copied().unwrap_or(0)
    }

    /// Replace the sharer set of a tracked `line` with `mask`. Untracked
    /// lines stay untracked (matching the map-based behaviour where a write
    /// to an absent entry is a no-op).
    fn set(&mut self, line: u64, mask: u8) {
        if let Some(m) = self.masks.get_mut(line as usize) {
            *m = mask;
        }
    }

    /// Record chip `c` as holding a replica of `line`.
    fn fill(&mut self, line: u64, c: usize) {
        let idx = line as usize;
        if idx >= self.masks.len() {
            // Amortized growth: doubling keeps the number of grows
            // logarithmic in the footprint while tracking it closely.
            self.masks.resize((idx + 1).max(self.masks.len() * 2), 0);
        }
        self.masks[idx] |= 1 << c;
    }

    /// Drop all sharer state, keeping the table's capacity.
    fn clear(&mut self) {
        self.masks.fill(0);
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded the configured cycle budget (livelock guard).
    CycleLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The forward-progress watchdog fired: no request retired anywhere in
    /// the machine for a whole watchdog window. Carries a diagnostic
    /// snapshot of where the in-flight work is stuck.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// The progress-free window length that triggered it.
        window: u64,
        /// Where the stuck work sits, per chip.
        snapshot: Box<DeadlockSnapshot>,
    },
    /// The per-run wall-clock deadline elapsed. The simulation was still
    /// making forward progress — just too slowly for the caller's budget
    /// (the sweep runner's per-cell deadline). The deadline is abort-only
    /// and checked on a coarse cycle grid, so enabling it never perturbs
    /// the statistics of runs that complete.
    Timeout {
        /// Wall-clock time spent, milliseconds.
        elapsed_ms: u64,
        /// The configured budget, milliseconds.
        budget_ms: u64,
    },
    /// The request-conservation audit failed: the engine's in-flight
    /// counter disagrees with the number of request-carrying entries found
    /// in the machine's queues — a request was lost or double-counted.
    /// Carries the per-chip breakdown of where requests were found.
    InvariantViolation {
        /// Cycle at which the audit failed.
        cycle: u64,
        /// What the audit counted.
        report: Box<ConservationReport>,
    },
    /// The simulator could not be built or run from the given inputs.
    Config(ConfigError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::Deadlock {
                cycle,
                window,
                snapshot,
            } => {
                write!(
                    f,
                    "no forward progress for {window} cycles (deadlock at cycle {cycle}): {snapshot}"
                )
            }
            SimError::Timeout {
                elapsed_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "simulation exceeded its wall-clock deadline ({elapsed_ms} ms spent, budget {budget_ms} ms)"
                )
            }
            SimError::InvariantViolation { cycle, report } => {
                write!(
                    f,
                    "request-conservation violation at cycle {cycle}: {report}"
                )
            }
            SimError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Where in-flight work was sitting when the forward-progress watchdog
/// fired. Every field is a queue depth (entries, not bytes) captured at the
/// moment of the abort.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Requests issued but never completed, machine-wide.
    pub in_flight: u64,
    /// Why issue was paused, if it was (`"running"`, `"sac-drain"`,
    /// `"sac-flush"`).
    pub pause: String,
    /// Per-chip queue depths.
    pub chips: Vec<ChipSnapshot>,
}

/// One chip's queue depths inside a [`DeadlockSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipSnapshot {
    /// The chip index.
    pub chip: usize,
    /// Outstanding L1 MSHR entries summed over the chip's clusters.
    pub cluster_mshrs: usize,
    /// Entries inside the request crossbar.
    pub xbar_req: usize,
    /// Entries inside the response crossbar.
    pub xbar_rsp: usize,
    /// Requests queued or in flight at the LLC slice service pipes.
    pub slice_service: usize,
    /// Requests merged onto outstanding LLC line fetches (slice MSHRs).
    pub slice_pending: usize,
    /// Requests inside the DRAM channel pipes.
    pub memory: usize,
    /// Requests on the ring→memory bypass path.
    pub bypass: usize,
    /// Payloads waiting to leave the chip for the ring (including the
    /// egress pipe and retry slot).
    pub ring_egress: usize,
    /// Payloads inside the ring fabric charged to this chip (link pipes,
    /// transit buffers, undelivered arrivals).
    pub ring_fabric: usize,
}

impl ChipSnapshot {
    /// Total stuck entries on this chip.
    pub fn total(&self) -> usize {
        self.cluster_mshrs
            + self.xbar_req
            + self.xbar_rsp
            + self.slice_service
            + self.slice_pending
            + self.memory
            + self.bypass
            + self.ring_egress
            + self.ring_fabric
    }
}

impl std::fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in flight, pause={}", self.in_flight, self.pause)?;
        for c in &self.chips {
            write!(
                f,
                "; chip{}: mshr={} xbar={}+{} slice={}+{} mem={} bypass={} ring={}+{}",
                c.chip,
                c.cluster_mshrs,
                c.xbar_req,
                c.xbar_rsp,
                c.slice_service,
                c.slice_pending,
                c.memory,
                c.bypass,
                c.ring_egress,
                c.ring_fabric
            )?;
        }
        Ok(())
    }
}

/// What the request-conservation audit counted when it found a mismatch:
/// the engine's issued-minus-retired counter versus the request-carrying
/// entries actually present in the machine's queues. Writeback sentinels,
/// ring writebacks and invalidations are excluded on both sides — they
/// never enter the in-flight count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Requests issued but not yet completed (the engine's counter).
    pub in_flight: u64,
    /// Request-carrying queue entries found machine-wide.
    pub accounted: u64,
    /// Request-carrying ring-fabric packets (machine-wide; the ring does
    /// not attribute transit packets to a chip).
    pub ring_fabric: usize,
    /// Per-chip breakdown of the accounted entries.
    pub chips: Vec<ChipConservation>,
}

/// One chip's request-carrying queue entries inside a
/// [`ConservationReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipConservation {
    /// The chip index.
    pub chip: usize,
    /// Requests inside the request crossbar and its ring-ingress queue.
    pub network_req: usize,
    /// Requests queued or in flight at the LLC slice service pipes.
    pub slice_service: usize,
    /// Requests merged onto outstanding LLC line fetches (slice MSHRs).
    pub slice_waiters: usize,
    /// Live requests inside the DRAM channels (writeback sentinels
    /// excluded).
    pub memory: usize,
    /// Requests on the ring→memory bypass path.
    pub bypass: usize,
    /// Responses inside the response crossbar and its ingress queue.
    pub network_rsp: usize,
    /// Request/response payloads waiting to leave the chip for the ring.
    pub ring_egress: usize,
}

impl ChipConservation {
    /// Total request-carrying entries on this chip.
    pub fn total(&self) -> usize {
        self.network_req
            + self.slice_service
            + self.slice_waiters
            + self.memory
            + self.bypass
            + self.network_rsp
            + self.ring_egress
    }
}

impl std::fmt::Display for ConservationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in_flight={} but accounted={} (ring fabric {})",
            self.in_flight, self.accounted, self.ring_fabric
        )?;
        for c in &self.chips {
            write!(
                f,
                "; chip{}: req={} slice={}+{} mem={} bypass={} rsp={} egress={}",
                c.chip,
                c.network_req,
                c.slice_service,
                c.slice_waiters,
                c.memory,
                c.bypass,
                c.network_rsp,
                c.ring_egress
            )?;
        }
        Ok(())
    }
}

/// Why the engine is not issuing new instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pause {
    /// Normal execution.
    Running,
    /// SAC waits for in-flight requests to drain (§3.6 step 1).
    SacDrain,
    /// SAC writes back dirty LLC lines before switching (§3.6 step 2).
    SacFlush,
}

/// Builder for a [`Simulator`].
///
/// # Example
/// See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cfg: MachineConfig,
    org: LlcOrgKind,
    sac_cfg: SacConfig,
    max_cycles: u64,
    dynamic_epoch: u64,
    fault_plan: FaultPlan,
    watchdog_window: u64,
    deadline: Option<std::time::Duration>,
    audit_period: u64,
}

/// Request-conservation audit cadence in debug builds. Release builds
/// default the audit off (`0`); callers opt in via
/// [`SimBuilder::conservation_audit`].
const AUDIT_PERIOD_DEFAULT: u64 = 4096;

impl SimBuilder {
    /// Start from a machine configuration. The forward-progress watchdog
    /// window defaults to the configuration's `watchdog_cycles` (generous
    /// against every legitimate stall in the model, the longest being a
    /// full SAC drain of a saturated machine, yet far shorter than the
    /// cycle budget).
    pub fn new(cfg: MachineConfig) -> Self {
        let sac_cfg = SacConfig::for_machine(&cfg);
        let watchdog_window = cfg.watchdog_cycles;
        SimBuilder {
            cfg,
            org: LlcOrgKind::MemorySide,
            sac_cfg,
            max_cycles: 50_000_000,
            dynamic_epoch: 8192,
            fault_plan: FaultPlan::none(),
            watchdog_window,
            deadline: None,
            audit_period: if cfg!(debug_assertions) {
                AUDIT_PERIOD_DEFAULT
            } else {
                0
            },
        }
    }

    /// Select the LLC organization to simulate.
    pub fn organization(mut self, org: LlcOrgKind) -> Self {
        self.org = org;
        self
    }

    /// Override the SAC parameters (profiling window, θ).
    pub fn sac_config(mut self, sac_cfg: SacConfig) -> Self {
        self.sac_cfg = sac_cfg;
        self
    }

    /// Override the livelock cycle budget.
    pub fn max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = max;
        self
    }

    /// Override the Dynamic LLC's adjustment epoch.
    pub fn dynamic_epoch(mut self, cycles: u64) -> Self {
        self.dynamic_epoch = cycles;
        self
    }

    /// Inject the given fault schedule during the run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the forward-progress watchdog window: the run aborts with
    /// [`SimError::Deadlock`] when no request retires for this many
    /// consecutive cycles. `u64::MAX` disables the watchdog.
    pub fn watchdog_window(mut self, cycles: u64) -> Self {
        self.watchdog_window = cycles;
        self
    }

    /// Set a wall-clock deadline: the run aborts with [`SimError::Timeout`]
    /// once this much real time has elapsed. The check is abort-only and
    /// runs on a coarse cycle grid, so runs that complete are byte-identical
    /// with and without a deadline.
    pub fn deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Run the request-conservation audit every `period` cycles (`0`
    /// disables it). Defaults to every 4096 cycles in debug builds and off
    /// in release builds. The audit is read-only, so enabling it never
    /// changes simulation results — only whether corruption is detected.
    pub fn conservation_audit(mut self, period: u64) -> Self {
        self.audit_period = period;
        self
    }

    /// Build the simulator.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when the machine configuration fails
    /// validation or the fault plan does not fit the machine.
    pub fn build(self) -> Result<Simulator, ConfigError> {
        self.cfg.validate()?;
        self.fault_plan.validate(&self.cfg)?;
        if self.watchdog_window == 0 {
            return Err(ConfigError::new(
                "watchdog window must be positive (use u64::MAX to disable)",
            ));
        }
        if matches!(self.org, LlcOrgKind::StaticHalf | LlcOrgKind::Dynamic)
            && self.cfg.llc_assoc < 2
        {
            return Err(ConfigError::new(
                "way-partitioned organizations need an LLC with at least 2 ways",
            ));
        }
        Ok(Simulator::new(self))
    }
}

/// How requests are routed right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteMode {
    /// All requests go to the home chip's slices.
    MemorySide,
    /// All requests go to the local chip's slices.
    SmSide,
    /// Local-homed requests go to the home slice; remote-homed requests
    /// probe the local slice's remote pool first (static/dynamic).
    Tiered,
}

/// The multi-chip GPU simulator. Construct with [`SimBuilder`].
#[derive(Debug)]
pub struct Simulator {
    cfg: MachineConfig,
    org: LlcOrgKind,
    chips: Vec<Chip>,
    ring: RingNetwork<RingPayload>,
    page_table: PageTable,
    cycle: u64,
    max_cycles: u64,
    next_id: u64,
    in_flight: u64,
    max_in_flight: u64,
    pause: Pause,

    sac: Option<SacController>,
    dynamic: Option<DynamicCtl>,
    /// Chip-granularity sharer directory for hardware coherence.
    directory: SharerDirectory,

    // --- resilience ---
    /// Scheduled hardware degradation, applied as the clock passes each
    /// event's cycle.
    fault_plan: FaultPlan,
    /// Forward-progress watchdog window (`u64::MAX` = disabled).
    watchdog_window: u64,
    /// Progress signature at the last cycle that made progress.
    watchdog_sig: u64,
    /// Last cycle at which the progress signature changed.
    watchdog_cycle: u64,
    /// Remaining bandwidth fraction per inter-chip link pair (`0.0` =
    /// failed), for the degraded-EAB feed to SAC.
    link_factor: Vec<f64>,
    /// Remaining DRAM bandwidth fraction per chip (throttle only; channel
    /// failures are read off the partitions directly).
    dram_factor: Vec<f64>,
    /// Wall-clock budget for one run (`None` = unlimited).
    deadline: Option<std::time::Duration>,
    /// When the current run started (set by `run_observed`; only read when
    /// a deadline is configured).
    deadline_start: Option<std::time::Instant>,
    /// Request-conservation audit cadence in cycles (`0` = disabled).
    audit_period: u64,

    // --- accumulators ---
    writes_done: u64,
    responses_by_origin: [u64; 4],
    overhead_cycles: u64,
    occ_samples: u64,
    occ_local: f64,
    occ_fill: f64,
    kernels: Vec<KernelStats>,

    // --- per-cycle scratch buffers (reused, never reallocated in steady
    // state) ---
    /// Ring arrivals being dispatched this cycle.
    ring_scratch: Vec<RingPayload>,
    /// DRAM completions being processed this cycle.
    dram_scratch: Vec<DramRequest>,
}

/// Ring egress queue bound (requests waiting to leave the chip).
const PENDING_RING_LIMIT: usize = 64;
/// Maximum instructions a cluster may run ahead of the slowest cluster
/// (one CTA wave of the distributed CTA scheduler).
const CTA_WAVE_LEAD: usize = 384;
/// LLC occupancy sampling period in cycles (Fig. 9).
const OCC_SAMPLE_PERIOD: u64 = 256;
/// How often the wall-clock deadline is checked (cycles). Coarse enough to
/// keep `Instant::now` off the hot path, fine enough that a runaway cell is
/// caught within a fraction of a second.
const DEADLINE_CHECK_PERIOD: u64 = 65_536;

impl Simulator {
    fn new(b: SimBuilder) -> Self {
        let SimBuilder {
            cfg,
            org,
            sac_cfg,
            max_cycles,
            dynamic_epoch,
            fault_plan,
            watchdog_window,
            deadline,
            audit_period,
        } = b;
        let chips: Vec<Chip> = ChipId::all(cfg.chips).map(|c| Chip::new(&cfg, c)).collect();
        let ring = RingNetwork::new(&cfg, 32);
        let sac = (org == LlcOrgKind::Sac).then(|| {
            let sets_per_chip =
                (cfg.llc_bytes_per_chip / (cfg.llc_assoc as u64 * cfg.line_size)) as usize;
            SacController::new(
                sac_cfg,
                EabModel::new(ArchBandwidth::from_config(&cfg)),
                cfg.chips,
                cfg.total_slices(),
                sets_per_chip,
                cfg.sectored,
            )
        });
        let dynamic =
            (org == LlcOrgKind::Dynamic).then(|| DynamicCtl::new(cfg.llc_assoc, dynamic_epoch));

        let mut sim = Simulator {
            page_table: PageTable::new(cfg.page_size),
            chips,
            ring,
            cycle: 0,
            max_cycles,
            next_id: 0,
            in_flight: 0,
            max_in_flight: 0,
            pause: Pause::Running,
            sac,
            dynamic,
            directory: SharerDirectory::default(),
            fault_plan,
            watchdog_window,
            watchdog_sig: 0,
            watchdog_cycle: 0,
            link_factor: vec![1.0; cfg.chips],
            dram_factor: vec![1.0; cfg.chips],
            deadline,
            deadline_start: None,
            audit_period,
            writes_done: 0,
            responses_by_origin: [0; 4],
            overhead_cycles: 0,
            occ_samples: 0,
            occ_local: 0.0,
            occ_fill: 0.0,
            kernels: Vec::new(),
            ring_scratch: Vec::new(),
            dram_scratch: Vec::new(),
            cfg,
            org,
        };
        sim.apply_partitioning();
        sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The simulated LLC organization.
    pub fn organization(&self) -> LlcOrgKind {
        self.org
    }

    fn apply_partitioning(&mut self) {
        let split = match self.org {
            LlcOrgKind::StaticHalf => Some(self.cfg.llc_assoc / 2),
            LlcOrgKind::Dynamic => Some(
                self.dynamic
                    .as_ref()
                    .expect("Dynamic organization implies a dynamic-way controller")
                    .local_ways(),
            ),
            _ => None,
        };
        for chip in &mut self.chips {
            for slice in &mut chip.slices {
                match split {
                    Some(ways) => slice.cache.set_partition(ways),
                    None => slice.cache.clear_partition(),
                }
            }
        }
    }

    fn route_mode(&self) -> RouteMode {
        match self.org {
            LlcOrgKind::MemorySide => RouteMode::MemorySide,
            LlcOrgKind::SmSide => RouteMode::SmSide,
            LlcOrgKind::StaticHalf | LlcOrgKind::Dynamic => RouteMode::Tiered,
            LlcOrgKind::Sac => match self
                .sac
                .as_ref()
                .expect("SAC organization implies a SAC controller")
                .mode()
            {
                LlcMode::MemorySide => RouteMode::MemorySide,
                LlcMode::SmSide => RouteMode::SmSide,
            },
        }
    }

    #[inline]
    fn slice_of(&self, line: LineAddr) -> usize {
        interleave::slice_index(line, self.cfg.slices_per_chip)
    }

    fn sector_of(&self, access: &MemAccess) -> Option<mcgpu_types::SectorId> {
        self.cfg.sectored.then(|| {
            LineAddr::sector_of(access.addr, self.cfg.line_size, self.cfg.sectors_per_line)
        })
    }

    // ------------------------------------------------------------------
    // Main loop.
    // ------------------------------------------------------------------

    /// Run a complete workload, returning its statistics.
    ///
    /// # Errors
    /// [`SimError::CycleLimit`] if the run exceeds the cycle budget.
    pub fn run(&mut self, wl: &Workload) -> Result<RunStats, SimError> {
        self.run_observed(wl, u64::MAX, |_, _, _| {})
    }

    /// Like [`run`](Simulator::run), but invokes `observer(cycle,
    /// completed_accesses, active_clusters)` every `every` cycles — the
    /// instantaneous throughput timeline behind Fig. 12's time-varying
    /// analysis.
    ///
    /// # Errors
    /// [`SimError::CycleLimit`] if the run exceeds the cycle budget.
    pub fn run_observed(
        &mut self,
        wl: &Workload,
        every: u64,
        mut observer: impl FnMut(u64, u64, usize),
    ) -> Result<RunStats, SimError> {
        if self.deadline.is_some() {
            self.deadline_start = Some(std::time::Instant::now());
        }
        // Pre-seed page placement from the workload layout (host-to-device
        // transfers touch the data before kernel 0). This keeps placement
        // identical across LLC organizations; pages outside the layout (none
        // in generated workloads) still fall back to first-touch.
        for p in 0..wl.layout.total_pages() {
            let page = mcgpu_types::PageAddr(p);
            if let Some(home) = wl.layout.natural_home(page) {
                self.page_table.home_of(page, home);
            }
        }
        for (ki, kernel) in wl.kernels.iter().enumerate() {
            // Load the kernel's streams.
            let gap = kernel.behavior.compute_gap;
            for (flat, chip) in self.chips.iter_mut().enumerate() {
                for (ci, cluster) in chip.clusters.iter_mut().enumerate() {
                    let idx = flat * self.cfg.clusters_per_chip + ci;
                    cluster.load_kernel(kernel.per_cluster[idx].clone(), gap);
                }
            }
            let kernel_start_cycle = self.cycle;
            let work_before = self.cluster_reads_total() + self.writes_done;

            if let Some(sac) = &mut self.sac {
                sac.begin_kernel(self.cycle);
            }
            let (now, ring_bytes, mem_bytes) =
                (self.cycle, self.ring.bytes_sent(), self.mem_bytes_total());
            if let Some(dy) = &mut self.dynamic {
                dy.new_kernel(now, ring_bytes, mem_bytes);
            }

            // Execute until the kernel completes.
            while !self.kernel_done() {
                self.tick(true);
                self.check_progress()?;
                if every != u64::MAX && self.cycle.is_multiple_of(every) {
                    observer(
                        self.cycle,
                        self.cluster_reads_total() + self.writes_done,
                        self.active_clusters(),
                    );
                }
                if self.cycle >= self.max_cycles {
                    return Err(SimError::CycleLimit {
                        limit: self.max_cycles,
                    });
                }
            }

            // Kernel-boundary coherence + SAC revert (§3.6).
            let boundary_start = self.cycle;
            self.kernel_boundary()?;
            self.overhead_cycles += self.cycle - boundary_start;

            let sac_mode = self.sac.as_ref().and_then(|s| {
                s.history()
                    .iter()
                    .rev()
                    .find(|r| r.start_cycle >= kernel_start_cycle)
                    .map(|r| r.mode)
            });
            self.kernels.push(KernelStats {
                index: ki,
                cycles: self.cycle - kernel_start_cycle,
                accesses: self.cluster_reads_total() + self.writes_done - work_before,
                sac_mode,
            });
        }
        Ok(self.collect_stats())
    }

    fn kernel_done(&self) -> bool {
        self.in_flight == 0
            && self.pause == Pause::Running
            && self
                .chips
                .iter()
                .all(|c| c.clusters.iter().all(Cluster::done))
    }

    fn machine_quiescent(&self) -> bool {
        self.in_flight == 0 && self.ring.is_empty() && self.chips.iter().all(Chip::is_quiescent)
    }

    /// Number of clusters still executing their current kernel stream.
    pub fn active_clusters(&self) -> usize {
        self.chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .filter(|cl| !cl.done())
            .count()
    }

    /// Reads completed, summed over every cluster (includes L1 hits and
    /// MSHR-merged accesses, which never produce a network response).
    fn cluster_reads_total(&self) -> u64 {
        self.chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .map(Cluster::reads_done)
            .sum()
    }

    fn mem_bytes_total(&self) -> u64 {
        self.chips
            .iter()
            .map(|c| {
                c.memory.served_reads() * self.cfg.line_size
                    + c.memory.served_writes() * mcgpu_types::packet::WRITE_PAYLOAD_BYTES
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Fault injection and the forward-progress watchdog.
    // ------------------------------------------------------------------

    /// Apply every fault event whose cycle has been reached.
    fn apply_due_faults(&mut self, now: u64) {
        let mut any = false;
        while let Some(e) = self.fault_plan.pop_due(now) {
            self.apply_fault(e.kind);
            any = true;
        }
        if any {
            self.refresh_sac_arch();
        }
    }

    /// Index of the physical link pair joining ring-adjacent `a` and `b`
    /// in [`Simulator::link_factor`].
    fn pair_index(&self, a: ChipId, b: ChipId) -> usize {
        let (lo, hi) = (a.index().min(b.index()), a.index().max(b.index()));
        if lo == 0 && hi == self.cfg.chips - 1 {
            hi // the wrap-around pair
        } else {
            lo
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDegrade { a, b, factor } => {
                self.ring.degrade_link(a, b, factor);
                let p = self.pair_index(a, b);
                self.link_factor[p] = factor;
            }
            FaultKind::LinkFail { a, b } => {
                self.ring.fail_link(a, b);
                let p = self.pair_index(a, b);
                self.link_factor[p] = 0.0;
            }
            FaultKind::DramThrottle { chip, factor } => {
                self.chips[chip.index()].memory.throttle(factor);
                self.dram_factor[chip.index()] = factor;
            }
            FaultKind::DramFail { chip, channel } => {
                self.chips[chip.index()].memory.fail_channel(channel);
            }
            FaultKind::LlcSliceDisable { chip, slice } => {
                self.disable_slice(chip.index(), slice);
            }
        }
    }

    /// Fuse off one LLC slice: write its dirty lines back home, invalidate
    /// everything, and stop it from caching. The slice's service pipe and
    /// MSHRs keep working so queued requests and outstanding fetches drain
    /// normally — they simply miss from now on.
    fn disable_slice(&mut self, c: usize, s: usize) {
        let dirty = self.chips[c].slices[s].cache.flush_all();
        for line in dirty {
            self.writeback_to_home(c, line);
        }
        self.chips[c].slices[s].disabled = true;
    }

    /// Re-derive the effective architectural bandwidths from the surviving
    /// hardware and hand them to the SAC controller, so its EAB decisions
    /// reason about the machine as it now is.
    fn refresh_sac_arch(&mut self) {
        let Some(sac) = self.sac.as_mut() else { return };
        let base = ArchBandwidth::from_config(&self.cfg);
        let n = self.cfg.chips as f64;
        let link_mean = self.link_factor.iter().sum::<f64>() / self.link_factor.len().max(1) as f64;
        let mem_mean = self
            .chips
            .iter()
            .zip(&self.dram_factor)
            .map(|(chip, throttle)| {
                throttle * chip.memory.live_channels() as f64 / chip.memory.num_channels() as f64
            })
            .sum::<f64>()
            / n;
        let llc_mean = self
            .chips
            .iter()
            .map(|chip| {
                chip.slices.iter().filter(|s| !s.disabled).count() as f64 / chip.slices.len() as f64
            })
            .sum::<f64>()
            / n;
        sac.update_arch(ArchBandwidth {
            b_intra: base.b_intra,
            b_inter: base.b_inter * link_mean,
            b_llc: base.b_llc * llc_mean,
            b_mem: base.b_mem * mem_mean,
        });
    }

    /// A monotonic count that changes whenever anything anywhere in the
    /// machine completes or moves: requests retiring, DRAM serving, ring
    /// traffic being injected or delivered. If this freezes, the machine is
    /// wedged.
    fn progress_signature(&self) -> u64 {
        let dram: u64 = self
            .chips
            .iter()
            .map(|c| c.memory.served_reads() + c.memory.served_writes())
            .sum();
        self.cluster_reads_total()
            + self.writes_done
            + self.ring.delivered()
            + self.ring.bytes_sent()
            + dram
    }

    /// Runtime guards, called once per tick from every simulation loop
    /// (including drains): the forward-progress watchdog
    /// ([`SimError::Deadlock`]), the wall-clock deadline
    /// ([`SimError::Timeout`], checked on a coarse cycle grid so
    /// `Instant::now` stays off the hot path), and the request-conservation
    /// audit ([`SimError::InvariantViolation`]).
    fn check_progress(&mut self) -> Result<(), SimError> {
        if self.cycle % DEADLINE_CHECK_PERIOD == 1 {
            if let (Some(budget), Some(start)) = (self.deadline, self.deadline_start) {
                let elapsed = start.elapsed();
                if elapsed > budget {
                    return Err(SimError::Timeout {
                        elapsed_ms: elapsed.as_millis() as u64,
                        budget_ms: budget.as_millis() as u64,
                    });
                }
            }
        }
        if self.audit_period != 0 && self.cycle.is_multiple_of(self.audit_period) {
            self.audit_conservation()?;
        }
        if self.watchdog_window == u64::MAX {
            return Ok(());
        }
        let sig = self.progress_signature();
        if sig != self.watchdog_sig {
            self.watchdog_sig = sig;
            self.watchdog_cycle = self.cycle;
            return Ok(());
        }
        if self.cycle - self.watchdog_cycle >= self.watchdog_window {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                window: self.watchdog_window,
                snapshot: Box::new(self.deadlock_snapshot()),
            });
        }
        Ok(())
    }

    /// Request-conservation audit: between ticks, every request the engine
    /// counts as in flight sits in exactly one queue — crossbars, slice
    /// service pipes, slice MSHR waiter lists, DRAM channels, the bypass
    /// path, response queues, or the ring (egress queues and fabric).
    /// Writeback sentinels and coherence invalidations carry no request and
    /// are excluded. A mismatch means a request was lost or double-counted
    /// and the run's statistics can no longer be trusted, so the audit
    /// fails fast with the full breakdown.
    fn audit_conservation(&self) -> Result<(), SimError> {
        fn carries_request(p: &RingPayload) -> bool {
            matches!(p, RingPayload::Req(_) | RingPayload::Rsp(_))
        }
        let chips: Vec<ChipConservation> = self
            .chips
            .iter()
            .enumerate()
            .map(|(i, chip)| ChipConservation {
                chip: i,
                network_req: chip.pending_req.len() + chip.xbar_req.len(),
                slice_service: chip.slices.iter().map(|s| s.service.len()).sum(),
                slice_waiters: chip.slices.iter().map(|s| s.pending.waiting()).sum(),
                memory: chip.memory.pending_requests(),
                bypass: chip.bypass_to_mem.len(),
                network_rsp: chip.pending_rsp.len() + chip.xbar_rsp.len(),
                ring_egress: chip
                    .pending_ring
                    .iter()
                    .filter(|p| carries_request(p))
                    .count()
                    + chip
                        .ring_egress
                        .iter()
                        .filter(|p| carries_request(p))
                        .count()
                    + chip.ring_retry.as_ref().is_some_and(carries_request) as usize,
            })
            .collect();
        let ring_fabric = self.ring.count_matching(carries_request);
        let accounted =
            chips.iter().map(ChipConservation::total).sum::<usize>() as u64 + ring_fabric as u64;
        if accounted == self.in_flight {
            return Ok(());
        }
        Err(SimError::InvariantViolation {
            cycle: self.cycle,
            report: Box::new(ConservationReport {
                in_flight: self.in_flight,
                accounted,
                ring_fabric,
                chips,
            }),
        })
    }

    fn deadlock_snapshot(&self) -> DeadlockSnapshot {
        let chips = self
            .chips
            .iter()
            .enumerate()
            .map(|(i, chip)| ChipSnapshot {
                chip: i,
                cluster_mshrs: chip.clusters.iter().map(Cluster::outstanding).sum(),
                xbar_req: chip.xbar_req.len() + chip.pending_req.len(),
                xbar_rsp: chip.xbar_rsp.len() + chip.pending_rsp.len(),
                slice_service: chip.slices.iter().map(|s| s.service.len()).sum(),
                slice_pending: chip.slices.iter().map(|s| s.pending.waiting()).sum(),
                memory: chip.memory.len(),
                bypass: chip.bypass_to_mem.len(),
                ring_egress: chip.pending_ring.len()
                    + chip.ring_egress.len()
                    + usize::from(chip.ring_retry.is_some()),
                ring_fabric: self.ring.chip_load(chip.id),
            })
            .collect();
        DeadlockSnapshot {
            in_flight: self.in_flight,
            pause: match self.pause {
                Pause::Running => "running",
                Pause::SacDrain => "sac-drain",
                Pause::SacFlush => "sac-flush",
            }
            .to_string(),
            chips,
        }
    }

    // ------------------------------------------------------------------
    // One cycle.
    // ------------------------------------------------------------------

    fn tick(&mut self, allow_issue: bool) {
        self.cycle += 1;
        let now = self.cycle;
        self.apply_due_faults(now);
        let issuing = allow_issue && self.pause == Pause::Running;

        if issuing {
            self.issue_phase();
        }

        // Request network.
        for c in 0..self.chips.len() {
            // Ring-delivered requests re-enter the crossbar.
            while let Some(env) = self.chips[c].pending_req.front().copied() {
                let port = self.slice_of(env.req.access.addr.line(self.cfg.line_size));
                let bytes = env.wire_bytes();
                if self.chips[c].xbar_req.try_push(port, env, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_req.pop_front();
            }
            self.chips[c].xbar_req.tick(now);
            for port in 0..self.cfg.slices_per_chip {
                loop {
                    if !self.chips[c].slices[port].service.can_push() {
                        break;
                    }
                    match self.chips[c].xbar_req.pop_ready(port, now) {
                        Some(env) => {
                            let charge = self.chips[c].slices[port].charge_bytes(&env);
                            self.chips[c].slices[port]
                                .service
                                .try_push(env, charge)
                                .expect("can_push checked");
                        }
                        None => break,
                    }
                }
            }
        }

        // LLC slices.
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                self.chips[c].slices[s].service.tick(now);
                while let Some(env) = self.chips[c].slices[s].service.pop_ready(now) {
                    self.process_at_slice(c, s, env);
                }
            }
        }

        // Bypass path into memory (SM-side remote misses).
        for c in 0..self.chips.len() {
            self.chips[c].bypass_to_mem.tick(now);
            while let Some(env) = self.chips[c].bypass_to_mem.pop_ready(now) {
                self.chips[c].memory.push(DramRequest {
                    request: env.req,
                    from_local_slice: false,
                    slice: None,
                });
            }
        }

        // Memory partitions.
        for c in 0..self.chips.len() {
            self.chips[c].memory.tick(now);
            let mut done = std::mem::take(&mut self.dram_scratch);
            self.chips[c].memory.pop_ready_into(now, &mut done);
            for d in done.drain(..) {
                self.process_mem_completion(c, d);
            }
            self.dram_scratch = done;
        }

        // Response network and delivery.
        for c in 0..self.chips.len() {
            while let Some(env) = self.chips[c].pending_rsp.front().copied() {
                let port = env.rsp.dest.index as usize;
                let bytes = env.wire_bytes(self.cfg.line_size);
                if self.chips[c].xbar_rsp.try_push(port, env, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_rsp.pop_front();
            }
            self.chips[c].xbar_rsp.tick(now);
            for port in 0..self.cfg.clusters_per_chip {
                while let Some(env) = self.chips[c].xbar_rsp.pop_ready(port, now) {
                    self.deliver_response(c, env);
                }
            }
        }

        // Inter-chip ring.
        self.ring_phase(now);

        // Controllers and sampling.
        self.controller_phase(now);
        if now.is_multiple_of(OCC_SAMPLE_PERIOD) {
            self.sample_occupancy();
        }
    }

    fn issue_phase(&mut self) {
        let mode = self.route_mode();
        let profiling = self.sac.as_ref().is_some_and(|s| s.is_profiling());
        let n_clusters = self.cfg.clusters_per_chip;
        // Round-robin arbitration: rotate which cluster gets first claim on
        // the cycle's NoC injection bandwidth, as a real allocator would.
        // A fixed priority order starves high-index clusters and produces
        // artificial straggler tails at kernel ends.
        let rotation = (self.cycle as usize) % n_clusters;
        // Distributed CTA scheduling issues work in bounded waves: no
        // cluster may run further ahead of the slowest cluster than one
        // wave of CTAs. This bounds the drift between the clusters' shared
        // working-set phases (and the end-of-kernel straggler tail), as the
        // hardware CTA scheduler does.
        let min_progress = self
            .chips
            .iter()
            .flat_map(|ch| ch.clusters.iter())
            .filter(|cl| !cl.done())
            .map(Cluster::progress)
            .min()
            .unwrap_or(0);
        for c in 0..self.chips.len() {
            let chip_id = ChipId(c as u8);
            for i in 0..n_clusters {
                let cl = (i + rotation) % n_clusters;
                if self.chips[c].clusters[cl].progress() > min_progress + CTA_WAVE_LEAD {
                    continue;
                }
                let Some((acc, needs_request)) = self.chips[c].clusters[cl].issue() else {
                    continue;
                };
                let line = acc.addr.line(self.cfg.line_size);
                let home = self
                    .page_table
                    .home_of(acc.addr.page(self.cfg.page_size), chip_id);
                if !needs_request {
                    // Cluster-MSHR merge: a real L1 miss (observable by the
                    // profiling counters) that needs no new network request.
                    // It completes with the in-flight fill, so it counts as
                    // a memory-side hit for the profiled hit rate.
                    if profiling {
                        let sector = self.sector_of(&acc);
                        let slice = self.slice_of(line);
                        let spc = self.cfg.slices_per_chip;
                        let sac = self.sac.as_mut().expect("profiling implies sac");
                        sac.collector_mut().observe_request(
                            chip_id,
                            home,
                            line,
                            sector,
                            home.index() * spc + slice,
                            c * spc + slice,
                        );
                        sac.collector_mut().observe_memside_llc(true);
                    }
                    continue;
                }
                let req = Request {
                    id: RequestId(self.next_id),
                    origin: self.chips[c].clusters[cl].id(),
                    access: acc,
                    home,
                };
                let slice = self.slice_of(line);
                let (port_chip, stage) = match mode {
                    RouteMode::MemorySide => (home, ReqStage::ToHomeSlice),
                    RouteMode::SmSide => (chip_id, ReqStage::ToLocalSlice),
                    RouteMode::Tiered if home == chip_id => (chip_id, ReqStage::ToHomeSlice),
                    RouteMode::Tiered => (chip_id, ReqStage::ToLocalSlice),
                };
                let env = ReqEnvelope { req, stage };
                let injected = if port_chip == chip_id {
                    self.chips[c]
                        .xbar_req
                        .try_push(slice, env, env.wire_bytes())
                        .is_ok()
                } else if self.chips[c].pending_ring.len() < PENDING_RING_LIMIT {
                    self.chips[c].pending_ring.push_back(RingPayload::Req(env));
                    true
                } else {
                    false
                };
                if injected {
                    self.next_id += 1;
                    self.in_flight += 1;
                    self.max_in_flight = self.max_in_flight.max(self.in_flight);
                    if profiling {
                        let sector = self.sector_of(&acc);
                        let spc = self.cfg.slices_per_chip;
                        let sac = self.sac.as_mut().expect("profiling implies sac");
                        sac.collector_mut().observe_request(
                            chip_id,
                            home,
                            line,
                            sector,
                            home.index() * spc + slice,
                            c * spc + slice,
                        );
                    }
                } else {
                    self.chips[c].clusters[cl].defer(acc);
                }
            }
        }
    }

    /// Handle a request arriving at slice `s` of chip `c`.
    fn process_at_slice(&mut self, c: usize, s: usize, env: ReqEnvelope) {
        let chip_id = ChipId(c as u8);
        let line = env.req.access.addr.line(self.cfg.line_size);
        let sector = self.sector_of(&env.req.access);
        let requester = env.req.origin.chip;
        let is_write = env.req.access.kind.is_write();
        let profiling = self.sac.as_ref().is_some_and(|sc| sc.is_profiling());

        // A disabled (fused-off) slice holds nothing: every request misses
        // straight through to memory without touching the cache array.
        let outcome = if self.chips[c].slices[s].disabled {
            LookupOutcome::Miss
        } else {
            self.chips[c].slices[s].cache.lookup(line, sector, is_write)
        };
        let hit = outcome == LookupOutcome::Hit;

        if profiling && env.stage == ReqStage::ToHomeSlice {
            // A slice-MSHR merge is bandwidth-equivalent to a hit (the data
            // arrives without further DRAM or ring traffic), so it counts
            // as one for the profiled memory-side hit rate — otherwise the
            // measured rate is biased low relative to the CRD's prediction,
            // which observes the full (unmerged) request stream.
            let merged_would_hit = !hit && self.chips[c].slices[s].pending.contains(line.index());
            if let Some(sac) = self.sac.as_mut() {
                sac.collector_mut()
                    .observe_memside_llc(hit || merged_would_hit);
            }
        }

        match env.stage {
            // Memory-side role: this is the home chip's slice.
            ReqStage::ToHomeSlice => {
                debug_assert_eq!(chip_id, env.req.home);
                if is_write {
                    if hit {
                        self.absorb_write();
                    } else if self.try_merge_at_slice(c, s, line, env) {
                        // Slice MSHR hit: the store rides the in-flight fetch.
                    } else {
                        // Fetch-on-write: the 32 B coalesced store cannot
                        // dirty a line that is not resident; read the line
                        // from (local) memory first.
                        self.begin_fetch(c, s, line);
                        self.chips[c].memory.push(DramRequest {
                            request: env.req,
                            from_local_slice: true,
                            slice: Some(s as u16),
                        });
                    }
                } else if hit {
                    let origin = if requester == chip_id {
                        ResponseOrigin::LocalLlc
                    } else {
                        ResponseOrigin::RemoteLlc
                    };
                    self.emit_response(c, env.req, origin);
                } else if self.try_merge_at_slice(c, s, line, env) {
                    // Slice MSHR hit: merged onto the in-flight fetch.
                } else {
                    self.begin_fetch(c, s, line);
                    self.chips[c].memory.push(DramRequest {
                        request: env.req,
                        from_local_slice: true,
                        slice: Some(s as u16),
                    });
                }
            }
            // SM-side role (or the L1.5 level of the tiered organizations):
            // this is the requesting chip's slice.
            ReqStage::ToLocalSlice => {
                debug_assert_eq!(chip_id, requester);
                let home = env.req.home;
                let data_home = if home == chip_id {
                    DataHome::Local
                } else {
                    DataHome::Remote
                };
                let _ = data_home;
                if is_write {
                    if hit {
                        self.coherence_on_write(c, line);
                        self.absorb_write();
                    } else {
                        // Fetch-on-write: pull the line from its home (local
                        // memory, or across the ring for remote data) before
                        // dirtying the local replica.
                        self.coherence_on_write(c, line);
                        let forward_to_home =
                            home != chip_id && self.route_mode() == RouteMode::Tiered;
                        if !forward_to_home && self.try_merge_at_slice(c, s, line, env) {
                            // Slice MSHR hit: rides the in-flight fetch.
                        } else if home == chip_id {
                            self.begin_fetch(c, s, line);
                            self.chips[c].memory.push(DramRequest {
                                request: env.req,
                                from_local_slice: true,
                                slice: Some(s as u16),
                            });
                        } else if forward_to_home {
                            // The tiered organizations write remote data
                            // through to the home slice instead of
                            // replicating written lines locally.
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeSlice,
                                }),
                            );
                        } else {
                            self.begin_fetch(c, s, line);
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeMemBypass,
                                }),
                            );
                        }
                    }
                } else if hit {
                    self.emit_response(c, env.req, ResponseOrigin::LocalLlc);
                } else if self.try_merge_at_slice(c, s, line, env) {
                    // Slice MSHR hit: merged onto the in-flight fetch.
                } else {
                    self.begin_fetch(c, s, line);
                    match self.route_mode() {
                        RouteMode::SmSide | RouteMode::MemorySide => {
                            // (MemorySide can momentarily see ToLocalSlice
                            // envelopes right after a SAC revert drain; they
                            // are treated as SM-side leftovers.)
                            if home == chip_id {
                                self.chips[c].memory.push(DramRequest {
                                    request: env.req,
                                    from_local_slice: true,
                                    slice: Some(s as u16),
                                });
                            } else {
                                self.push_ring(
                                    c,
                                    RingPayload::Req(ReqEnvelope {
                                        req: env.req,
                                        stage: ReqStage::ToHomeMemBypass,
                                    }),
                                );
                            }
                        }
                        RouteMode::Tiered => {
                            debug_assert_ne!(home, chip_id, "local-homed goes ToHomeSlice");
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeSlice,
                                }),
                            );
                        }
                    }
                }
            }
            ReqStage::ToHomeMemBypass => {
                unreachable!("bypass requests go straight to memory, not to a slice")
            }
        }
    }

    /// Merge `env` onto an outstanding line fetch at slice `s` of chip `c`,
    /// if one exists (slice MSHR). Returns `true` when merged.
    fn try_merge_at_slice(&mut self, c: usize, s: usize, line: LineAddr, env: ReqEnvelope) -> bool {
        self.chips[c].slices[s].pending.merge(line.index(), env)
    }

    /// Register an outstanding fetch for `line` at slice `s` of chip `c`.
    fn begin_fetch(&mut self, c: usize, s: usize, line: LineAddr) {
        self.chips[c].slices[s].pending.begin(line.index());
    }

    /// The line arrived at slice `s` of chip `c`: complete all merged
    /// waiters. `origin_override` carries the true data origin when the
    /// fill came over the ring; `None` derives local/remote memory relative
    /// to this chip (fills from this chip's own partition).
    fn drain_merged(
        &mut self,
        c: usize,
        s: usize,
        line: LineAddr,
        origin_override: Option<ResponseOrigin>,
    ) {
        let Some(mut waiters) = self.chips[c].slices[s].pending.take(line.index()) else {
            return;
        };
        let chip_id = ChipId(c as u8);
        for env in waiters.drain(..) {
            if env.req.access.kind.is_write() {
                // Dirty the just-filled line and absorb the store (unless
                // the slice was fused off, in which case nothing is filled).
                let sector = self.sector_of(&env.req.access);
                if !self.chips[c].slices[s].disabled {
                    self.chips[c].slices[s]
                        .cache
                        .fill(line, sector, DataHome::Local, true);
                }
                self.absorb_write();
            } else {
                let origin = origin_override.unwrap_or(if env.req.origin.chip == chip_id {
                    ResponseOrigin::LocalMem
                } else {
                    ResponseOrigin::RemoteMem
                });
                self.emit_response(c, env.req, origin);
            }
        }
        self.chips[c].slices[s].pending.recycle(waiters);
    }

    /// A write reached its destination cache: it is complete.
    fn absorb_write(&mut self) {
        self.writes_done += 1;
        self.in_flight -= 1;
    }

    /// Hardware coherence: a write at chip `c` invalidates all other chips'
    /// replicas of `line` (§5.6).
    fn coherence_on_write(&mut self, c: usize, line: LineAddr) {
        if self.cfg.coherence != CoherenceKind::Hardware {
            return;
        }
        let mask = self.directory.mask(line.index());
        if mask == 0 {
            return;
        }
        let owner_bit = 1u8 << c;
        let others = mask & !owner_bit;
        self.directory.set(line.index(), owner_bit);
        if others == 0 {
            return;
        }
        for b in 0..self.cfg.chips {
            if others & (1 << b) != 0 {
                self.push_ring(
                    c,
                    RingPayload::Inval {
                        line,
                        target: ChipId(b as u8),
                    },
                );
            }
        }
    }

    /// Record a replica fill for the hardware-coherence directory.
    fn directory_fill(&mut self, c: usize, line: LineAddr) {
        if self.cfg.coherence == CoherenceKind::Hardware {
            self.directory.fill(line.index(), c);
        }
    }

    /// Deal with a dirty eviction from chip `c`'s LLC.
    fn handle_eviction(&mut self, c: usize, ev: Option<mcgpu_cache::Eviction>) {
        let Some(ev) = ev else { return };
        if !ev.dirty {
            return;
        }
        match ev.home {
            DataHome::Local => self.chips[c].memory.push_writeback(ev.line),
            DataHome::Remote => {
                let page = ev.line.page(self.cfg.line_size, self.cfg.page_size);
                let home = self
                    .page_table
                    .lookup(page)
                    .expect("cached lines have mapped pages");
                self.push_ring(
                    c,
                    RingPayload::Writeback {
                        line: ev.line,
                        home,
                    },
                );
            }
        }
    }

    /// Handle a completed DRAM access at chip `c` (a read miss, or a
    /// fetch-on-write).
    fn process_mem_completion(&mut self, c: usize, d: DramRequest) {
        let chip_id = ChipId(c as u8);
        let is_write = d.request.access.kind.is_write();
        // Fill the slice the miss came from (memory-side, or SM-side local).
        if d.from_local_slice {
            if let Some(s) = d.slice {
                // A slice disabled while this fetch was in flight no longer
                // allocates; the data still answers the merged requesters.
                if !self.chips[c].slices[s as usize].disabled {
                    let line = d.request.access.addr.line(self.cfg.line_size);
                    let sector = self.sector_of(&d.request.access);
                    let ev = self.chips[c].slices[s as usize].cache.fill(
                        line,
                        sector,
                        DataHome::Local,
                        is_write,
                    );
                    self.handle_eviction(c, ev);
                }
            }
            if let Some(s) = d.slice {
                let line = d.request.access.addr.line(self.cfg.line_size);
                self.drain_merged(c, s as usize, line, None);
            }
            if is_write {
                // The fetch-on-write completed; the store is absorbed here.
                self.absorb_write();
                return;
            }
        }
        let origin = if d.request.origin.chip == chip_id {
            ResponseOrigin::LocalMem
        } else {
            ResponseOrigin::RemoteMem
        };
        self.emit_response(c, d.request, origin);
    }

    /// Create and route a response from chip `c` towards the requester
    /// (a read's data, or a remote fetch-on-write's line).
    fn emit_response(&mut self, c: usize, req: Request, origin: ResponseOrigin) {
        let chip_id = ChipId(c as u8);
        let requester = req.origin.chip;
        debug_assert!(
            req.access.kind == AccessKind::Read || requester != chip_id,
            "local writes absorb at slices or memory, never via responses"
        );
        let fill = if requester == chip_id {
            FillAction::None
        } else {
            match self.org {
                // SM-side replicates on the way back; so do the tiered
                // organizations' remote pools. SAC replicates only in
                // SM-side mode (remote responses can only exist in SM-side
                // mode for SAC when they come from remote memory).
                LlcOrgKind::SmSide => FillAction::FillLocalSlice,
                LlcOrgKind::StaticHalf | LlcOrgKind::Dynamic => FillAction::FillLocalSlice,
                LlcOrgKind::MemorySide => FillAction::None,
                LlcOrgKind::Sac => match self.route_mode() {
                    RouteMode::SmSide => FillAction::FillLocalSlice,
                    _ => FillAction::None,
                },
            }
        };
        let env = RspEnvelope {
            rsp: Response {
                id: req.id,
                dest: req.origin,
                access: req.access,
                origin,
            },
            fill,
        };
        if requester == chip_id {
            self.chips[c].pending_rsp.push_back(env);
        } else {
            self.push_ring(c, RingPayload::Rsp(env));
        }
    }

    /// Deliver a response to its SM cluster on chip `c`.
    fn deliver_response(&mut self, c: usize, env: RspEnvelope) {
        debug_assert_eq!(env.rsp.dest.chip.index(), c);
        let cl = env.rsp.dest.index as usize;
        self.chips[c].clusters[cl].complete_read(&env.rsp.access);
        let idx = ResponseOrigin::ALL
            .iter()
            .position(|&o| o == env.rsp.origin)
            .expect("known origin");
        self.responses_by_origin[idx] += 1;
        self.in_flight -= 1;
    }

    /// Queue a payload for the inter-chip ring (bounded; requests check the
    /// bound before issue, internal traffic may exceed it briefly).
    fn push_ring(&mut self, c: usize, payload: RingPayload) {
        self.chips[c].pending_ring.push_back(payload);
    }

    fn ring_dest(&self, p: &RingPayload, from: ChipId) -> ChipId {
        let d = match p {
            RingPayload::Req(env) => env.req.home,
            RingPayload::Rsp(env) => env.rsp.dest.chip,
            RingPayload::Writeback { home, .. } => *home,
            RingPayload::Inval { target, .. } => *target,
        };
        debug_assert_ne!(d, from, "ring payloads must cross chips");
        d
    }

    fn ring_phase(&mut self, now: u64) {
        let line_size = self.cfg.line_size;
        // Egress: retry, drain pending into the egress pipe, pipe into ring.
        for c in 0..self.chips.len() {
            let from = ChipId(c as u8);
            if let Some(p) = self.chips[c].ring_retry.take() {
                let dest = self.ring_dest(&p, from);
                let bytes = p.wire_bytes(line_size);
                if let Err(p) = self.ring.try_send(from, dest, p, bytes) {
                    self.chips[c].ring_retry = Some(p);
                }
            }
            while let Some(p) = self.chips[c].pending_ring.front() {
                let bytes = p.wire_bytes(line_size);
                let p = *p;
                if self.chips[c].ring_egress.try_push(p, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_ring.pop_front();
            }
            self.chips[c].ring_egress.tick(now);
            while self.chips[c].ring_retry.is_none() {
                let Some(p) = self.chips[c].ring_egress.pop_ready(now) else {
                    break;
                };
                let dest = self.ring_dest(&p, from);
                let bytes = p.wire_bytes(line_size);
                if let Err(p) = self.ring.try_send(from, dest, p, bytes) {
                    self.chips[c].ring_retry = Some(p);
                }
            }
        }

        self.ring.tick(now);

        // Arrivals.
        for c in 0..self.chips.len() {
            let chip_id = ChipId(c as u8);
            let mut arrivals = std::mem::take(&mut self.ring_scratch);
            self.ring.pop_arrivals_into(chip_id, now, &mut arrivals);
            for p in arrivals.drain(..) {
                match p {
                    RingPayload::Req(env) => match env.stage {
                        ReqStage::ToHomeSlice => self.chips[c].pending_req.push_back(env),
                        ReqStage::ToHomeMemBypass => {
                            let bytes = env.wire_bytes();
                            self.chips[c]
                                .bypass_to_mem
                                .try_push(env, bytes)
                                .expect("bypass pipe is unbounded");
                        }
                        ReqStage::ToLocalSlice => {
                            unreachable!("local-slice requests never ride the ring")
                        }
                    },
                    RingPayload::Rsp(env) => {
                        let is_write = env.rsp.access.kind.is_write();
                        if env.fill == FillAction::FillLocalSlice {
                            let line = env.rsp.access.addr.line(self.cfg.line_size);
                            let sector = self.sector_of(&env.rsp.access);
                            let s = self.slice_of(line);
                            if !self.chips[c].slices[s].disabled {
                                let ev = self.chips[c].slices[s].cache.fill(
                                    line,
                                    sector,
                                    DataHome::Remote,
                                    is_write,
                                );
                                self.handle_eviction(c, ev);
                                self.directory_fill(c, line);
                            }
                            self.drain_merged(c, s, line, Some(env.rsp.origin));
                        }
                        if is_write {
                            // A completed remote fetch-on-write: the store
                            // is absorbed into the (now dirty) local replica.
                            self.absorb_write();
                        } else {
                            self.chips[c].pending_rsp.push_back(env);
                        }
                    }
                    RingPayload::Writeback { line, home } => {
                        debug_assert_eq!(home, chip_id);
                        self.chips[c].memory.push_writeback(line);
                    }
                    RingPayload::Inval { line, target } => {
                        debug_assert_eq!(target, chip_id);
                        let s = self.slice_of(line);
                        self.chips[c].slices[s].cache.invalidate(line);
                    }
                }
            }
            self.ring_scratch = arrivals;
        }
    }

    fn controller_phase(&mut self, now: u64) {
        // SAC reconfiguration state machine.
        if self.sac.is_some() {
            match self.pause {
                Pause::Running => {
                    let record = self
                        .sac
                        .as_mut()
                        .expect("SAC organization implies a SAC controller")
                        .tick(now);
                    if let Some(r) = record {
                        if r.mode == LlcMode::SmSide {
                            self.pause = Pause::SacDrain;
                        }
                    }
                    // Graceful degradation: feed the divergence monitor the
                    // machine's completed-work count; it requests a drain
                    // when a running SM-side decision stops holding up.
                    let work = self.cluster_reads_total() + self.writes_done;
                    if self
                        .sac
                        .as_mut()
                        .expect("SAC organization implies a SAC controller")
                        .observe_progress(now, work)
                    {
                        self.pause = Pause::SacDrain;
                    }
                }
                Pause::SacDrain => {
                    if self.machine_quiescent() {
                        let needs_flush = self
                            .sac
                            .as_mut()
                            .expect("SAC organization implies a SAC controller")
                            .drain_complete(now);
                        if needs_flush {
                            // §3.6: write back and invalidate *dirty* lines;
                            // clean home-slice contents remain valid under
                            // SM-side routing (same slice hash).
                            self.start_llc_dirty_writeback();
                            self.pause = Pause::SacFlush;
                        } else {
                            self.pause = Pause::Running;
                        }
                    }
                    self.overhead_cycles += 1;
                }
                Pause::SacFlush => {
                    if self.machine_quiescent() {
                        self.sac
                            .as_mut()
                            .expect("SAC organization implies a SAC controller")
                            .flush_complete();
                        self.pause = Pause::Running;
                    }
                    self.overhead_cycles += 1;
                }
            }
        }

        // Dynamic way-split adaptation.
        let ring_bytes = self.ring.bytes_sent();
        let mem_bytes = self.mem_bytes_total();
        if let Some(ways) = self
            .dynamic
            .as_mut()
            .and_then(|dy| dy.maybe_adjust(now, ring_bytes, mem_bytes))
        {
            for chip in &mut self.chips {
                for slice in &mut chip.slices {
                    slice.cache.set_partition(ways);
                }
            }
        }
    }

    /// Write back every dirty LLC line while keeping contents resident
    /// (SAC memory-side → SM-side reconfiguration).
    fn start_llc_dirty_writeback(&mut self) {
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                let dirty = self.chips[c].slices[s].cache.writeback_all_dirty();
                for line in dirty {
                    self.writeback_to_home(c, line);
                }
            }
        }
    }

    /// Write back and invalidate every dirty LLC line (software-coherence
    /// kernel boundaries for SM-side contents).
    fn start_llc_flush(&mut self) {
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                let dirty = self.chips[c].slices[s].cache.flush_all();
                for line in dirty {
                    self.writeback_to_home(c, line);
                }
            }
        }
    }

    fn writeback_to_home(&mut self, c: usize, line: LineAddr) {
        let page = line.page(self.cfg.line_size, self.cfg.page_size);
        let home = self
            .page_table
            .lookup(page)
            .expect("cached lines have mapped pages");
        if home.index() == c {
            self.chips[c].memory.push_writeback(line);
        } else {
            self.push_ring(c, RingPayload::Writeback { line, home });
        }
    }

    /// Kernel-boundary software coherence (§2.1, §4) and SAC revert (§3.6).
    fn kernel_boundary(&mut self) -> Result<(), SimError> {
        // L1s are invalidated under both coherence schemes (write-through,
        // so no traffic).
        for chip in &mut self.chips {
            for cluster in &mut chip.clusters {
                cluster.flush_l1();
            }
        }

        let sm_mode_active = self.route_mode() == RouteMode::SmSide;
        match self.cfg.coherence {
            CoherenceKind::Software => {
                // The SM-side LLC (and the tiered organizations' remote
                // pools) must be flushed and invalidated.
                match self.org {
                    LlcOrgKind::SmSide => self.start_llc_flush(),
                    LlcOrgKind::Sac if sm_mode_active => self.start_llc_flush(),
                    LlcOrgKind::StaticHalf | LlcOrgKind::Dynamic => {
                        for c in 0..self.chips.len() {
                            for s in 0..self.cfg.slices_per_chip {
                                let dirty =
                                    self.chips[c].slices[s].cache.flush_home(DataHome::Remote);
                                for line in dirty {
                                    self.writeback_to_home(c, line);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            CoherenceKind::Hardware => {
                // The directory kept replicas coherent during the kernel;
                // remote replicas are dropped without bulk writeback
                // traffic, which is why reconfiguration is cheaper (§5.6).
                for chip in &mut self.chips {
                    for slice in &mut chip.slices {
                        slice.cache.flush_home(DataHome::Remote);
                    }
                }
                self.directory.clear();
            }
        }

        // SAC reverts to memory-side: drain (the flush above already ran if
        // software coherence required it).
        if let Some(sac) = self.sac.as_mut() {
            if sac.end_kernel() {
                // Draining happens below together with the flush traffic.
            }
        }

        // Let all writebacks and invalidations drain. Injected faults can
        // wedge this drain too (e.g. a partitioned ring holding a remote
        // writeback), so it runs under the same watchdog as the main loop.
        while !self.machine_quiescent() {
            self.tick(false);
            self.check_progress()?;
        }
        let now = self.cycle;
        if let Some(sac) = self.sac.as_mut() {
            sac.drain_complete(now);
        }
        Ok(())
    }

    fn sample_occupancy(&mut self) {
        let mut local = 0usize;
        let mut remote = 0usize;
        let mut cap = 0usize;
        for chip in &self.chips {
            let (l, r, c) = chip.llc_occupancy();
            local += l;
            remote += r;
            cap += c;
        }
        let valid = local + remote;
        if valid > 0 {
            self.occ_local += local as f64 / valid as f64;
            self.occ_fill += valid as f64 / cap.max(1) as f64;
            self.occ_samples += 1;
        }
    }

    fn collect_stats(&self) -> RunStats {
        let mut l1 = mcgpu_cache::CacheStats::default();
        let mut llc = mcgpu_cache::CacheStats::default();
        for chip in &self.chips {
            l1.merge(&chip.l1_stats());
            llc.merge(&chip.llc_stats());
        }
        RunStats {
            organization: self.org,
            cycles: self.cycle,
            reads: self.cluster_reads_total(),
            writes: self.writes_done,
            l1,
            llc,
            responses_by_origin: self.responses_by_origin,
            llc_local_fraction: if self.occ_samples > 0 {
                self.occ_local / self.occ_samples as f64
            } else {
                1.0
            },
            llc_occupancy: if self.occ_samples > 0 {
                self.occ_fill / self.occ_samples as f64
            } else {
                0.0
            },
            ring_bytes: self.ring.bytes_sent(),
            dram_reads: self.chips.iter().map(|c| c.memory.served_reads()).sum(),
            dram_writes: self.chips.iter().map(|c| c.memory.served_writes()).sum(),
            overhead_cycles: self.overhead_cycles,
            max_in_flight: self.max_in_flight,
            kernels: self.kernels.clone(),
            sac_history: self
                .sac
                .as_ref()
                .map(|s| s.history().to_vec())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_trace::{generate, profiles, TraceParams};

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    fn run(org: LlcOrgKind, bench: &str) -> RunStats {
        let c = cfg();
        let wl = generate(
            &c,
            &profiles::by_name(bench).unwrap(),
            &TraceParams::quick(),
        );
        SimBuilder::new(c)
            .organization(org)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap()
    }

    #[test]
    fn all_organizations_complete_the_same_work() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let mut totals = Vec::new();
        for org in LlcOrgKind::ALL {
            let stats = SimBuilder::new(c.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            assert!(stats.cycles > 0, "{org}");
            totals.push((org, stats.reads + stats.writes));
        }
        let first = totals[0].1;
        for (org, t) in totals {
            assert_eq!(t, first, "work mismatch for {org}");
        }
    }

    #[test]
    fn responses_match_reads_minus_l1_hits_and_merges() {
        let s = run(LlcOrgKind::MemorySide, "SN");
        let delivered: u64 = s.responses_by_origin.iter().sum();
        // Every delivered response completes >= 1 read; reads completed also
        // include L1 hits, so delivered <= reads.
        assert!(delivered > 0);
        assert!(
            delivered <= s.reads,
            "delivered {delivered} > reads {}",
            s.reads
        );
    }

    #[test]
    fn memory_side_caches_only_local_data() {
        let s = run(LlcOrgKind::MemorySide, "CFD");
        assert!(
            s.llc_local_fraction > 0.999,
            "memory-side local fraction {}",
            s.llc_local_fraction
        );
    }

    #[test]
    fn sm_side_caches_remote_data_for_sharing_workloads() {
        let s = run(LlcOrgKind::SmSide, "CFD");
        assert!(
            s.llc_local_fraction < 0.9,
            "SM-side should hold remote data, local fraction {}",
            s.llc_local_fraction
        );
    }

    #[test]
    fn sac_records_a_decision_per_kernel() {
        let s = run(LlcOrgKind::Sac, "SN");
        assert_eq!(
            s.sac_history.len(),
            profiles::by_name("SN").unwrap().total_kernels()
        );
        assert!(s.kernels.iter().all(|k| k.sac_mode.is_some()));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let err = SimBuilder::new(c)
            .organization(LlcOrgKind::MemorySide)
            .max_cycles(100)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn conservation_audit_passes_on_every_organization() {
        let c = cfg();
        let wl = generate(
            &c,
            &profiles::by_name("CFD").unwrap(),
            &TraceParams::quick(),
        );
        for org in LlcOrgKind::ALL {
            let stats = SimBuilder::new(c.clone())
                .organization(org)
                .conservation_audit(512)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap_or_else(|e| panic!("{org}: {e}"));
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn conservation_audit_detects_a_lost_request() {
        let mut sim = SimBuilder::new(cfg())
            .build()
            .expect("valid machine configuration");
        // An idle machine with a nonzero in-flight count is exactly the
        // "request lost" corruption the audit exists to catch.
        sim.in_flight = 3;
        let err = sim.audit_conservation().unwrap_err();
        match err {
            SimError::InvariantViolation { report, .. } => {
                assert_eq!(report.in_flight, 3);
                assert_eq!(report.accounted, 0);
            }
            other => panic!("expected InvariantViolation, got {other}"),
        }
    }

    #[test]
    fn wall_clock_deadline_aborts_with_timeout() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let err = SimBuilder::new(c)
            .deadline(std::time::Duration::ZERO)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "got {err}");
    }

    #[test]
    fn watchdog_window_defaults_from_config() {
        let mut c = cfg();
        c.watchdog_cycles = 1234;
        let sim = SimBuilder::new(c)
            .build()
            .expect("valid machine configuration");
        assert_eq!(sim.watchdog_window, 1234);
    }

    #[test]
    fn hardware_coherence_runs_clean() {
        let mut c = cfg();
        c.coherence = CoherenceKind::Hardware;
        let wl = generate(&c, &profiles::by_name("RN").unwrap(), &TraceParams::quick());
        let s = SimBuilder::new(c)
            .organization(LlcOrgKind::SmSide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert!(s.cycles > 0);
    }

    #[test]
    fn sectored_machine_runs_clean() {
        let mut c = cfg();
        c.sectored = true;
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        for org in [LlcOrgKind::MemorySide, LlcOrgKind::Sac] {
            let s = SimBuilder::new(c.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn two_chip_machine_runs_clean() {
        let mut c = cfg();
        c.chips = 2;
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let s = SimBuilder::new(c)
            .organization(LlcOrgKind::Sac)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert!(s.cycles > 0);
    }
}
