//! Kernel-boundary sequencing: software/hardware coherence actions, the
//! policy's boundary decision, and the post-kernel drain (§2.1, §3.6, §4).

use super::{SimError, Simulator};
use crate::org::BoundaryAction;
use crate::packet::RingPayload;
use mcgpu_cache::DataHome;
use mcgpu_types::{CoherenceKind, LineAddr};

impl Simulator {
    /// Write back every dirty LLC line while keeping contents resident
    /// (SAC memory-side → SM-side reconfiguration).
    pub(super) fn start_llc_dirty_writeback(&mut self) {
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                let dirty = self.chips[c].slices[s].cache.writeback_all_dirty();
                for line in dirty {
                    self.writeback_to_home(c, line);
                }
            }
        }
    }

    /// Write back and invalidate every dirty LLC line (software-coherence
    /// kernel boundaries for SM-side contents).
    fn start_llc_flush(&mut self) {
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                let dirty = self.chips[c].slices[s].cache.flush_all();
                for line in dirty {
                    self.writeback_to_home(c, line);
                }
            }
        }
    }

    /// Send `line`'s data back to its home: the local partition directly,
    /// or a writeback packet across the ring.
    pub(super) fn writeback_to_home(&mut self, c: usize, line: LineAddr) {
        let page = line.page(self.cfg.line_size, self.cfg.page_size);
        let home = self
            .page_table
            .lookup(page)
            .expect("cached lines have mapped pages");
        if home.index() == c {
            self.chips[c].memory.push_writeback(line);
        } else {
            self.push_ring(c, RingPayload::Writeback { line, home });
        }
    }

    /// Kernel-boundary software coherence (§2.1, §4) and SAC revert (§3.6).
    ///
    /// Sequencing matters: the policy's boundary action is read *before*
    /// `end_kernel` (SAC reverts its mode there, and the action must
    /// reflect the mode the kernel actually ran in), the drain runs next,
    /// and the policy is told the drain finished last.
    pub(super) fn kernel_boundary(&mut self) -> Result<(), SimError> {
        let boundary_start = self.cycle;
        // L1s are invalidated under both coherence schemes (write-through,
        // so no traffic).
        for chip in &mut self.chips {
            for cluster in &mut chip.clusters {
                cluster.flush_l1();
            }
        }

        match self.policy.boundary_action(self.cfg.coherence) {
            BoundaryAction::None => {}
            BoundaryAction::FlushAllDirty => self.start_llc_flush(),
            BoundaryAction::FlushRemoteDirty => {
                // Only the remote pool replicates; its dirty lines are
                // written back home and the pool is invalidated.
                for c in 0..self.chips.len() {
                    for s in 0..self.cfg.slices_per_chip {
                        let dirty = self.chips[c].slices[s].cache.flush_home(DataHome::Remote);
                        for line in dirty {
                            self.writeback_to_home(c, line);
                        }
                    }
                }
            }
            BoundaryAction::DropRemoteReplicas => {
                // The directory kept replicas coherent during the kernel;
                // remote replicas are dropped without bulk writeback
                // traffic, which is why reconfiguration is cheaper (§5.6).
                for chip in &mut self.chips {
                    for slice in &mut chip.slices {
                        slice.cache.flush_home(DataHome::Remote);
                    }
                }
            }
        }
        if self.cfg.coherence == CoherenceKind::Hardware {
            self.directory.clear();
        }

        // SAC reverts to memory-side; the flush above already ran if the
        // coherence scheme required it, and draining happens below together
        // with the flush traffic.
        self.policy.end_kernel();

        // Let all writebacks and invalidations drain. Injected faults can
        // wedge this drain too (e.g. a partitioned ring holding a remote
        // writeback), so it runs under the same watchdog as the main loop.
        while !self.machine_quiescent() {
            self.tick(false);
            self.check_progress()?;
        }
        let now = self.cycle;
        self.policy.boundary_drained(now);
        if let Some(o) = self.obs.as_deref_mut() {
            o.note_boundary(boundary_start, now);
        }
        Ok(())
    }
}
