//! Engine checkpoint/restore: the `mcgpu-ckpt-v1` snapshot of the full
//! live machine state, for cycle-granular crash recovery of long runs.
//!
//! A snapshot captures *everything the simulation's future depends on*:
//! per-cluster issue cursors and MSHRs, every LLC slice (tags, sector
//! bits, LRU, partition, stats), slice service pipes and pending-fetch
//! tables, crossbar and ring packets in flight, DRAM channel state, the
//! coherence sharer directory, the organization policy's controller
//! state, the fault-plan cursor, watchdog state, accumulated statistics
//! and the observability recorders. Restoring a snapshot into a freshly
//! built [`Simulator`] (same [`MachineConfig`], same organization, same
//! workload) and running to completion is **byte-identical** to the
//! uninterrupted run — including the observability report.
//!
//! What is deliberately *not* serialized:
//!
//! * the access traces themselves (an [`Arc<[MemAccess]>`] per cluster)
//!   — the restoring side regenerates the workload deterministically and
//!   [`Simulator::restore`] re-attaches the in-progress kernel's streams
//!   before decoding cursor state. A fingerprint over every access
//!   guards against re-attaching a different workload;
//! * builder-provided run limits (`max_cycles`, watchdog window,
//!   deadline, audit period) — the caller configures the new simulator
//!   identically, and a restore under *different* limits is a feature
//!   (e.g. extending the budget of a timed-out run);
//! * per-cycle scratch buffers and spare-entry pools — allocation reuse
//!   only, no simulation-visible state.
//!
//! Snapshots are framed by [`mcgpu_types::ckpt`] (magic, version,
//! length, FNV-1a checksum) and written atomically via
//! [`mcgpu_types::fsio`], so a crash mid-write leaves the previous
//! snapshot readable and a torn file is detected, never misparsed.

use super::coherence::SharerDirectory;
use super::diagnostics::{SimError, DEADLINE_CHECK_PERIOD};
use super::Simulator;
use crate::org::Pause;
use crate::packet::RingPayload;
use crate::stats::KernelStats;
use mcgpu_mem::PageTable;
use mcgpu_trace::Workload;
use mcgpu_types::ckpt::{fnv1a64, read_snapshot, write_snapshot};
use mcgpu_types::{CkptError, CkptResult, Dec, Enc, FaultPlan};
use std::path::Path;

/// Fingerprint of a workload's complete access stream (name, kernel
/// structure, every address and access kind), stamped into snapshots so
/// a restore against a different workload fails loudly with
/// [`CkptError::FingerprintMismatch`] instead of silently replaying the
/// wrong traces.
pub fn workload_fingerprint(wl: &Workload) -> u64 {
    let mut e = Enc::new();
    e.put_str(&wl.name);
    e.put_seq_len(wl.kernels.len());
    for kernel in &wl.kernels {
        e.put_u32(kernel.behavior.compute_gap);
        e.put_seq_len(kernel.per_cluster.len());
        for stream in &kernel.per_cluster {
            e.put_seq_len(stream.len());
            for a in stream.iter() {
                e.put_u64(a.addr.0);
                e.put_u8(a.kind.is_write() as u8);
            }
        }
    }
    fnv1a64(&e.into_bytes())
}

fn save_pause(e: &mut Enc, pause: Pause) {
    e.put_u8(match pause {
        Pause::Running => 0,
        Pause::SacDrain => 1,
        Pause::SacFlush => 2,
    });
}

fn load_pause(d: &mut Dec<'_>) -> CkptResult<Pause> {
    match d.get_u8()? {
        0 => Ok(Pause::Running),
        1 => Ok(Pause::SacDrain),
        2 => Ok(Pause::SacFlush),
        t => Err(CkptError::Decode(format!("invalid Pause tag {t}"))),
    }
}

impl Simulator {
    /// Fingerprint of the machine configuration this simulator was built
    /// for, stamped into snapshots so a restore into a differently
    /// configured machine fails loudly.
    fn config_fingerprint(&self) -> u64 {
        // `MachineConfig` derives `Debug` over plain-data fields, so its
        // debug rendering is a complete, deterministic serialization.
        fnv1a64(format!("{:?}", self.cfg).as_bytes())
    }

    /// The current simulation cycle (the restore point after
    /// [`Simulator::restore`], `0` on a fresh simulator).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Serialize the complete live machine state into a `mcgpu-ckpt-v1`
    /// payload (unframed; [`Simulator::write_checkpoint`] adds framing
    /// and durability). Read-only with respect to simulation state.
    pub fn checkpoint(&self, wl: &Workload) -> Vec<u8> {
        self.checkpoint_payload(workload_fingerprint(wl))
    }

    pub(super) fn checkpoint_payload(&self, wl_fp: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u64(self.config_fingerprint());
        e.put_u64(wl_fp);

        // Kernel-loop cursor.
        e.put_usize(self.kernel_index);
        e.put_u64(self.kernel_start_cycle);
        e.put_u64(self.work_before);

        // Engine scalars.
        e.put_u64(self.cycle);
        e.put_u64(self.next_id);
        e.put_u64(self.in_flight);
        e.put_u64(self.max_in_flight);
        save_pause(&mut e, self.pause);
        e.put_u64(self.watchdog_sig);
        e.put_u64(self.watchdog_cycle);
        e.put_seq_len(self.link_factor.len());
        for &f in &self.link_factor {
            e.put_f64(f);
        }
        e.put_seq_len(self.dram_factor.len());
        for &f in &self.dram_factor {
            e.put_f64(f);
        }

        // Accumulators.
        e.put_u64(self.writes_done);
        for &r in &self.responses_by_origin {
            e.put_u64(r);
        }
        e.put_u64(self.overhead_cycles);
        e.put_u64(self.occ_samples);
        e.put_f64(self.occ_local);
        e.put_f64(self.occ_fill);

        // Resilience state.
        self.fault_plan.save(&mut e);
        self.directory.save(&mut e);

        // Completed-kernel statistics.
        e.put_seq_len(self.kernels.len());
        for k in &self.kernels {
            k.save(&mut e);
        }

        // Memory-system and network state.
        self.page_table.save(&mut e);
        self.ring.save_with(&mut e, |e, p| p.save(e));
        e.put_seq_len(self.chips.len());
        for chip in &self.chips {
            chip.save(&mut e);
        }

        // Organization policy (kind label guards cross-org restores).
        e.put_str(self.policy.kind().label());
        self.policy.save_state(&mut e);

        // Observability recorders (byte-identical reports after resume).
        match self.obs.as_deref() {
            Some(o) => {
                e.put_bool(true);
                o.save(&mut e);
            }
            None => e.put_bool(false),
        }

        e.into_bytes()
    }

    /// Write a framed snapshot to `path` atomically (write temp file,
    /// fsync, rename, fsync parent directory).
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] if the file cannot be written; the
    /// previous snapshot at `path`, if any, is left intact.
    pub fn write_checkpoint(&self, path: &Path, wl: &Workload) -> Result<(), SimError> {
        let payload = self.checkpoint(wl);
        write_snapshot(path, &payload).map_err(|e| SimError::Checkpoint {
            detail: format!("writing {}: {e}", path.display()),
        })
    }

    /// Overwrite this simulator's state from a snapshot payload, resuming
    /// mid-kernel at the snapshot's exact cycle. The simulator must have
    /// been built with the same [`MachineConfig`](mcgpu_types::MachineConfig)
    /// and organization as the one that wrote the snapshot, and `wl` must
    /// be the same workload — both are fingerprint-checked. The next
    /// [`run`](Simulator::run) continues from the restore point and
    /// produces byte-identical results to the uninterrupted run.
    ///
    /// # Errors
    /// [`CkptError::FingerprintMismatch`] on a config/workload mismatch,
    /// [`CkptError::Decode`] on truncated or inconsistent payloads. On
    /// error the simulator may be partially overwritten: discard it and
    /// build a fresh one (the callers' fallback is a full re-run).
    pub fn restore(&mut self, payload: &[u8], wl: &Workload) -> CkptResult<()> {
        let mut d = Dec::new(payload);

        let snap_cfg = d.get_u64()?;
        let expected_cfg = self.config_fingerprint();
        if snap_cfg != expected_cfg {
            return Err(CkptError::FingerprintMismatch {
                snapshot: snap_cfg,
                expected: expected_cfg,
            });
        }
        let snap_wl = d.get_u64()?;
        let expected_wl = workload_fingerprint(wl);
        if snap_wl != expected_wl {
            return Err(CkptError::FingerprintMismatch {
                snapshot: snap_wl,
                expected: expected_wl,
            });
        }

        let kernel_index = d.get_usize()?;
        if kernel_index >= wl.kernels.len() {
            return Err(CkptError::Decode(format!(
                "snapshot kernel index {kernel_index} out of range ({} kernels)",
                wl.kernels.len()
            )));
        }
        self.kernel_index = kernel_index;
        self.kernel_start_cycle = d.get_u64()?;
        self.work_before = d.get_u64()?;

        self.cycle = d.get_u64()?;
        self.next_id = d.get_u64()?;
        self.in_flight = d.get_u64()?;
        self.max_in_flight = d.get_u64()?;
        self.pause = load_pause(&mut d)?;
        self.watchdog_sig = d.get_u64()?;
        self.watchdog_cycle = d.get_u64()?;
        for factors in [&mut self.link_factor, &mut self.dram_factor] {
            let n = d.get_seq_len()?;
            if n != factors.len() {
                return Err(CkptError::Decode(format!(
                    "bandwidth factor count mismatch: snapshot {n}, machine {}",
                    factors.len()
                )));
            }
            for f in factors.iter_mut() {
                *f = d.get_f64()?;
            }
        }

        self.writes_done = d.get_u64()?;
        for r in &mut self.responses_by_origin {
            *r = d.get_u64()?;
        }
        self.overhead_cycles = d.get_u64()?;
        self.occ_samples = d.get_u64()?;
        self.occ_local = d.get_f64()?;
        self.occ_fill = d.get_f64()?;

        self.fault_plan = FaultPlan::load(&mut d)?;
        self.directory = SharerDirectory::load(&mut d)?;

        let nk = d.get_seq_len()?;
        self.kernels.clear();
        for _ in 0..nk {
            self.kernels.push(KernelStats::load(&mut d)?);
        }

        self.page_table = PageTable::load(&mut d)?;
        self.ring.load_into(&mut d, RingPayload::load)?;

        // Re-attach the in-progress kernel's access streams *before*
        // decoding the chips: cluster cursor validation needs the real
        // trace lengths, and the workload fingerprint above guarantees
        // these are the very streams the snapshot's cursors index into.
        let kernel = &wl.kernels[kernel_index];
        let gap = kernel.behavior.compute_gap;
        for (flat, chip) in self.chips.iter_mut().enumerate() {
            for (ci, cluster) in chip.clusters.iter_mut().enumerate() {
                let idx = flat * self.cfg.clusters_per_chip + ci;
                cluster.load_kernel(kernel.per_cluster[idx].clone(), gap);
            }
        }
        let nchips = d.get_seq_len()?;
        if nchips != self.chips.len() {
            return Err(CkptError::Decode(format!(
                "chip count mismatch: snapshot {nchips}, machine {}",
                self.chips.len()
            )));
        }
        for chip in &mut self.chips {
            chip.load_into(&mut d)?;
        }

        let kind = d.get_str()?;
        let live = self.policy.kind().label();
        if kind != live {
            return Err(CkptError::Decode(format!(
                "organization mismatch: snapshot {kind:?}, simulator {live:?}"
            )));
        }
        self.policy.load_state(&mut d)?;

        let has_obs = d.get_bool()?;
        match (self.obs.as_deref_mut(), has_obs) {
            (Some(o), true) => o.load_into(&mut d)?,
            (None, false) => {}
            (live_obs, snap_obs) => {
                return Err(CkptError::Decode(format!(
                    "observability mismatch: snapshot {}, simulator {}",
                    if snap_obs { "recorded" } else { "off" },
                    if live_obs.is_some() { "on" } else { "off" },
                )));
            }
        }

        if d.remaining() != 0 {
            return Err(CkptError::Decode(format!(
                "{} trailing bytes after snapshot payload",
                d.remaining()
            )));
        }

        // The cache partition split was restored with the slices; do NOT
        // reapply the policy's split (a mid-epoch Dynamic adjustment or a
        // mid-switch SAC would be clobbered). Arm the resume cursor and
        // align the periodic-write clock with the uninterrupted run's.
        self.resume_kernel = Some(kernel_index);
        self.wl_fingerprint = Some(snap_wl);
        self.last_ckpt_cycle = self.cycle;
        Ok(())
    }

    /// Read, validate and adopt the framed snapshot at `path`. See
    /// [`Simulator::restore`].
    ///
    /// # Errors
    /// Any framing error (missing/torn/corrupt file) or restore error.
    pub fn restore_from_file(&mut self, path: &Path, wl: &Workload) -> CkptResult<()> {
        let payload = read_snapshot(path)?;
        self.restore(&payload, wl)
    }

    /// Periodic-trigger hook, called once per cycle from the run loop.
    /// Fires on the coarse deadline-check grid once `ckpt_interval`
    /// cycles have elapsed since the last write; no-ops (one branch) when
    /// checkpointing is off.
    pub(super) fn maybe_checkpoint(&mut self) -> Result<(), SimError> {
        if self.ckpt_interval == 0 {
            return Ok(());
        }
        if self.cycle % DEADLINE_CHECK_PERIOD != 1
            || self.cycle.saturating_sub(self.last_ckpt_cycle) < self.ckpt_interval
        {
            return Ok(());
        }
        let Some(path) = self.ckpt_path.clone() else {
            return Ok(());
        };
        let wl_fp = self.wl_fingerprint.ok_or_else(|| SimError::Checkpoint {
            detail: "workload fingerprint missing at periodic checkpoint".to_string(),
        })?;
        let payload = self.checkpoint_payload(wl_fp);
        write_snapshot(&path, &payload).map_err(|e| SimError::Checkpoint {
            detail: format!("writing {}: {e}", path.display()),
        })?;
        self.last_ckpt_cycle = self.cycle;
        Ok(())
    }
}
