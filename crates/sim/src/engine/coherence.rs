//! Hardware coherence: the chip-granularity sharer directory and the
//! write-invalidation protocol (§5.6).

use super::Simulator;
use crate::packet::RingPayload;
use mcgpu_types::{ChipId, CoherenceKind, LineAddr};

/// Chip-granularity sharer directory for hardware coherence, stored as a
/// flat word-per-line bitmask table indexed by line index (one bit per
/// chip, up to the 64-chip configuration limit). The table grows on demand
/// to the highest line ever filled and is reset with a `memset` at kernel
/// boundaries, so the per-access path is one bounds check and one word
/// load — no hashing, no per-kernel reallocation.
///
/// # `set`/`fill` asymmetry
/// [`fill`](SharerDirectory::fill) grows the table so a replica is always
/// tracked, while [`set`](SharerDirectory::set) deliberately no-ops on
/// untracked lines (matching the map-based behaviour where a write to an
/// absent entry is a no-op): a line no chip replicated has no sharer set to
/// replace, and inventing one would make the owner appear as a sharer of a
/// line that was never filled. The contract is pinned by the unit tests
/// below.
#[derive(Debug, Default)]
pub(super) struct SharerDirectory {
    masks: Vec<u64>,
}

impl SharerDirectory {
    /// Sharer mask for `line` (`0` = untracked).
    pub(super) fn mask(&self, line: u64) -> u64 {
        self.masks.get(line as usize).copied().unwrap_or(0)
    }

    /// Replace the sharer set of a tracked `line` with `mask`. Untracked
    /// lines stay untracked (matching the map-based behaviour where a write
    /// to an absent entry is a no-op).
    pub(super) fn set(&mut self, line: u64, mask: u64) {
        if let Some(m) = self.masks.get_mut(line as usize) {
            *m = mask;
        }
    }

    /// Record chip `c` as holding a replica of `line`.
    pub(super) fn fill(&mut self, line: u64, c: usize) {
        let idx = line as usize;
        if idx >= self.masks.len() {
            // Amortized growth: doubling keeps the number of grows
            // logarithmic in the footprint while tracking it closely.
            self.masks.resize((idx + 1).max(self.masks.len() * 2), 0);
        }
        self.masks[idx] |= 1u64 << c;
    }

    /// Drop all sharer state, keeping the table's capacity.
    pub(super) fn clear(&mut self) {
        self.masks.fill(0);
    }

    /// Serialize the sharer table into a checkpoint payload.
    pub(super) fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_seq_len(self.masks.len());
        for &m in &self.masks {
            e.put_u64(m);
        }
    }

    /// Deserialize a table saved by [`SharerDirectory::save`].
    pub(super) fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let n = d.get_seq_len()?;
        let mut masks = Vec::with_capacity(n);
        for _ in 0..n {
            masks.push(d.get_u64()?);
        }
        Ok(SharerDirectory { masks })
    }
}

impl Simulator {
    /// Hardware coherence: a write at chip `c` invalidates all other chips'
    /// replicas of `line` (§5.6).
    pub(super) fn coherence_on_write(&mut self, c: usize, line: LineAddr) {
        if self.cfg.coherence != CoherenceKind::Hardware {
            return;
        }
        let mask = self.directory.mask(line.index());
        if mask == 0 {
            return;
        }
        let owner_bit = 1u64 << c;
        let others = mask & !owner_bit;
        self.directory.set(line.index(), owner_bit);
        if others == 0 {
            return;
        }
        for b in 0..self.cfg.chips {
            if others & (1u64 << b) != 0 {
                self.push_ring(
                    c,
                    RingPayload::Inval {
                        line,
                        target: ChipId(b as u8),
                    },
                );
            }
        }
    }

    /// Record a replica fill for the hardware-coherence directory.
    pub(super) fn directory_fill(&mut self, c: usize, line: LineAddr) {
        if self.cfg.coherence == CoherenceKind::Hardware {
            self.directory.fill(line.index(), c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SharerDirectory;

    #[test]
    fn set_is_a_no_op_on_untracked_lines() {
        let mut dir = SharerDirectory::default();
        // No fill has happened: the table is empty and `set` must not grow
        // it or invent a sharer.
        dir.set(7, 0b0001);
        assert_eq!(dir.mask(7), 0, "untracked line gained a sharer set");

        // Even with the table grown past the line by another fill, a line
        // that was never filled reads as untracked — but `set` now lands in
        // allocated storage and takes effect. The contract is about table
        // coverage, not fill history per line.
        dir.fill(9, 2);
        dir.set(7, 0b0001);
        assert_eq!(dir.mask(7), 0b0001, "covered line must accept a set");
    }

    #[test]
    fn fill_grows_and_accumulates_sharers() {
        let mut dir = SharerDirectory::default();
        dir.fill(3, 0);
        dir.fill(3, 2);
        assert_eq!(dir.mask(3), 0b0101);
        // Beyond-the-end reads stay untracked rather than panicking.
        assert_eq!(dir.mask(1_000_000), 0);
        // `set` replaces (not ORs) the mask of a tracked line.
        dir.set(3, 0b0010);
        assert_eq!(dir.mask(3), 0b0010);
    }

    #[test]
    fn clear_keeps_capacity_but_drops_all_sharers() {
        let mut dir = SharerDirectory::default();
        for line in 0..64 {
            dir.fill(line, (line % 4) as usize);
        }
        dir.clear();
        for line in 0..64 {
            assert_eq!(dir.mask(line), 0);
        }
        // Cleared lines are still covered by the table, so `set` sticks.
        dir.set(5, 0b1000);
        assert_eq!(dir.mask(5), 0b1000);
    }
}
