//! Runtime diagnostics: the forward-progress watchdog, wall-clock deadline,
//! request-conservation audit, and the deadlock snapshot they report.

use super::Simulator;
use crate::cluster::Cluster;
use crate::packet::RingPayload;
use mcgpu_types::ConfigError;

/// How often the wall-clock deadline is checked (cycles). Coarse enough to
/// keep `Instant::now` off the hot path, fine enough that a runaway cell is
/// caught within a fraction of a second.
pub(super) const DEADLINE_CHECK_PERIOD: u64 = 65_536;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded the configured cycle budget (livelock guard).
    CycleLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The forward-progress watchdog fired: no request retired anywhere in
    /// the machine for a whole watchdog window. Carries a diagnostic
    /// snapshot of where the in-flight work is stuck.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// The progress-free window length that triggered it.
        window: u64,
        /// Where the stuck work sits, per chip.
        snapshot: Box<DeadlockSnapshot>,
    },
    /// The per-run wall-clock deadline elapsed. The simulation was still
    /// making forward progress — just too slowly for the caller's budget
    /// (the sweep runner's per-cell deadline). The deadline is abort-only
    /// and checked on a coarse cycle grid, so enabling it never perturbs
    /// the statistics of runs that complete.
    Timeout {
        /// Wall-clock time spent, milliseconds.
        elapsed_ms: u64,
        /// The configured budget, milliseconds.
        budget_ms: u64,
    },
    /// The caller raised the cooperative cancellation flag
    /// ([`super::SimBuilder::cancel_flag`]) and the run stopped at the next
    /// check. The simulation itself was healthy — the caller's budget
    /// expired or the request was aborted (the sweep service's per-request
    /// budgets). Like the deadline, the flag is abort-only and polled on a
    /// coarse cycle grid, so runs that complete are byte-identical with and
    /// without a flag installed.
    Cancelled {
        /// Cycle at which the flag was observed.
        cycle: u64,
    },
    /// The request-conservation audit failed: the engine's in-flight
    /// counter disagrees with the number of request-carrying entries found
    /// in the machine's queues — a request was lost or double-counted.
    /// Carries the per-chip breakdown of where requests were found.
    InvariantViolation {
        /// Cycle at which the audit failed.
        cycle: u64,
        /// What the audit counted.
        report: Box<ConservationReport>,
    },
    /// A checkpoint snapshot could not be written or restored. Carries the
    /// underlying error rendered to text (I/O failure, torn or corrupt
    /// snapshot, fingerprint mismatch).
    Checkpoint {
        /// What went wrong.
        detail: String,
    },
    /// The simulator could not be built or run from the given inputs.
    Config(ConfigError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::Deadlock {
                cycle,
                window,
                snapshot,
            } => {
                write!(
                    f,
                    "no forward progress for {window} cycles (deadlock at cycle {cycle}): {snapshot}"
                )
            }
            SimError::Timeout {
                elapsed_ms,
                budget_ms,
            } => {
                write!(
                    f,
                    "simulation exceeded its wall-clock deadline ({elapsed_ms} ms spent, budget {budget_ms} ms)"
                )
            }
            SimError::Cancelled { cycle } => {
                write!(
                    f,
                    "simulation cancelled by its caller at cycle {cycle} (budget expired or request aborted)"
                )
            }
            SimError::InvariantViolation { cycle, report } => {
                write!(
                    f,
                    "request-conservation violation at cycle {cycle}: {report}"
                )
            }
            SimError::Checkpoint { detail } => {
                write!(f, "checkpoint failure: {detail}")
            }
            SimError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Where in-flight work was sitting when the forward-progress watchdog
/// fired. Every field is a queue depth (entries, not bytes) captured at the
/// moment of the abort.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Requests issued but never completed, machine-wide.
    pub in_flight: u64,
    /// Why issue was paused, if it was (`"running"`, `"sac-drain"`,
    /// `"sac-flush"`).
    pub pause: String,
    /// Per-chip queue depths.
    pub chips: Vec<ChipSnapshot>,
}

/// One chip's queue depths inside a [`DeadlockSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipSnapshot {
    /// The chip index.
    pub chip: usize,
    /// Outstanding L1 MSHR entries summed over the chip's clusters.
    pub cluster_mshrs: usize,
    /// Entries inside the request crossbar.
    pub xbar_req: usize,
    /// Entries inside the response crossbar.
    pub xbar_rsp: usize,
    /// Requests queued or in flight at the LLC slice service pipes.
    pub slice_service: usize,
    /// Requests merged onto outstanding LLC line fetches (slice MSHRs).
    pub slice_pending: usize,
    /// Requests inside the DRAM channel pipes.
    pub memory: usize,
    /// Requests on the ring→memory bypass path.
    pub bypass: usize,
    /// Payloads waiting to leave the chip for the ring (including the
    /// egress pipe and retry slot).
    pub ring_egress: usize,
    /// Payloads inside the ring fabric charged to this chip (link pipes,
    /// transit buffers, undelivered arrivals).
    pub ring_fabric: usize,
}

impl ChipSnapshot {
    /// Total stuck entries on this chip.
    pub fn total(&self) -> usize {
        self.cluster_mshrs
            + self.xbar_req
            + self.xbar_rsp
            + self.slice_service
            + self.slice_pending
            + self.memory
            + self.bypass
            + self.ring_egress
            + self.ring_fabric
    }
}

impl std::fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in flight, pause={}", self.in_flight, self.pause)?;
        for c in &self.chips {
            write!(
                f,
                "; chip{}: mshr={} xbar={}+{} slice={}+{} mem={} bypass={} ring={}+{}",
                c.chip,
                c.cluster_mshrs,
                c.xbar_req,
                c.xbar_rsp,
                c.slice_service,
                c.slice_pending,
                c.memory,
                c.bypass,
                c.ring_egress,
                c.ring_fabric
            )?;
        }
        Ok(())
    }
}

/// What the request-conservation audit counted when it found a mismatch:
/// the engine's issued-minus-retired counter versus the request-carrying
/// entries actually present in the machine's queues. Writeback sentinels,
/// ring writebacks and invalidations are excluded on both sides — they
/// never enter the in-flight count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Requests issued but not yet completed (the engine's counter).
    pub in_flight: u64,
    /// Request-carrying queue entries found machine-wide.
    pub accounted: u64,
    /// Request-carrying ring-fabric packets (machine-wide; the ring does
    /// not attribute transit packets to a chip).
    pub ring_fabric: usize,
    /// Per-chip breakdown of the accounted entries.
    pub chips: Vec<ChipConservation>,
}

/// One chip's request-carrying queue entries inside a
/// [`ConservationReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipConservation {
    /// The chip index.
    pub chip: usize,
    /// Requests inside the request crossbar and its ring-ingress queue.
    pub network_req: usize,
    /// Requests queued or in flight at the LLC slice service pipes.
    pub slice_service: usize,
    /// Requests merged onto outstanding LLC line fetches (slice MSHRs).
    pub slice_waiters: usize,
    /// Live requests inside the DRAM channels (writeback sentinels
    /// excluded).
    pub memory: usize,
    /// Requests on the ring→memory bypass path.
    pub bypass: usize,
    /// Responses inside the response crossbar and its ingress queue.
    pub network_rsp: usize,
    /// Request/response payloads waiting to leave the chip for the ring.
    pub ring_egress: usize,
}

impl ChipConservation {
    /// Total request-carrying entries on this chip.
    pub fn total(&self) -> usize {
        self.network_req
            + self.slice_service
            + self.slice_waiters
            + self.memory
            + self.bypass
            + self.network_rsp
            + self.ring_egress
    }
}

impl std::fmt::Display for ConservationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "in_flight={} but accounted={} (ring fabric {})",
            self.in_flight, self.accounted, self.ring_fabric
        )?;
        for c in &self.chips {
            write!(
                f,
                "; chip{}: req={} slice={}+{} mem={} bypass={} rsp={} egress={}",
                c.chip,
                c.network_req,
                c.slice_service,
                c.slice_waiters,
                c.memory,
                c.bypass,
                c.network_rsp,
                c.ring_egress
            )?;
        }
        Ok(())
    }
}

impl Simulator {
    /// A monotonic count that changes whenever anything anywhere in the
    /// machine completes or moves: requests retiring, DRAM serving, ring
    /// traffic being injected or delivered. If this freezes, the machine is
    /// wedged.
    fn progress_signature(&self) -> u64 {
        let dram: u64 = self
            .chips
            .iter()
            .map(|c| c.memory.served_reads() + c.memory.served_writes())
            .sum();
        self.cluster_reads_total()
            + self.writes_done
            + self.ring.delivered()
            + self.ring.bytes_sent()
            + dram
    }

    /// Runtime guards, called once per tick from every simulation loop
    /// (including drains): the cooperative cancellation flag
    /// ([`SimError::Cancelled`]) and the wall-clock deadline
    /// ([`SimError::Timeout`]) — both checked on a coarse cycle grid so
    /// atomics and `Instant::now` stay off the hot path — the
    /// forward-progress watchdog ([`SimError::Deadlock`]), and the
    /// request-conservation audit ([`SimError::InvariantViolation`]).
    pub(super) fn check_progress(&mut self) -> Result<(), SimError> {
        if self.cycle % DEADLINE_CHECK_PERIOD == 1 {
            if let Some(flag) = &self.cancel {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(SimError::Cancelled { cycle: self.cycle });
                }
            }
            if let (Some(budget), Some(start)) = (self.deadline, self.deadline_start) {
                let elapsed = start.elapsed();
                if elapsed > budget {
                    return Err(SimError::Timeout {
                        elapsed_ms: elapsed.as_millis() as u64,
                        budget_ms: budget.as_millis() as u64,
                    });
                }
            }
        }
        if self.audit_period != 0 && self.cycle.is_multiple_of(self.audit_period) {
            self.audit_conservation()?;
        }
        if self.watchdog_window == u64::MAX {
            return Ok(());
        }
        let sig = self.progress_signature();
        if sig != self.watchdog_sig {
            self.watchdog_sig = sig;
            self.watchdog_cycle = self.cycle;
            return Ok(());
        }
        if self.cycle - self.watchdog_cycle >= self.watchdog_window {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                window: self.watchdog_window,
                snapshot: Box::new(self.deadlock_snapshot()),
            });
        }
        Ok(())
    }

    /// Request-conservation audit: between ticks, every request the engine
    /// counts as in flight sits in exactly one queue — crossbars, slice
    /// service pipes, slice MSHR waiter lists, DRAM channels, the bypass
    /// path, response queues, or the ring (egress queues and fabric).
    /// Writeback sentinels and coherence invalidations carry no request and
    /// are excluded. A mismatch means a request was lost or double-counted
    /// and the run's statistics can no longer be trusted, so the audit
    /// fails fast with the full breakdown.
    pub(super) fn audit_conservation(&self) -> Result<(), SimError> {
        fn carries_request(p: &RingPayload) -> bool {
            matches!(p, RingPayload::Req(_) | RingPayload::Rsp(_))
        }
        let chips: Vec<ChipConservation> = self
            .chips
            .iter()
            .enumerate()
            .map(|(i, chip)| ChipConservation {
                chip: i,
                network_req: chip.pending_req.len() + chip.xbar_req.len(),
                slice_service: chip.slices.iter().map(|s| s.service.len()).sum(),
                slice_waiters: chip.slices.iter().map(|s| s.pending.waiting()).sum(),
                memory: chip.memory.pending_requests(),
                bypass: chip.bypass_to_mem.len(),
                network_rsp: chip.pending_rsp.len() + chip.xbar_rsp.len(),
                ring_egress: chip
                    .pending_ring
                    .iter()
                    .filter(|p| carries_request(p))
                    .count()
                    + chip
                        .ring_egress
                        .iter()
                        .filter(|p| carries_request(p))
                        .count()
                    + chip.ring_retry.as_ref().is_some_and(carries_request) as usize,
            })
            .collect();
        let ring_fabric = self.ring.count_matching(carries_request);
        let accounted =
            chips.iter().map(ChipConservation::total).sum::<usize>() as u64 + ring_fabric as u64;
        if accounted == self.in_flight {
            return Ok(());
        }
        Err(SimError::InvariantViolation {
            cycle: self.cycle,
            report: Box::new(ConservationReport {
                in_flight: self.in_flight,
                accounted,
                ring_fabric,
                chips,
            }),
        })
    }

    /// Capture where all in-flight work currently sits, for the watchdog's
    /// abort diagnostics.
    fn deadlock_snapshot(&self) -> DeadlockSnapshot {
        let chips = self
            .chips
            .iter()
            .enumerate()
            .map(|(i, chip)| ChipSnapshot {
                chip: i,
                cluster_mshrs: chip.clusters.iter().map(Cluster::outstanding).sum(),
                xbar_req: chip.xbar_req.len() + chip.pending_req.len(),
                xbar_rsp: chip.xbar_rsp.len() + chip.pending_rsp.len(),
                slice_service: chip.slices.iter().map(|s| s.service.len()).sum(),
                slice_pending: chip.slices.iter().map(|s| s.pending.waiting()).sum(),
                memory: chip.memory.len(),
                bypass: chip.bypass_to_mem.len(),
                ring_egress: chip.pending_ring.len()
                    + chip.ring_egress.len()
                    + usize::from(chip.ring_retry.is_some()),
                ring_fabric: self.ring.chip_load(chip.id),
            })
            .collect();
        DeadlockSnapshot {
            in_flight: self.in_flight,
            pause: self.pause.label().to_string(),
            chips,
        }
    }
}
