//! Scheduled hardware-fault application and the degraded-bandwidth refresh
//! that keeps SAC's EAB model honest about the surviving machine.

use super::Simulator;
use mcgpu_types::{ChipId, FaultKind};
use sac::eab::ArchBandwidth;

impl Simulator {
    /// Apply every fault event whose cycle has been reached.
    pub(super) fn apply_due_faults(&mut self, now: u64) {
        let mut any = false;
        while let Some(e) = self.fault_plan.pop_due(now) {
            self.apply_fault(e.kind);
            any = true;
        }
        if any {
            self.refresh_sac_arch();
        }
    }

    /// Index of the physical link pair joining fabric-adjacent `a` and `b`
    /// in [`Simulator::link_factor`] (the topology's canonical link list).
    fn pair_index(&self, a: ChipId, b: ChipId) -> usize {
        self.cfg
            .link_index(a, b)
            .expect("fault plans are validated against the topology")
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDegrade { a, b, factor } => {
                self.ring.degrade_link(a, b, factor);
                let p = self.pair_index(a, b);
                self.link_factor[p] = factor;
            }
            FaultKind::LinkFail { a, b } => {
                self.ring.fail_link(a, b);
                let p = self.pair_index(a, b);
                self.link_factor[p] = 0.0;
            }
            FaultKind::DramThrottle { chip, factor } => {
                self.chips[chip.index()].memory.throttle(factor);
                self.dram_factor[chip.index()] = factor;
            }
            FaultKind::DramFail { chip, channel } => {
                self.chips[chip.index()].memory.fail_channel(channel);
            }
            FaultKind::LlcSliceDisable { chip, slice } => {
                self.disable_slice(chip.index(), slice);
            }
        }
    }

    /// Fuse off one LLC slice: write its dirty lines back home, invalidate
    /// everything, and stop it from caching. The slice's service pipe and
    /// MSHRs keep working so queued requests and outstanding fetches drain
    /// normally — they simply miss from now on.
    fn disable_slice(&mut self, c: usize, s: usize) {
        let dirty = self.chips[c].slices[s].cache.flush_all();
        for line in dirty {
            self.writeback_to_home(c, line);
        }
        self.chips[c].slices[s].disabled = true;
    }

    /// Re-derive the effective architectural bandwidths from the surviving
    /// hardware and hand them to the SAC controller, so its EAB decisions
    /// reason about the machine as it now is. A no-op for policies without
    /// a SAC controller.
    fn refresh_sac_arch(&mut self) {
        if self.policy.sac().is_none() {
            return;
        }
        let base = ArchBandwidth::from_config(&self.cfg);
        let n = self.cfg.chips as f64;
        let link_mean = self.link_factor.iter().sum::<f64>() / self.link_factor.len().max(1) as f64;
        let mem_mean = self
            .chips
            .iter()
            .zip(&self.dram_factor)
            .map(|(chip, throttle)| {
                throttle * chip.memory.live_channels() as f64 / chip.memory.num_channels() as f64
            })
            .sum::<f64>()
            / n;
        let llc_mean = self
            .chips
            .iter()
            .map(|chip| {
                chip.slices.iter().filter(|s| !s.disabled).count() as f64 / chip.slices.len() as f64
            })
            .sum::<f64>()
            / n;
        let sac = self
            .policy
            .sac_mut()
            .expect("sac() checked non-empty above");
        sac.update_arch(ArchBandwidth {
            b_intra: base.b_intra,
            b_inter: base.b_inter * link_mean,
            b_llc: base.b_llc * llc_mean,
            b_mem: base.b_mem * mem_mean,
        });
    }
}
