//! The cycle-stepped simulation engine.
//!
//! This module holds the builder ([`SimBuilder`]), the top-level machine
//! state ([`Simulator`]) and the run loop; the mechanics are decomposed
//! into focused submodules:
//!
//! * `tick` — the per-cycle datapath pipeline (issue, crossbars, slices,
//!   memory, ring, controller hooks);
//! * `coherence` — the hardware-coherence sharer directory and write
//!   invalidation;
//! * `boundary` — kernel-boundary flush/writeback/drain sequencing;
//! * `diagnostics` — the forward-progress watchdog, deadlock snapshots and
//!   the request-conservation audit;
//! * `faults` — scheduled hardware-fault application and the degraded-EAB
//!   refresh.
//!
//! Everything that varies *by LLC organization* — routing, fills, way
//! splits, boundary actions, reconfiguration — lives behind
//! [`crate::org::LlcOrgPolicy`]; the engine only applies what the policy
//! decides.

#![deny(missing_docs)]

mod boundary;
mod ckpt;
mod coherence;
mod diagnostics;
mod faults;
mod skip;
mod tick;

pub use ckpt::workload_fingerprint;
pub use diagnostics::{
    ChipConservation, ChipSnapshot, ConservationReport, DeadlockSnapshot, SimError,
};

use crate::chip::Chip;
use crate::cluster::Cluster;
use crate::obs::{ChipSample, MachineSnapshot, ObsReport, Observer};
use crate::org::{self, LlcOrgPolicy, Pause, RouteMode};
use crate::packet::RingPayload;
use crate::stats::{KernelStats, RunStats};
use coherence::SharerDirectory;
use mcgpu_mem::{DramRequest, PageTable};
use mcgpu_noc::FabricNetwork;
use mcgpu_trace::Workload;
use mcgpu_types::{ChipId, ConfigError, FaultPlan, LlcOrgKind, MachineConfig, ObsConfig};
use sac::SacConfig;

/// Builder for a [`Simulator`].
///
/// # Example
/// See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cfg: MachineConfig,
    org: LlcOrgKind,
    sac_cfg: SacConfig,
    max_cycles: u64,
    dynamic_epoch: u64,
    fault_plan: FaultPlan,
    watchdog_window: u64,
    deadline: Option<std::time::Duration>,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    audit_period: u64,
    obs: ObsConfig,
    ckpt_path: Option<std::path::PathBuf>,
    ckpt_interval: u64,
    skip_idle: bool,
}

/// Request-conservation audit cadence in debug builds. Release builds
/// default the audit off (`0`); callers opt in via
/// [`SimBuilder::conservation_audit`].
const AUDIT_PERIOD_DEFAULT: u64 = 4096;

impl SimBuilder {
    /// Start from a machine configuration. The forward-progress watchdog
    /// window defaults to the configuration's `watchdog_cycles` (generous
    /// against every legitimate stall in the model, the longest being a
    /// full SAC drain of a saturated machine, yet far shorter than the
    /// cycle budget).
    pub fn new(cfg: MachineConfig) -> Self {
        let sac_cfg = SacConfig::for_machine(&cfg);
        let watchdog_window = cfg.watchdog_cycles;
        SimBuilder {
            cfg,
            org: LlcOrgKind::MemorySide,
            sac_cfg,
            max_cycles: 50_000_000,
            dynamic_epoch: 8192,
            fault_plan: FaultPlan::none(),
            watchdog_window,
            deadline: None,
            cancel: None,
            audit_period: if cfg!(debug_assertions) {
                AUDIT_PERIOD_DEFAULT
            } else {
                0
            },
            obs: ObsConfig::off(),
            ckpt_path: None,
            ckpt_interval: 0,
            skip_idle: false,
        }
    }

    /// Select the LLC organization to simulate.
    pub fn organization(mut self, org: LlcOrgKind) -> Self {
        self.org = org;
        self
    }

    /// Override the SAC parameters (profiling window, θ).
    pub fn sac_config(mut self, sac_cfg: SacConfig) -> Self {
        self.sac_cfg = sac_cfg;
        self
    }

    /// Override the livelock cycle budget.
    pub fn max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = max;
        self
    }

    /// Override the Dynamic LLC's adjustment epoch.
    pub fn dynamic_epoch(mut self, cycles: u64) -> Self {
        self.dynamic_epoch = cycles;
        self
    }

    /// Inject the given fault schedule during the run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the forward-progress watchdog window: the run aborts with
    /// [`SimError::Deadlock`] when no request retires for this many
    /// consecutive cycles. `u64::MAX` disables the watchdog.
    pub fn watchdog_window(mut self, cycles: u64) -> Self {
        self.watchdog_window = cycles;
        self
    }

    /// Set a wall-clock deadline: the run aborts with [`SimError::Timeout`]
    /// once this much real time has elapsed. The check is abort-only and
    /// runs on a coarse cycle grid, so runs that complete are byte-identical
    /// with and without a deadline.
    pub fn deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Install a cooperative cancellation flag: the run aborts with
    /// [`SimError::Cancelled`] at the next check after the flag is set by
    /// another thread. This is how a long-running caller (the sweep service
    /// daemon) stops budget-expired or aborted cells promptly instead of
    /// letting them run to completion. The flag is abort-only and polled on
    /// the same coarse cycle grid as the wall-clock deadline, so runs that
    /// complete are byte-identical with and without a flag installed.
    pub fn cancel_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Run the request-conservation audit every `period` cycles (`0`
    /// disables it). Defaults to every 4096 cycles in debug builds and off
    /// in release builds. The audit is read-only, so enabling it never
    /// changes simulation results — only whether corruption is detected.
    pub fn conservation_audit(mut self, period: u64) -> Self {
        self.audit_period = period;
        self
    }

    /// Write a `mcgpu-ckpt-v1` engine snapshot to `path` roughly every
    /// `interval` cycles (`0` disables checkpointing, the default). Writes
    /// land on the engine's coarse 65,536-cycle deadline-check grid, so the
    /// effective period is `interval` rounded up to that grid. Snapshot
    /// writing is strictly read-only with respect to simulation state:
    /// runs with checkpointing enabled are byte-identical to runs without.
    /// Each write replaces the previous snapshot atomically
    /// (write-tmp → fsync → rename), so a crash mid-write leaves the prior
    /// snapshot readable.
    pub fn checkpoint_to(mut self, path: impl Into<std::path::PathBuf>, interval: u64) -> Self {
        self.ckpt_path = Some(path.into());
        self.ckpt_interval = interval;
        self
    }

    /// Enable event-driven idle-cycle skipping (off by default). When the
    /// machine is completely quiescent — no request in flight, every queue
    /// empty, every bandwidth credit saturated — the engine jumps the
    /// clock to the next cycle at which any component can act instead of
    /// stepping through provably idle ticks. The skip is semantics-free by
    /// contract: runs with skipping enabled are byte-identical to stepped
    /// runs (same [`RunStats`], same observability report, same checkpoint
    /// bytes at the same cut points, and the same error at the same cycle
    /// for deadlocked or over-budget runs). See the `skip` module docs for
    /// the per-component next-event contract.
    pub fn skip_idle(mut self, enabled: bool) -> Self {
        self.skip_idle = enabled;
        self
    }

    /// Select how much observability data the run records (histograms,
    /// epoch timeline, event trace). Defaults to [`mcgpu_types::ObsLevel::Off`].
    /// The observability layer is strictly read-only: any level produces
    /// byte-identical [`RunStats`] to an unobserved run. Retrieve the
    /// recorded data with [`Simulator::take_obs_report`] after the run.
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Build the simulator.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] when the machine configuration fails
    /// validation, the fault plan does not fit the machine, or the selected
    /// organization cannot run on it (e.g. a way-partitioned organization
    /// on a direct-mapped LLC).
    pub fn build(self) -> Result<Simulator, ConfigError> {
        self.cfg.validate()?;
        self.fault_plan.validate(&self.cfg)?;
        self.obs.validate()?;
        if self.watchdog_window == 0 {
            return Err(ConfigError::new(
                "watchdog window must be positive (use u64::MAX to disable)",
            ));
        }
        let policy = org::build_policy(self.org, &self.cfg, self.sac_cfg, self.dynamic_epoch)?;
        Ok(Simulator::new(self, policy))
    }
}

/// The multi-chip GPU simulator. Construct with [`SimBuilder`].
#[derive(Debug)]
pub struct Simulator {
    cfg: MachineConfig,
    /// The LLC-organization policy: every routing/fill/partition/boundary
    /// decision, plus the organization's internal controller state.
    policy: Box<dyn LlcOrgPolicy>,
    chips: Vec<Chip>,
    ring: FabricNetwork<RingPayload>,
    page_table: PageTable,
    cycle: u64,
    max_cycles: u64,
    next_id: u64,
    in_flight: u64,
    max_in_flight: u64,
    pause: Pause,

    /// Chip-granularity sharer directory for hardware coherence.
    directory: SharerDirectory,

    // --- resilience ---
    /// Scheduled hardware degradation, applied as the clock passes each
    /// event's cycle.
    fault_plan: FaultPlan,
    /// Forward-progress watchdog window (`u64::MAX` = disabled).
    watchdog_window: u64,
    /// Progress signature at the last cycle that made progress.
    watchdog_sig: u64,
    /// Last cycle at which the progress signature changed.
    watchdog_cycle: u64,
    /// Remaining bandwidth fraction per inter-chip link pair (`0.0` =
    /// failed), for the degraded-EAB feed to SAC.
    link_factor: Vec<f64>,
    /// Remaining DRAM bandwidth fraction per chip (throttle only; channel
    /// failures are read off the partitions directly).
    dram_factor: Vec<f64>,
    /// Wall-clock budget for one run (`None` = unlimited).
    deadline: Option<std::time::Duration>,
    /// Cooperative cancellation flag shared with the caller (`None` =
    /// never cancelled). Polled on the deadline's coarse cycle grid.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// When the current run started (set by `run_observed`; only read when
    /// a deadline is configured).
    deadline_start: Option<std::time::Instant>,
    /// Request-conservation audit cadence in cycles (`0` = disabled).
    audit_period: u64,

    // --- idle-cycle skipping ---
    /// Event-driven idle-cycle skipping enabled (off by default).
    skip_idle: bool,
    /// Number of idle jumps performed (diagnostic only; never serialized
    /// into stats, observability reports, or checkpoints).
    skip_jumps: u64,
    /// Total cycles elided by idle jumps (diagnostic only).
    skipped_cycles: u64,

    // --- checkpointing ---
    /// Where periodic snapshots are written (`None` = checkpointing off).
    ckpt_path: Option<std::path::PathBuf>,
    /// Requested snapshot period in cycles (`0` = off); writes land on the
    /// coarse deadline-check grid.
    ckpt_interval: u64,
    /// Cycle of the last snapshot written (or the restore point).
    last_ckpt_cycle: u64,
    /// Cached workload fingerprint for periodic snapshot stamping
    /// (computed once per run when checkpointing is enabled).
    wl_fingerprint: Option<u64>,
    /// Index of the kernel currently executing (a resume cursor).
    kernel_index: usize,
    /// Cycle the current kernel started at.
    kernel_start_cycle: u64,
    /// Completed work count when the current kernel started.
    work_before: u64,
    /// Set by [`Simulator::restore`]: the next `run` continues kernel
    /// `resume_kernel` mid-stream instead of starting from kernel 0.
    resume_kernel: Option<usize>,

    // --- observability ---
    /// Read-only run observer (`None` when observability is off, which is
    /// the default; every hook below is then a single branch). Boxed so the
    /// hot `Simulator` layout does not carry the recorder buffers inline.
    obs: Option<Box<Observer>>,

    // --- accumulators ---
    writes_done: u64,
    responses_by_origin: [u64; 4],
    overhead_cycles: u64,
    occ_samples: u64,
    occ_local: f64,
    occ_fill: f64,
    kernels: Vec<KernelStats>,

    // --- per-cycle scratch buffers (reused, never reallocated in steady
    // state) ---
    /// Ring arrivals being dispatched this cycle.
    ring_scratch: Vec<RingPayload>,
    /// DRAM completions being processed this cycle.
    dram_scratch: Vec<DramRequest>,
}

impl Simulator {
    fn new(b: SimBuilder, policy: Box<dyn LlcOrgPolicy>) -> Self {
        let SimBuilder {
            cfg,
            org: _,
            sac_cfg: _,
            max_cycles,
            dynamic_epoch: _,
            fault_plan,
            watchdog_window,
            deadline,
            cancel,
            audit_period,
            obs,
            ckpt_path,
            ckpt_interval,
            skip_idle,
        } = b;
        let obs = obs
            .level
            .enabled()
            .then(|| Box::new(Observer::new(obs, cfg.chips)));
        let chips: Vec<Chip> = ChipId::all(cfg.chips).map(|c| Chip::new(&cfg, c)).collect();
        let ring = FabricNetwork::new(&cfg, 32);

        let mut sim = Simulator {
            page_table: PageTable::new(cfg.page_size),
            chips,
            ring,
            cycle: 0,
            max_cycles,
            next_id: 0,
            in_flight: 0,
            max_in_flight: 0,
            pause: Pause::Running,
            policy,
            directory: SharerDirectory::default(),
            fault_plan,
            watchdog_window,
            watchdog_sig: 0,
            watchdog_cycle: 0,
            link_factor: vec![1.0; cfg.num_links()],
            dram_factor: vec![1.0; cfg.chips],
            deadline,
            deadline_start: None,
            cancel,
            audit_period,
            skip_idle,
            skip_jumps: 0,
            skipped_cycles: 0,
            ckpt_path,
            ckpt_interval,
            last_ckpt_cycle: 0,
            wl_fingerprint: None,
            kernel_index: 0,
            kernel_start_cycle: 0,
            work_before: 0,
            resume_kernel: None,
            obs,
            writes_done: 0,
            responses_by_origin: [0; 4],
            overhead_cycles: 0,
            occ_samples: 0,
            occ_local: 0.0,
            occ_fill: 0.0,
            kernels: Vec::new(),
            ring_scratch: Vec::new(),
            dram_scratch: Vec::new(),
            cfg,
        };
        sim.apply_partitioning();
        sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The simulated LLC organization.
    pub fn organization(&self) -> LlcOrgKind {
        self.policy.kind()
    }

    /// Number of idle jumps the engine performed (0 unless
    /// [`SimBuilder::skip_idle`] enabled skipping). Diagnostic only: skip
    /// accounting never appears in [`RunStats`], observability reports, or
    /// checkpoints, which stay byte-identical to stepped runs.
    pub fn skip_jumps(&self) -> u64 {
        self.skip_jumps
    }

    /// Total cycles elided by idle jumps (0 unless skipping is enabled).
    /// Diagnostic only, like [`Simulator::skip_jumps`].
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Apply (or clear) the policy's way split on every LLC slice.
    fn apply_partitioning(&mut self) {
        let split = self.policy.way_split();
        for chip in &mut self.chips {
            for slice in &mut chip.slices {
                match split {
                    Some(ways) => slice.cache.set_partition(ways),
                    None => slice.cache.clear_partition(),
                }
            }
        }
    }

    /// The policy's current request routing mode.
    fn route_mode(&self) -> RouteMode {
        self.policy.route_mode()
    }

    // ------------------------------------------------------------------
    // Main loop.
    // ------------------------------------------------------------------

    /// Run a complete workload, returning its statistics.
    ///
    /// # Errors
    /// [`SimError::CycleLimit`] if the run exceeds the cycle budget.
    pub fn run(&mut self, wl: &Workload) -> Result<RunStats, SimError> {
        self.run_observed(wl, u64::MAX, |_, _, _| {})
    }

    /// Like [`run`](Simulator::run), but invokes `observer(cycle,
    /// completed_accesses, active_clusters)` every `every` cycles — the
    /// instantaneous throughput timeline behind Fig. 12's time-varying
    /// analysis.
    ///
    /// # Errors
    /// [`SimError::CycleLimit`] if the run exceeds the cycle budget.
    pub fn run_observed(
        &mut self,
        wl: &Workload,
        every: u64,
        mut observer: impl FnMut(u64, u64, usize),
    ) -> Result<RunStats, SimError> {
        if self.deadline.is_some() {
            self.deadline_start = Some(std::time::Instant::now());
        }
        if self.ckpt_interval != 0 && self.wl_fingerprint.is_none() {
            self.wl_fingerprint = Some(workload_fingerprint(wl));
        }
        // A restore armed the resume cursor: skip everything the snapshot
        // already contains (page seeding, completed kernels, the
        // in-progress kernel's stream loading and `begin_kernel`).
        let resume_at = self.resume_kernel.take();
        if resume_at.is_none() {
            // Pre-seed page placement from the workload layout (host-to-device
            // transfers touch the data before kernel 0). This keeps placement
            // identical across LLC organizations; pages outside the layout (none
            // in generated workloads) still fall back to first-touch.
            for p in 0..wl.layout.total_pages() {
                let page = mcgpu_types::PageAddr(p);
                if let Some(home) = wl.layout.natural_home(page) {
                    self.page_table.home_of(page, home);
                }
            }
        }
        for (ki, kernel) in wl.kernels.iter().enumerate() {
            if resume_at.is_some_and(|r| ki < r) {
                continue;
            }
            if resume_at != Some(ki) {
                // Load the kernel's streams.
                let gap = kernel.behavior.compute_gap;
                for (flat, chip) in self.chips.iter_mut().enumerate() {
                    for (ci, cluster) in chip.clusters.iter_mut().enumerate() {
                        let idx = flat * self.cfg.clusters_per_chip + ci;
                        cluster.load_kernel(kernel.per_cluster[idx].clone(), gap);
                    }
                }
                self.kernel_index = ki;
                self.kernel_start_cycle = self.cycle;
                self.work_before = self.cluster_reads_total() + self.writes_done;

                let (now, ring_bytes, mem_bytes) =
                    (self.cycle, self.ring.bytes_sent(), self.mem_bytes_total());
                self.policy.begin_kernel(now, ring_bytes, mem_bytes);
            }
            let kernel_start_cycle = self.kernel_start_cycle;
            let work_before = self.work_before;

            // Execute until the kernel completes.
            while !self.kernel_done() {
                if self.skip_idle {
                    self.skip_quiescent_cycles(every);
                }
                self.tick(true);
                self.check_progress()?;
                self.maybe_checkpoint()?;
                if every != u64::MAX && self.cycle.is_multiple_of(every) {
                    observer(
                        self.cycle,
                        self.cluster_reads_total() + self.writes_done,
                        self.active_clusters(),
                    );
                }
                if self.cycle >= self.max_cycles {
                    return Err(SimError::CycleLimit {
                        limit: self.max_cycles,
                    });
                }
            }

            // Kernel-boundary coherence + SAC revert (§3.6).
            let boundary_start = self.cycle;
            self.kernel_boundary()?;
            self.overhead_cycles += self.cycle - boundary_start;

            let sac_mode = self.policy.sac().and_then(|s| {
                s.history()
                    .iter()
                    .rev()
                    .find(|r| r.start_cycle >= kernel_start_cycle)
                    .map(|r| r.mode)
            });
            let accesses = self.cluster_reads_total() + self.writes_done - work_before;
            self.kernels.push(KernelStats {
                index: ki,
                cycles: self.cycle - kernel_start_cycle,
                accesses,
                sac_mode,
            });
            let end = self.cycle;
            if let Some(o) = self.obs.as_deref_mut() {
                o.note_kernel(ki, kernel_start_cycle, end, accesses);
            }
        }
        Ok(self.collect_stats())
    }

    fn kernel_done(&self) -> bool {
        self.in_flight == 0
            && self.pause == Pause::Running
            && self
                .chips
                .iter()
                .all(|c| c.clusters.iter().all(Cluster::done))
    }

    fn machine_quiescent(&self) -> bool {
        self.in_flight == 0 && self.ring.is_empty() && self.chips.iter().all(Chip::is_quiescent)
    }

    /// Number of clusters still executing their current kernel stream.
    pub fn active_clusters(&self) -> usize {
        self.chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .filter(|cl| !cl.done())
            .count()
    }

    /// Reads completed, summed over every cluster (includes L1 hits and
    /// MSHR-merged accesses, which never produce a network response).
    fn cluster_reads_total(&self) -> u64 {
        self.chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .map(Cluster::reads_done)
            .sum()
    }

    fn mem_bytes_total(&self) -> u64 {
        self.chips
            .iter()
            .map(|c| {
                c.memory.served_reads() * self.cfg.line_size
                    + c.memory.served_writes() * mcgpu_types::packet::WRITE_PAYLOAD_BYTES
            })
            .sum()
    }

    /// Capture the machine's cumulative counters and instantaneous state
    /// for the observability timeline. Read-only; called on the epoch grid
    /// and once at run end.
    fn machine_snapshot(&self) -> MachineSnapshot {
        let mut l1 = mcgpu_cache::CacheStats::default();
        let mut llc = mcgpu_cache::CacheStats::default();
        for chip in &self.chips {
            l1.merge(&chip.l1_stats());
            llc.merge(&chip.llc_stats());
        }
        let sac = self.policy.sac();
        let (crd_occupied, crd_capacity) = sac
            .map(|s| s.collector().crd_occupancy())
            .unwrap_or_default();
        let chips = self
            .chips
            .iter()
            .enumerate()
            .map(|(c, chip)| {
                let cl = chip.llc_stats();
                ChipSample {
                    dram_served: chip.memory.accepted_bytes(),
                    queue: (chip.memory.pending_requests()
                        + chip
                            .slices
                            .iter()
                            .map(|s| s.service.len() + s.pending.waiting())
                            .sum::<usize>()) as u64,
                    llc_accesses: cl.accesses,
                    llc_hits: cl.hits,
                    ring_sent_bytes: self.ring.bytes_sent_from(ChipId(c as u8)),
                }
            })
            .collect();
        MachineSnapshot {
            cycle: self.cycle,
            reads: self.cluster_reads_total(),
            writes: self.writes_done,
            in_flight: self.in_flight,
            active_clusters: self.active_clusters() as u64,
            ring_bytes: self.ring.bytes_sent(),
            ring_delivered: self.ring.delivered(),
            noc_bytes: self
                .chips
                .iter()
                .map(|c| c.xbar_req.injected_bytes() + c.xbar_rsp.injected_bytes())
                .sum(),
            noc_rejected: self
                .chips
                .iter()
                .map(|c| c.xbar_req.rejected() + c.xbar_rsp.rejected())
                .sum(),
            dram_bytes: self.chips.iter().map(|c| c.memory.accepted_bytes()).sum(),
            dram_reads: self.chips.iter().map(|c| c.memory.served_reads()).sum(),
            dram_writes: self.chips.iter().map(|c| c.memory.served_writes()).sum(),
            dram_queue: self
                .chips
                .iter()
                .map(|c| c.memory.pending_requests() as u64)
                .sum(),
            slice_queue: self
                .chips
                .iter()
                .flat_map(|c| c.slices.iter())
                .map(|s| (s.service.len() + s.pending.waiting()) as u64)
                .sum(),
            llc_accesses: llc.accesses,
            llc_hits: llc.hits,
            l1_accesses: l1.accesses,
            l1_hits: l1.hits,
            route_mode: self.route_mode().label(),
            pause: self.pause.label(),
            controller: self.policy.controller_state_label().unwrap_or("-"),
            sac_decisions: sac.map(|s| s.history().len() as u64).unwrap_or(0),
            sac_window_requests: sac.map(|s| s.collector().total_requests()).unwrap_or(0),
            crd_occupied,
            crd_capacity,
            chips,
        }
    }

    /// Consume the run's observability data (histograms, timeline, trace)
    /// into an [`ObsReport`]. Returns `None` when observability was off, or
    /// when the report was already taken. Call after [`Simulator::run`].
    pub fn take_obs_report(&mut self) -> Option<ObsReport> {
        self.obs.as_ref()?;
        let snap = self.machine_snapshot();
        let history: Vec<sac::controller::KernelRecord> = self
            .policy
            .sac()
            .map(|s| s.history().to_vec())
            .unwrap_or_default();
        let org = self.policy.kind().label();
        self.obs
            .take()
            .map(|o| o.finalize(org, self.cycle, &snap, &history))
    }

    fn sample_occupancy(&mut self) {
        let mut local = 0usize;
        let mut remote = 0usize;
        let mut cap = 0usize;
        for chip in &self.chips {
            let (l, r, c) = chip.llc_occupancy();
            local += l;
            remote += r;
            cap += c;
        }
        let valid = local + remote;
        if valid > 0 {
            self.occ_local += local as f64 / valid as f64;
            self.occ_fill += valid as f64 / cap.max(1) as f64;
            self.occ_samples += 1;
        }
    }

    fn collect_stats(&self) -> RunStats {
        let mut l1 = mcgpu_cache::CacheStats::default();
        let mut llc = mcgpu_cache::CacheStats::default();
        for chip in &self.chips {
            l1.merge(&chip.l1_stats());
            llc.merge(&chip.llc_stats());
        }
        RunStats {
            organization: self.policy.kind(),
            cycles: self.cycle,
            reads: self.cluster_reads_total(),
            writes: self.writes_done,
            l1,
            llc,
            responses_by_origin: self.responses_by_origin,
            llc_local_fraction: if self.occ_samples > 0 {
                self.occ_local / self.occ_samples as f64
            } else {
                1.0
            },
            llc_occupancy: if self.occ_samples > 0 {
                self.occ_fill / self.occ_samples as f64
            } else {
                0.0
            },
            ring_bytes: self.ring.bytes_sent(),
            dram_reads: self.chips.iter().map(|c| c.memory.served_reads()).sum(),
            dram_writes: self.chips.iter().map(|c| c.memory.served_writes()).sum(),
            overhead_cycles: self.overhead_cycles,
            max_in_flight: self.max_in_flight,
            kernels: self.kernels.clone(),
            sac_history: self
                .policy
                .sac()
                .map(|s| s.history().to_vec())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcgpu_trace::{generate, profiles, TraceParams};
    use mcgpu_types::CoherenceKind;

    fn cfg() -> MachineConfig {
        MachineConfig::experiment_baseline()
    }

    fn run(org: LlcOrgKind, bench: &str) -> RunStats {
        let c = cfg();
        let wl = generate(
            &c,
            &profiles::by_name(bench).unwrap(),
            &TraceParams::quick(),
        );
        SimBuilder::new(c)
            .organization(org)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap()
    }

    #[test]
    fn all_organizations_complete_the_same_work() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let mut totals = Vec::new();
        for org in LlcOrgKind::ALL {
            let stats = SimBuilder::new(c.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            assert!(stats.cycles > 0, "{org}");
            totals.push((org, stats.reads + stats.writes));
        }
        let first = totals[0].1;
        for (org, t) in totals {
            assert_eq!(t, first, "work mismatch for {org}");
        }
    }

    #[test]
    fn responses_match_reads_minus_l1_hits_and_merges() {
        let s = run(LlcOrgKind::MemorySide, "SN");
        let delivered: u64 = s.responses_by_origin.iter().sum();
        // Every delivered response completes >= 1 read; reads completed also
        // include L1 hits, so delivered <= reads.
        assert!(delivered > 0);
        assert!(
            delivered <= s.reads,
            "delivered {delivered} > reads {}",
            s.reads
        );
    }

    #[test]
    fn memory_side_caches_only_local_data() {
        let s = run(LlcOrgKind::MemorySide, "CFD");
        assert!(
            s.llc_local_fraction > 0.999,
            "memory-side local fraction {}",
            s.llc_local_fraction
        );
    }

    #[test]
    fn sm_side_caches_remote_data_for_sharing_workloads() {
        let s = run(LlcOrgKind::SmSide, "CFD");
        assert!(
            s.llc_local_fraction < 0.9,
            "SM-side should hold remote data, local fraction {}",
            s.llc_local_fraction
        );
    }

    #[test]
    fn sac_records_a_decision_per_kernel() {
        let s = run(LlcOrgKind::Sac, "SN");
        assert_eq!(
            s.sac_history.len(),
            profiles::by_name("SN").unwrap().total_kernels()
        );
        assert!(s.kernels.iter().all(|k| k.sac_mode.is_some()));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let err = SimBuilder::new(c)
            .organization(LlcOrgKind::MemorySide)
            .max_cycles(100)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 100 });
    }

    #[test]
    fn conservation_audit_passes_on_every_organization() {
        let c = cfg();
        let wl = generate(
            &c,
            &profiles::by_name("CFD").unwrap(),
            &TraceParams::quick(),
        );
        for org in LlcOrgKind::ALL {
            let stats = SimBuilder::new(c.clone())
                .organization(org)
                .conservation_audit(512)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap_or_else(|e| panic!("{org}: {e}"));
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn conservation_audit_detects_a_lost_request() {
        let mut sim = SimBuilder::new(cfg())
            .build()
            .expect("valid machine configuration");
        // An idle machine with a nonzero in-flight count is exactly the
        // "request lost" corruption the audit exists to catch.
        sim.in_flight = 3;
        let err = sim.audit_conservation().unwrap_err();
        match err {
            SimError::InvariantViolation { report, .. } => {
                assert_eq!(report.in_flight, 3);
                assert_eq!(report.accounted, 0);
            }
            other => panic!("expected InvariantViolation, got {other}"),
        }
    }

    #[test]
    fn wall_clock_deadline_aborts_with_timeout() {
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let err = SimBuilder::new(c)
            .deadline(std::time::Duration::ZERO)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "got {err}");
    }

    #[test]
    fn pre_set_cancel_flag_aborts_with_cancelled() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let flag = Arc::new(AtomicBool::new(true));
        let err = SimBuilder::new(c)
            .cancel_flag(Arc::clone(&flag))
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "got {err}");
    }

    #[test]
    fn unset_cancel_flag_leaves_results_byte_identical() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let c = cfg();
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let plain = SimBuilder::new(c.clone())
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        let flagged = SimBuilder::new(c)
            .cancel_flag(Arc::new(AtomicBool::new(false)))
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert_eq!(plain.to_canonical_json(), flagged.to_canonical_json());
    }

    #[test]
    fn watchdog_window_defaults_from_config() {
        let mut c = cfg();
        c.watchdog_cycles = 1234;
        let sim = SimBuilder::new(c)
            .build()
            .expect("valid machine configuration");
        assert_eq!(sim.watchdog_window, 1234);
    }

    #[test]
    fn hardware_coherence_runs_clean() {
        let mut c = cfg();
        c.coherence = CoherenceKind::Hardware;
        let wl = generate(&c, &profiles::by_name("RN").unwrap(), &TraceParams::quick());
        let s = SimBuilder::new(c)
            .organization(LlcOrgKind::SmSide)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert!(s.cycles > 0);
    }

    #[test]
    fn sectored_machine_runs_clean() {
        let mut c = cfg();
        c.sectored = true;
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        for org in [LlcOrgKind::MemorySide, LlcOrgKind::Sac] {
            let s = SimBuilder::new(c.clone())
                .organization(org)
                .build()
                .expect("valid machine configuration")
                .run(&wl)
                .unwrap();
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn two_chip_machine_runs_clean() {
        let mut c = cfg();
        c.chips = 2;
        let wl = generate(&c, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
        let s = SimBuilder::new(c)
            .organization(LlcOrgKind::Sac)
            .build()
            .expect("valid machine configuration")
            .run(&wl)
            .unwrap();
        assert!(s.cycles > 0);
    }
}
