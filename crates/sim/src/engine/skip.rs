//! Event-driven idle-cycle skipping (tier one of the two-tier engine).
//!
//! When the machine is completely quiescent — no request in flight, every
//! queue and pipe empty, every bandwidth credit saturated at its cap — a
//! stepped tick is a pure clock increment: nothing moves, nothing is
//! sampled off-grid, and the only state that evolves is each cluster's
//! compute-gap countdown. This module detects that condition, asks every
//! component for the next cycle at which it could act, and jumps the clock
//! to one cycle before the minimum so the next real [`tick`] executes the
//! event at exactly the cycle the stepped loop would have.
//!
//! The contract is *byte identity*: with skipping enabled, a run must
//! produce the same [`RunStats`](crate::stats::RunStats), the same
//! observability report, and the same checkpoint bytes at the same cut
//! points as the stepped loop. The scan therefore stops at every cycle
//! where the stepped loop does anything at all, however small:
//!
//! * **Clusters** — an eligible cluster (within the CTA wave-lead bound)
//!   issues when its gap countdown expires, or immediately when it holds a
//!   deferred access; done clusters still drain their gap counter, which is
//!   checkpointed state, so the jump replays the decrements in bulk.
//! * **Fault plan** — the next scheduled hardware fault.
//! * **Policy** — [`LlcOrgPolicy::next_policy_event`] bounds when the
//!   organization's `on_cycle` hook can next act (SAC profiling deadlines,
//!   divergence-monitor expiry, Dynamic epoch boundaries).
//! * **Sampling grids** — LLC occupancy every [`OCC_SAMPLE_PERIOD`]
//!   cycles, the observability epoch window, and the caller's throughput
//!   observer cadence. Occupancy sampling accumulates `f64` state even
//!   when idle, so the real tick must run at each grid point.
//! * **Guard grids** — the coarse deadline/cancel/checkpoint grid
//!   ([`DEADLINE_CHECK_PERIOD`]) and the conservation-audit period.
//! * **Watchdog** — the forward-progress deadline. The stepped loop checks
//!   the watchdog every cycle; folding `watchdog_cycle + watchdog_window`
//!   into the scan means a quiescent-but-wedged machine still reports
//!   [`SimError::Deadlock`](super::SimError::Deadlock) at exactly the same
//!   cycle, so skipping can never mask a deadlock.
//! * **Cycle budget** — `max_cycles`, so `CycleLimit` fires identically.
//!
//! If the minimum event is `now + 1` the scan is a no-op and the stepped
//! loop proceeds; skipping only ever removes ticks that provably do
//! nothing.
//!
//! [`tick`]: Simulator::tick
//! [`LlcOrgPolicy::next_policy_event`]: crate::org::LlcOrgPolicy::next_policy_event

use super::diagnostics::DEADLINE_CHECK_PERIOD;
use super::tick::{CTA_WAVE_LEAD, OCC_SAMPLE_PERIOD};
use super::Simulator;
use crate::chip::Chip;
use crate::cluster::Cluster;
use crate::org::Pause;

/// Smallest cycle strictly greater than `now` congruent to `phase`
/// modulo `period`. Returns `u64::MAX` for a zero period (no such grid).
fn next_on_grid(now: u64, period: u64, phase: u64) -> u64 {
    if period == 0 {
        return u64::MAX;
    }
    let r = now % period;
    let delta = (phase + period - r - 1) % period + 1;
    now.saturating_add(delta)
}

impl Simulator {
    /// Attempt one idle jump: if the machine is quiescent and every
    /// component's next event is more than one cycle away, advance the
    /// clock to one cycle before the earliest event and replay the
    /// cluster gap countdowns in bulk. Called from the main run loop
    /// before each tick when idle skipping is enabled; `every` is the
    /// caller's throughput-observer cadence (`u64::MAX` = none).
    pub(super) fn skip_quiescent_cycles(&mut self, every: u64) {
        // Cheap gate first, then the full no-op proof: every queue empty
        // and every bandwidth credit bitwise saturated, so the skipped
        // refills would not have changed checkpointed state.
        if self.in_flight != 0 || self.pause != Pause::Running {
            return;
        }
        if !self.ring.is_empty()
            || !self.ring.tick_is_noop()
            || !self.chips.iter().all(Chip::tick_is_noop)
        {
            return;
        }

        let now = self.cycle;
        let mut event = u64::MAX;

        // Clusters. Mirror `issue_phase` exactly: the wave-lead filter is
        // computed against the slowest unfinished cluster, and `issue()`
        // (which decrements the gap counter even on finished clusters) is
        // only reached by clusters inside the lead bound. During a
        // quiescent window no cluster's progress changes, so eligibility
        // is frozen for the whole jump.
        let Some(min_progress) = self
            .chips
            .iter()
            .flat_map(|ch| ch.clusters.iter())
            .filter(|cl| !cl.done())
            .map(Cluster::progress)
            .min()
        else {
            // Every cluster done with nothing in flight: the loop's
            // `kernel_done` check ends the kernel, nothing to skip.
            return;
        };
        let lead_cap = min_progress + CTA_WAVE_LEAD;
        for cl in self.chips.iter().flat_map(|ch| ch.clusters.iter()) {
            if cl.progress() > lead_cap {
                continue;
            }
            if cl.has_deferred() {
                // A deferred access re-issues on the very next tick.
                return;
            }
            if !cl.done() {
                event = event.min(now + u64::from(cl.gap_remaining()) + 1);
            }
        }

        // Scheduled hardware faults.
        if let Some(due) = self.fault_plan.next_due() {
            event = event.min(due.max(now + 1));
        }

        // The organization's next possible action.
        event = event.min(self.policy.next_policy_event(now).max(now + 1));

        // Sampling grids: occupancy, observability epochs, the caller's
        // throughput observer.
        event = event.min(next_on_grid(now, OCC_SAMPLE_PERIOD, 0));
        if let Some(o) = self.obs.as_deref() {
            event = event.min(next_on_grid(now, o.epoch_window(), 0));
        }
        if every != u64::MAX {
            event = event.min(next_on_grid(now, every, 0));
        }

        // Guard grids: cancellation/deadline polls and checkpoint writes
        // share the coarse grid; the conservation audit has its own.
        if self.cancel.is_some() || self.deadline.is_some() || self.ckpt_interval != 0 {
            event = event.min(next_on_grid(now, DEADLINE_CHECK_PERIOD, 1));
        }
        if self.audit_period != 0 {
            event = event.min(next_on_grid(now, self.audit_period, 0));
        }

        // The forward-progress watchdog: the stepped loop would abort with
        // `Deadlock` once `cycle - watchdog_cycle >= watchdog_window`, so
        // the jump may not pass the deadline cycle. Progress is frozen
        // while quiescent, so clamping here makes the deadlock fire at the
        // identical cycle with skipping on.
        if self.watchdog_window != u64::MAX {
            let deadline = self.watchdog_cycle.saturating_add(self.watchdog_window);
            event = event.min(deadline.max(now + 1));
        }

        // The cycle budget: `CycleLimit` must trigger at the same cycle.
        event = event.min(self.max_cycles.max(now + 1));

        if event <= now + 1 {
            return;
        }
        let jumped = event - 1 - now;
        self.cycle = event - 1;
        // Replay the per-tick gap decrements the skipped `issue_phase`
        // calls would have performed. Saturating matches the stepped loop:
        // a finished cluster's counter floors at zero and stays there.
        for chip in &mut self.chips {
            for cl in &mut chip.clusters {
                if cl.progress() <= lead_cap {
                    cl.skip_gap(jumped);
                }
            }
        }
        self.skip_jumps += 1;
        self.skipped_cycles += jumped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_arithmetic() {
        // Next multiple of 256 strictly after `now`.
        assert_eq!(next_on_grid(0, 256, 0), 256);
        assert_eq!(next_on_grid(255, 256, 0), 256);
        assert_eq!(next_on_grid(256, 256, 0), 512);
        // Next cycle == 1 (mod 65_536) strictly after `now`.
        assert_eq!(next_on_grid(0, 65_536, 1), 1);
        assert_eq!(next_on_grid(1, 65_536, 1), 65_537);
        assert_eq!(next_on_grid(2, 65_536, 1), 65_537);
        assert_eq!(next_on_grid(65_536, 65_536, 1), 65_537);
        // Degenerate period.
        assert_eq!(next_on_grid(7, 0, 0), u64::MAX);
    }
}
