//! The per-cycle datapath pipeline: issue, request crossbars, LLC slices,
//! the memory bypass, DRAM partitions, response delivery, the inter-chip
//! ring, and the per-cycle policy hook.

use super::Simulator;
use crate::chip::Chip;
use crate::cluster::Cluster;
use crate::org::{EpochCtx, Pause, RouteMode};
use crate::packet::{FillAction, ReqEnvelope, ReqStage, RingPayload, RspEnvelope};
use mcgpu_cache::{DataHome, LookupOutcome};
use mcgpu_mem::{interleave, DramRequest};
use mcgpu_types::{
    AccessKind, ChipId, LineAddr, MemAccess, Request, RequestId, Response, ResponseOrigin,
};

/// Ring egress queue bound (requests waiting to leave the chip).
const PENDING_RING_LIMIT: usize = 64;
/// Maximum instructions a cluster may run ahead of the slowest cluster
/// (one CTA wave of the distributed CTA scheduler).
pub(super) const CTA_WAVE_LEAD: usize = 384;
/// LLC occupancy sampling period in cycles (Fig. 9).
pub(super) const OCC_SAMPLE_PERIOD: u64 = 256;

impl Simulator {
    #[inline]
    fn slice_of(&self, line: LineAddr) -> usize {
        interleave::slice_index(line, self.cfg.slices_per_chip)
    }

    fn sector_of(&self, access: &MemAccess) -> Option<mcgpu_types::SectorId> {
        self.cfg.sectored.then(|| {
            LineAddr::sector_of(access.addr, self.cfg.line_size, self.cfg.sectors_per_line)
        })
    }

    pub(super) fn tick(&mut self, allow_issue: bool) {
        self.cycle += 1;
        let now = self.cycle;
        self.apply_due_faults(now);
        let issuing = allow_issue && self.pause == Pause::Running;

        if issuing {
            self.issue_phase();
        }

        // Request network.
        for c in 0..self.chips.len() {
            // Ring-delivered requests re-enter the crossbar.
            while let Some(env) = self.chips[c].pending_req.front().copied() {
                let port = self.slice_of(env.req.access.addr.line(self.cfg.line_size));
                let bytes = env.wire_bytes();
                if self.chips[c].xbar_req.try_push(port, env, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_req.pop_front();
            }
            self.chips[c].xbar_req.tick(now);
            for port in 0..self.cfg.slices_per_chip {
                loop {
                    if !self.chips[c].slices[port].service.can_push() {
                        break;
                    }
                    match self.chips[c].xbar_req.pop_ready(port, now) {
                        Some(env) => {
                            let charge = self.chips[c].slices[port].charge_bytes(&env);
                            self.chips[c].slices[port]
                                .service
                                .try_push(env, charge)
                                .expect("can_push checked");
                        }
                        None => break,
                    }
                }
            }
        }

        // LLC slices.
        for c in 0..self.chips.len() {
            for s in 0..self.cfg.slices_per_chip {
                self.chips[c].slices[s].service.tick(now);
                while let Some(env) = self.chips[c].slices[s].service.pop_ready(now) {
                    self.process_at_slice(c, s, env);
                }
            }
        }

        // Bypass path into memory (SM-side remote misses).
        for c in 0..self.chips.len() {
            self.chips[c].bypass_to_mem.tick(now);
            while let Some(env) = self.chips[c].bypass_to_mem.pop_ready(now) {
                self.chips[c].memory.push(DramRequest {
                    request: env.req,
                    from_local_slice: false,
                    slice: None,
                });
            }
        }

        // Memory partitions.
        for c in 0..self.chips.len() {
            self.chips[c].memory.tick(now);
            let mut done = std::mem::take(&mut self.dram_scratch);
            self.chips[c].memory.pop_ready_into(now, &mut done);
            for d in done.drain(..) {
                self.process_mem_completion(c, d);
            }
            self.dram_scratch = done;
        }

        // Response network and delivery.
        for c in 0..self.chips.len() {
            while let Some(env) = self.chips[c].pending_rsp.front().copied() {
                let port = env.rsp.dest.index as usize;
                let bytes = env.wire_bytes(self.cfg.line_size);
                if self.chips[c].xbar_rsp.try_push(port, env, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_rsp.pop_front();
            }
            self.chips[c].xbar_rsp.tick(now);
            for port in 0..self.cfg.clusters_per_chip {
                while let Some(env) = self.chips[c].xbar_rsp.pop_ready(port, now) {
                    self.deliver_response(c, env);
                }
            }
        }

        // Inter-chip ring.
        self.ring_phase(now);

        // Controllers and sampling.
        self.controller_phase(now);
        if now.is_multiple_of(OCC_SAMPLE_PERIOD) {
            self.sample_occupancy();
        }
        // Observability timeline (read-only; snapshot is built before the
        // observer is borrowed mutably).
        let obs_due = self
            .obs
            .as_deref()
            .is_some_and(|o| now.is_multiple_of(o.epoch_window()));
        if obs_due {
            let snap = self.machine_snapshot();
            if let Some(o) = self.obs.as_deref_mut() {
                o.sample_epoch(&snap);
            }
        }
    }

    fn issue_phase(&mut self) {
        let mode = self.route_mode();
        let profiling = self.policy.sac().is_some_and(|s| s.is_profiling());
        let n_clusters = self.cfg.clusters_per_chip;
        // Round-robin arbitration: rotate which cluster gets first claim on
        // the cycle's NoC injection bandwidth, as a real allocator would.
        // A fixed priority order starves high-index clusters and produces
        // artificial straggler tails at kernel ends.
        let rotation = (self.cycle as usize) % n_clusters;
        // Distributed CTA scheduling issues work in bounded waves: no
        // cluster may run further ahead of the slowest cluster than one
        // wave of CTAs. This bounds the drift between the clusters' shared
        // working-set phases (and the end-of-kernel straggler tail), as the
        // hardware CTA scheduler does.
        let min_progress = self
            .chips
            .iter()
            .flat_map(|ch| ch.clusters.iter())
            .filter(|cl| !cl.done())
            .map(Cluster::progress)
            .min()
            .unwrap_or(0);
        for c in 0..self.chips.len() {
            let chip_id = ChipId(c as u8);
            for i in 0..n_clusters {
                let cl = (i + rotation) % n_clusters;
                if self.chips[c].clusters[cl].progress() > min_progress + CTA_WAVE_LEAD {
                    continue;
                }
                let Some((acc, needs_request)) = self.chips[c].clusters[cl].issue() else {
                    continue;
                };
                let line = acc.addr.line(self.cfg.line_size);
                let home = self
                    .page_table
                    .home_of(acc.addr.page(self.cfg.page_size), chip_id);
                if !needs_request {
                    // Cluster-MSHR merge: a real L1 miss (observable by the
                    // profiling counters) that needs no new network request.
                    // It completes with the in-flight fill, so it counts as
                    // a memory-side hit for the profiled hit rate.
                    if profiling {
                        let sector = self.sector_of(&acc);
                        let slice = self.slice_of(line);
                        let spc = self.cfg.slices_per_chip;
                        let sac = self.policy.sac_mut().expect("profiling implies sac");
                        sac.collector_mut().observe_request(
                            chip_id,
                            home,
                            line,
                            sector,
                            home.index() * spc + slice,
                            c * spc + slice,
                        );
                        sac.collector_mut().observe_memside_llc(true);
                    }
                    continue;
                }
                let req = Request {
                    id: RequestId(self.next_id),
                    origin: self.chips[c].clusters[cl].id(),
                    access: acc,
                    home,
                };
                let slice = self.slice_of(line);
                let (port_chip, stage) = match mode {
                    RouteMode::MemorySide => (home, ReqStage::ToHomeSlice),
                    RouteMode::SmSide => (chip_id, ReqStage::ToLocalSlice),
                    RouteMode::Tiered if home == chip_id => (chip_id, ReqStage::ToHomeSlice),
                    RouteMode::Tiered => (chip_id, ReqStage::ToLocalSlice),
                };
                let env = ReqEnvelope { req, stage };
                let injected = if port_chip == chip_id {
                    self.chips[c]
                        .xbar_req
                        .try_push(slice, env, env.wire_bytes())
                        .is_ok()
                } else if self.chips[c].pending_ring.len() < PENDING_RING_LIMIT {
                    self.chips[c].pending_ring.push_back(RingPayload::Req(env));
                    true
                } else {
                    false
                };
                if injected {
                    self.next_id += 1;
                    self.in_flight += 1;
                    self.max_in_flight = self.max_in_flight.max(self.in_flight);
                    let now = self.cycle;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.note_issue(now);
                    }
                    if profiling {
                        let sector = self.sector_of(&acc);
                        let spc = self.cfg.slices_per_chip;
                        let sac = self.policy.sac_mut().expect("profiling implies sac");
                        sac.collector_mut().observe_request(
                            chip_id,
                            home,
                            line,
                            sector,
                            home.index() * spc + slice,
                            c * spc + slice,
                        );
                    }
                } else {
                    self.chips[c].clusters[cl].defer(acc);
                }
            }
        }
    }

    /// Handle a request arriving at slice `s` of chip `c`.
    fn process_at_slice(&mut self, c: usize, s: usize, env: ReqEnvelope) {
        let chip_id = ChipId(c as u8);
        let line = env.req.access.addr.line(self.cfg.line_size);
        let sector = self.sector_of(&env.req.access);
        let requester = env.req.origin.chip;
        let is_write = env.req.access.kind.is_write();
        let profiling = self.policy.sac().is_some_and(|sc| sc.is_profiling());

        // A disabled (fused-off) slice holds nothing: every request misses
        // straight through to memory without touching the cache array.
        let outcome = if self.chips[c].slices[s].disabled {
            LookupOutcome::Miss
        } else {
            self.chips[c].slices[s].cache.lookup(line, sector, is_write)
        };
        let hit = outcome == LookupOutcome::Hit;

        if profiling && env.stage == ReqStage::ToHomeSlice {
            // A slice-MSHR merge is bandwidth-equivalent to a hit (the data
            // arrives without further DRAM or ring traffic), so it counts
            // as one for the profiled memory-side hit rate — otherwise the
            // measured rate is biased low relative to the CRD's prediction,
            // which observes the full (unmerged) request stream.
            let merged_would_hit = !hit && self.chips[c].slices[s].pending.contains(line.index());
            if let Some(sac) = self.policy.sac_mut() {
                sac.collector_mut()
                    .observe_memside_llc(hit || merged_would_hit);
            }
        }

        match env.stage {
            // Memory-side role: this is the home chip's slice.
            ReqStage::ToHomeSlice => {
                debug_assert_eq!(chip_id, env.req.home);
                if is_write {
                    if hit {
                        self.absorb_write();
                    } else if self.try_merge_at_slice(c, s, line, env) {
                        // Slice MSHR hit: the store rides the in-flight fetch.
                    } else {
                        // Fetch-on-write: the 32 B coalesced store cannot
                        // dirty a line that is not resident; read the line
                        // from (local) memory first.
                        self.begin_fetch(c, s, line);
                        self.chips[c].memory.push(DramRequest {
                            request: env.req,
                            from_local_slice: true,
                            slice: Some(s as u16),
                        });
                    }
                } else if hit {
                    let origin = if requester == chip_id {
                        ResponseOrigin::LocalLlc
                    } else {
                        ResponseOrigin::RemoteLlc
                    };
                    self.emit_response(c, env.req, origin);
                } else if self.try_merge_at_slice(c, s, line, env) {
                    // Slice MSHR hit: merged onto the in-flight fetch.
                } else {
                    self.begin_fetch(c, s, line);
                    self.chips[c].memory.push(DramRequest {
                        request: env.req,
                        from_local_slice: true,
                        slice: Some(s as u16),
                    });
                }
            }
            // SM-side role (or the L1.5 level of the tiered organizations):
            // this is the requesting chip's slice.
            ReqStage::ToLocalSlice => {
                debug_assert_eq!(chip_id, requester);
                let home = env.req.home;
                let data_home = if home == chip_id {
                    DataHome::Local
                } else {
                    DataHome::Remote
                };
                let _ = data_home;
                if is_write {
                    if hit {
                        self.coherence_on_write(c, line);
                        self.absorb_write();
                    } else {
                        // Fetch-on-write: pull the line from its home (local
                        // memory, or across the ring for remote data) before
                        // dirtying the local replica.
                        self.coherence_on_write(c, line);
                        let forward_to_home =
                            home != chip_id && self.route_mode() == RouteMode::Tiered;
                        if !forward_to_home && self.try_merge_at_slice(c, s, line, env) {
                            // Slice MSHR hit: rides the in-flight fetch.
                        } else if home == chip_id {
                            self.begin_fetch(c, s, line);
                            self.chips[c].memory.push(DramRequest {
                                request: env.req,
                                from_local_slice: true,
                                slice: Some(s as u16),
                            });
                        } else if forward_to_home {
                            // The tiered organizations write remote data
                            // through to the home slice instead of
                            // replicating written lines locally.
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeSlice,
                                }),
                            );
                        } else {
                            self.begin_fetch(c, s, line);
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeMemBypass,
                                }),
                            );
                        }
                    }
                } else if hit {
                    self.emit_response(c, env.req, ResponseOrigin::LocalLlc);
                } else if self.try_merge_at_slice(c, s, line, env) {
                    // Slice MSHR hit: merged onto the in-flight fetch.
                } else {
                    self.begin_fetch(c, s, line);
                    match self.route_mode() {
                        RouteMode::SmSide | RouteMode::MemorySide => {
                            // (MemorySide can momentarily see ToLocalSlice
                            // envelopes right after a SAC revert drain; they
                            // are treated as SM-side leftovers.)
                            if home == chip_id {
                                self.chips[c].memory.push(DramRequest {
                                    request: env.req,
                                    from_local_slice: true,
                                    slice: Some(s as u16),
                                });
                            } else {
                                self.push_ring(
                                    c,
                                    RingPayload::Req(ReqEnvelope {
                                        req: env.req,
                                        stage: ReqStage::ToHomeMemBypass,
                                    }),
                                );
                            }
                        }
                        RouteMode::Tiered => {
                            debug_assert_ne!(home, chip_id, "local-homed goes ToHomeSlice");
                            self.push_ring(
                                c,
                                RingPayload::Req(ReqEnvelope {
                                    req: env.req,
                                    stage: ReqStage::ToHomeSlice,
                                }),
                            );
                        }
                    }
                }
            }
            ReqStage::ToHomeMemBypass => {
                unreachable!("bypass requests go straight to memory, not to a slice")
            }
        }
    }

    /// Merge `env` onto an outstanding line fetch at slice `s` of chip `c`,
    /// if one exists (slice MSHR). Returns `true` when merged.
    fn try_merge_at_slice(&mut self, c: usize, s: usize, line: LineAddr, env: ReqEnvelope) -> bool {
        self.chips[c].slices[s].pending.merge(line.index(), env)
    }

    /// Register an outstanding fetch for `line` at slice `s` of chip `c`.
    fn begin_fetch(&mut self, c: usize, s: usize, line: LineAddr) {
        self.chips[c].slices[s].pending.begin(line.index());
    }

    /// The line arrived at slice `s` of chip `c`: complete all merged
    /// waiters. `origin_override` carries the true data origin when the
    /// fill came over the ring; `None` derives local/remote memory relative
    /// to this chip (fills from this chip's own partition).
    fn drain_merged(
        &mut self,
        c: usize,
        s: usize,
        line: LineAddr,
        origin_override: Option<ResponseOrigin>,
    ) {
        let Some(mut waiters) = self.chips[c].slices[s].pending.take(line.index()) else {
            return;
        };
        let chip_id = ChipId(c as u8);
        for env in waiters.drain(..) {
            if env.req.access.kind.is_write() {
                // Dirty the just-filled line and absorb the store (unless
                // the slice was fused off, in which case nothing is filled).
                let sector = self.sector_of(&env.req.access);
                if !self.chips[c].slices[s].disabled {
                    self.chips[c].slices[s]
                        .cache
                        .fill(line, sector, DataHome::Local, true);
                }
                self.absorb_write();
            } else {
                let origin = origin_override.unwrap_or(if env.req.origin.chip == chip_id {
                    ResponseOrigin::LocalMem
                } else {
                    ResponseOrigin::RemoteMem
                });
                self.emit_response(c, env.req, origin);
            }
        }
        self.chips[c].slices[s].pending.recycle(waiters);
    }

    /// A write reached its destination cache: it is complete.
    fn absorb_write(&mut self) {
        self.writes_done += 1;
        self.in_flight -= 1;
    }

    /// Deal with a dirty eviction from chip `c`'s LLC.
    fn handle_eviction(&mut self, c: usize, ev: Option<mcgpu_cache::Eviction>) {
        let Some(ev) = ev else { return };
        if !ev.dirty {
            return;
        }
        match ev.home {
            DataHome::Local => self.chips[c].memory.push_writeback(ev.line),
            DataHome::Remote => {
                let page = ev.line.page(self.cfg.line_size, self.cfg.page_size);
                let home = self
                    .page_table
                    .lookup(page)
                    .expect("cached lines have mapped pages");
                self.push_ring(
                    c,
                    RingPayload::Writeback {
                        line: ev.line,
                        home,
                    },
                );
            }
        }
    }

    /// Handle a completed DRAM access at chip `c` (a read miss, or a
    /// fetch-on-write).
    fn process_mem_completion(&mut self, c: usize, d: DramRequest) {
        let chip_id = ChipId(c as u8);
        let is_write = d.request.access.kind.is_write();
        // Fill the slice the miss came from (memory-side, or SM-side local).
        if d.from_local_slice {
            if let Some(s) = d.slice {
                // A slice disabled while this fetch was in flight no longer
                // allocates; the data still answers the merged requesters.
                if !self.chips[c].slices[s as usize].disabled {
                    let line = d.request.access.addr.line(self.cfg.line_size);
                    let sector = self.sector_of(&d.request.access);
                    let ev = self.chips[c].slices[s as usize].cache.fill(
                        line,
                        sector,
                        DataHome::Local,
                        is_write,
                    );
                    self.handle_eviction(c, ev);
                }
            }
            if let Some(s) = d.slice {
                let line = d.request.access.addr.line(self.cfg.line_size);
                self.drain_merged(c, s as usize, line, None);
            }
            if is_write {
                // The fetch-on-write completed; the store is absorbed here.
                self.absorb_write();
                return;
            }
        }
        let origin = if d.request.origin.chip == chip_id {
            ResponseOrigin::LocalMem
        } else {
            ResponseOrigin::RemoteMem
        };
        self.emit_response(c, d.request, origin);
    }

    /// Create and route a response from chip `c` towards the requester
    /// (a read's data, or a remote fetch-on-write's line).
    fn emit_response(&mut self, c: usize, req: Request, origin: ResponseOrigin) {
        let chip_id = ChipId(c as u8);
        let requester = req.origin.chip;
        debug_assert!(
            req.access.kind == AccessKind::Read || requester != chip_id,
            "local writes absorb at slices or memory, never via responses"
        );
        // Local responses never replicate; remote responses replicate (or
        // not) exactly as the organization's policy dictates.
        let fill = if requester == chip_id {
            FillAction::None
        } else {
            self.policy.remote_fill_action()
        };
        let env = RspEnvelope {
            rsp: Response {
                id: req.id,
                dest: req.origin,
                access: req.access,
                origin,
            },
            fill,
        };
        if requester == chip_id {
            self.chips[c].pending_rsp.push_back(env);
        } else {
            self.push_ring(c, RingPayload::Rsp(env));
        }
    }

    /// Deliver a response to its SM cluster on chip `c`.
    fn deliver_response(&mut self, c: usize, env: RspEnvelope) {
        debug_assert_eq!(env.rsp.dest.chip.index(), c);
        let cl = env.rsp.dest.index as usize;
        self.chips[c].clusters[cl].complete_read(&env.rsp.access);
        let idx = ResponseOrigin::ALL
            .iter()
            .position(|&o| o == env.rsp.origin)
            .expect("known origin");
        self.responses_by_origin[idx] += 1;
        self.in_flight -= 1;
        let now = self.cycle;
        if let Some(o) = self.obs.as_deref_mut() {
            o.note_response(c, idx, env.rsp.id.0, now);
        }
    }

    /// Queue a payload for the inter-chip ring (bounded; requests check the
    /// bound before issue, internal traffic may exceed it briefly).
    pub(super) fn push_ring(&mut self, c: usize, payload: RingPayload) {
        self.chips[c].pending_ring.push_back(payload);
    }

    fn ring_dest(&self, p: &RingPayload, from: ChipId) -> ChipId {
        let d = match p {
            RingPayload::Req(env) => env.req.home,
            RingPayload::Rsp(env) => env.rsp.dest.chip,
            RingPayload::Writeback { home, .. } => *home,
            RingPayload::Inval { target, .. } => *target,
        };
        debug_assert_ne!(d, from, "ring payloads must cross chips");
        d
    }

    fn ring_phase(&mut self, now: u64) {
        let line_size = self.cfg.line_size;
        // Egress: retry, drain pending into the egress pipe, pipe into ring.
        for c in 0..self.chips.len() {
            let from = ChipId(c as u8);
            if let Some(p) = self.chips[c].ring_retry.take() {
                let dest = self.ring_dest(&p, from);
                let bytes = p.wire_bytes(line_size);
                if let Err(e) = self.ring.try_send(from, dest, p, bytes) {
                    self.chips[c].ring_retry = Some(e.into_payload());
                }
            }
            while let Some(p) = self.chips[c].pending_ring.front() {
                let bytes = p.wire_bytes(line_size);
                let p = *p;
                if self.chips[c].ring_egress.try_push(p, bytes).is_err() {
                    break;
                }
                self.chips[c].pending_ring.pop_front();
            }
            self.chips[c].ring_egress.tick(now);
            while self.chips[c].ring_retry.is_none() {
                let Some(p) = self.chips[c].ring_egress.pop_ready(now) else {
                    break;
                };
                let dest = self.ring_dest(&p, from);
                let bytes = p.wire_bytes(line_size);
                if let Err(e) = self.ring.try_send(from, dest, p, bytes) {
                    self.chips[c].ring_retry = Some(e.into_payload());
                }
            }
        }

        self.ring.tick(now);

        // Arrivals.
        for c in 0..self.chips.len() {
            let chip_id = ChipId(c as u8);
            let mut arrivals = std::mem::take(&mut self.ring_scratch);
            self.ring.pop_arrivals_into(chip_id, now, &mut arrivals);
            for p in arrivals.drain(..) {
                match p {
                    RingPayload::Req(env) => match env.stage {
                        ReqStage::ToHomeSlice => self.chips[c].pending_req.push_back(env),
                        ReqStage::ToHomeMemBypass => {
                            let bytes = env.wire_bytes();
                            self.chips[c]
                                .bypass_to_mem
                                .try_push(env, bytes)
                                .expect("bypass pipe is unbounded");
                        }
                        ReqStage::ToLocalSlice => {
                            unreachable!("local-slice requests never ride the ring")
                        }
                    },
                    RingPayload::Rsp(env) => {
                        let is_write = env.rsp.access.kind.is_write();
                        if env.fill == FillAction::FillLocalSlice {
                            let line = env.rsp.access.addr.line(self.cfg.line_size);
                            let sector = self.sector_of(&env.rsp.access);
                            let s = self.slice_of(line);
                            if !self.chips[c].slices[s].disabled {
                                let ev = self.chips[c].slices[s].cache.fill(
                                    line,
                                    sector,
                                    DataHome::Remote,
                                    is_write,
                                );
                                self.handle_eviction(c, ev);
                                self.directory_fill(c, line);
                            }
                            self.drain_merged(c, s, line, Some(env.rsp.origin));
                        }
                        if is_write {
                            // A completed remote fetch-on-write: the store
                            // is absorbed into the (now dirty) local replica.
                            self.absorb_write();
                        } else {
                            self.chips[c].pending_rsp.push_back(env);
                        }
                    }
                    RingPayload::Writeback { line, home } => {
                        debug_assert_eq!(home, chip_id);
                        self.chips[c].memory.push_writeback(line);
                    }
                    RingPayload::Inval { line, target } => {
                        debug_assert_eq!(target, chip_id);
                        let s = self.slice_of(line);
                        self.chips[c].slices[s].cache.invalidate(line);
                    }
                }
            }
            self.ring_scratch = arrivals;
        }
    }

    /// The per-cycle policy hook: hand the organization's policy the cycle
    /// context (with lazily computed quiescence/work signals so non-SAC
    /// organizations pay nothing for them) and apply whatever actions it
    /// returns, in a fixed order that matches the historical controller
    /// sequencing: dirty writeback, pause transition, overhead accounting,
    /// way-split repartition.
    fn controller_phase(&mut self, now: u64) {
        let ring_bytes = self.ring.bytes_sent();
        let mem_bytes = self.mem_bytes_total();
        let actions = {
            // Borrow individual fields (all disjoint from `policy`) so the
            // policy can observe the machine while it mutates itself.
            let chips = &self.chips;
            let ring = &self.ring;
            let in_flight = self.in_flight;
            let writes_done = self.writes_done;
            let quiescent =
                move || in_flight == 0 && ring.is_empty() && chips.iter().all(Chip::is_quiescent);
            let work_done = move || {
                chips
                    .iter()
                    .flat_map(|c| c.clusters.iter())
                    .map(Cluster::reads_done)
                    .sum::<u64>()
                    + writes_done
            };
            let ctx = EpochCtx {
                now,
                ring_bytes,
                mem_bytes,
                quiescent: &quiescent,
                work_done: &work_done,
            };
            self.policy.on_cycle(&ctx, self.pause)
        };
        if actions.writeback_dirty {
            self.start_llc_dirty_writeback();
        }
        if let Some(p) = actions.set_pause {
            if p != self.pause {
                if let Some(o) = self.obs.as_deref_mut() {
                    o.note_pause(now, p.label());
                }
            }
            self.pause = p;
        }
        if actions.overhead_cycle {
            self.overhead_cycles += 1;
        }
        if let Some(ways) = actions.set_local_ways {
            for chip in &mut self.chips {
                for slice in &mut chip.slices {
                    slice.cache.set_partition(ways);
                }
            }
        }
    }
}
