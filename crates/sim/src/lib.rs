//! Cycle-level multi-chip GPU memory-system simulator.
//!
//! This crate ties the substrates together into the machine of Table 3 and
//! §2 — four GPU chips, each with SM clusters (private write-through L1s),
//! a request and a response crossbar NoC, LLC slices, and a memory
//! partition; chips are connected by an inter-chip ring — and implements
//! all five LLC organizations the paper evaluates (§5):
//!
//! * **memory-side** (baseline): slices cache the local partition's data for
//!   all chips; remote requests cross the ring in both directions;
//! * **SM-side**: slices cache whatever the local SMs access; only misses to
//!   remote data cross the ring (second-NoC datapath, Fig. 6);
//! * **static** (L1.5, Arunkumar et al.): half the ways cache local data,
//!   half cache remote data;
//! * **dynamic** (Milic et al.): the way split adapts at run time to balance
//!   local-memory versus inter-chip bandwidth;
//! * **SAC**: per-kernel reconfiguration between memory-side and SM-side
//!   driven by the EAB model (the [`sac`] crate).
//!
//! # Example
//!
//! ```
//! use mcgpu_sim::{SimBuilder, Simulator};
//! use mcgpu_trace::{generate, profiles, TraceParams};
//! use mcgpu_types::{LlcOrgKind, MachineConfig};
//!
//! let cfg = MachineConfig::experiment_baseline();
//! let wl = generate(&cfg, &profiles::by_name("SN").unwrap(), &TraceParams::quick());
//! let stats = SimBuilder::new(cfg)
//!     .organization(LlcOrgKind::Sac)
//!     .build()
//!     .expect("valid machine configuration")
//!     .run(&wl)
//!     .unwrap();
//! assert!(stats.cycles > 0);
//! ```

pub mod chip;
pub mod cluster;
pub mod dynamic;
pub mod engine;
pub mod obs;
pub mod org;
pub mod packet;
pub mod stats;

pub use engine::{
    workload_fingerprint, ChipConservation, ChipSnapshot, ConservationReport, DeadlockSnapshot,
    SimBuilder, SimError, Simulator,
};
pub use obs::{EpochSample, LatencyHistogram, MachineSnapshot, ObsReport, Observer, HIST_BUCKETS};
pub use org::{BoundaryAction, LlcOrgPolicy, OrgDescriptor, RouteMode, REGISTRY};
pub use stats::{KernelStats, RunStats};
