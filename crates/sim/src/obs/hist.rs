//! Zero-dependency fixed-bucket (log2) latency histogram.
//!
//! Bucket 0 holds the value 0; bucket `k` (for `k >= 1`) holds values in
//! `[2^(k-1), 2^k - 1]`, with the last bucket's upper bound saturating at
//! `u64::MAX`. 65 buckets therefore cover the full `u64` range, so
//! recording can never overflow a bucket index. The representation is a
//! plain counter array: merging two histograms is element-wise addition,
//! which makes merge associative and commutative and conserves counts —
//! the invariants the property suite (`tests/obs_properties.rs`) pins.

/// Number of buckets: value 0, plus one bucket per power-of-two range.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed latency histogram with exact count/sum/min/max.
///
/// # Example
/// ```
/// use mcgpu_sim::obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 3);
/// assert!(h.percentile(0.5) >= 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    /// Exact sum of recorded values (u128: cannot overflow even with
    /// `u64::MAX` values at full count).
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `(low, high)` value range of bucket `i`.
    ///
    /// # Panics
    /// Panics if `i >= HIST_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS);
        if i == 0 {
            (0, 0)
        } else if i == HIST_BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    /// Panics if `i >= HIST_BUCKETS`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(bucket index, count)` pairs for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Serialize the histogram into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        for &c in &self.counts {
            e.put_u64(c);
        }
        e.put_u64(self.count);
        e.put_u128(self.sum);
        e.put_u64(self.min);
        e.put_u64(self.max);
    }

    /// Deserialize a histogram saved by [`LatencyHistogram::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let mut counts = [0u64; HIST_BUCKETS];
        for c in &mut counts {
            *c = d.get_u64()?;
        }
        Ok(LatencyHistogram {
            counts,
            count: d.get_u64()?,
            sum: d.get_u128()?,
            min: d.get_u64()?,
            max: d.get_u64()?,
        })
    }

    /// The `p`-quantile as the upper bound of the bucket containing the
    /// `ceil(p * count)`-th smallest recorded value (`p` clamped to
    /// `[0, 1]`; 0 when empty). Bucket upper bounds make the result
    /// deterministic and monotone in `p`, at the cost of rounding up to a
    /// power-of-two boundary — the right trade for a regression metric.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        // Unreachable: the buckets sum to `count` and rank <= count.
        Self::bucket_bounds(HIST_BUCKETS - 1).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_covers_the_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert_eq!(LatencyHistogram::bucket_of(lo), i);
            assert_eq!(LatencyHistogram::bucket_of(hi), i);
        }
    }

    #[test]
    fn record_tracks_exact_aggregates() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(7);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 7 + u64::MAX as u128);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_histogram_is_neutral() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        let mut m = LatencyHistogram::new();
        m.record(5);
        let before = m.clone();
        m.merge(&h);
        assert_eq!(m, before, "merging an empty histogram is the identity");
    }

    #[test]
    fn percentile_walks_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(0.99), 1);
        // The single large value occupies the last rank.
        assert!(h.percentile(1.0) >= 1000);
    }
}
