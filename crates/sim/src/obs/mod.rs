//! Run observability: latency histograms, epoch timelines, event traces.
//!
//! The observability layer is **strictly read-only**. The engine calls the
//! [`Observer`] hooks with values it already computed; nothing flows back,
//! so a run with observability enabled retires exactly the same requests in
//! exactly the same cycles as one without (the golden byte-identity suite
//! under `tests/obs_inert.rs` pins this). With [`ObsLevel::Off`](mcgpu_types::ObsLevel::Off) — the
//! default — the engine holds no observer at all and every hook is a single
//! `Option` branch.
//!
//! Three recorders, by level:
//!
//! | level | recorder | output |
//! |---|---|---|
//! | `Metrics` | [`LatencyHistogram`] per (chip, request class) | retirement latency distributions (Fig. 9-style breakdowns) |
//! | `Metrics` | [`EpochRecorder`] | per-epoch machine timeline (Fig. 12-style plots) |
//! | `Trace` | [`TraceSink`] | Chrome `trace_event` JSON (kernel + reconfiguration spans, counter tracks) |
//!
//! Request classes are the four [`ResponseOrigin`] values: local LLC,
//! remote LLC, local memory, remote memory. Timestamps everywhere are
//! simulated cycles — never wall-clock time — so all outputs are
//! deterministic and two identical runs serialize byte-identically.

mod hist;
mod timeline;
mod trace;

pub use hist::{LatencyHistogram, HIST_BUCKETS};
pub use timeline::{ChipSample, EpochRecorder, EpochSample, MachineSnapshot};
pub use trace::{TraceSink, TID_KERNELS, TID_SAC};

use crate::stats::JsonWriter;
use mcgpu_types::{CkptError, CkptResult, Dec, Enc, ObsConfig, ResponseOrigin};
use sac::controller::KernelRecord;

/// Every `&'static str` label the observability layer stores inline
/// (route modes, pause states, controller states, trace track/counter
/// names). Checkpoint restore interns decoded label strings against this
/// table so restored state keeps `&'static str` fields without leaking in
/// the common case.
const KNOWN_LABELS: &[&str] = &[
    // Route modes / pause states / controller states.
    "memory-side",
    "sm-side",
    "tiered",
    "running",
    "sac-drain",
    "sac-flush",
    "-",
    "idle",
    "profiling",
    "draining-to-sm-side",
    "draining-to-memory-side",
    "flushing",
    "running-memory-side",
    "running-sm-side",
    // Trace metadata and counter names.
    "process_name",
    "thread_name",
    "in_flight",
    "active_clusters",
    "dram_bytes",
    "ring_sent_bytes",
    "queue_depth",
    "llc_hit_rate",
    "requests",
    "clusters",
    "bytes",
    "rate",
];

/// Intern a decoded label: return the matching entry of [`KNOWN_LABELS`],
/// or leak the string (a one-off few-byte allocation on the cold restore
/// path) when a snapshot carries a label this build does not know.
pub(crate) fn intern_label(s: &str) -> &'static str {
    KNOWN_LABELS
        .iter()
        .find(|&&k| k == s)
        .copied()
        .unwrap_or_else(|| Box::leak(s.to_string().into_boxed_str()))
}

/// Collects observability data during a run via engine hooks.
///
/// Built by the engine when [`ObsConfig::level`] is enabled; consumed by
/// [`Observer::finalize`] into an [`ObsReport`].
#[derive(Debug)]
pub struct Observer {
    cfg: ObsConfig,
    /// Issue cycle of request `id`, indexed by `RequestId.0` (ids are
    /// assigned sequentially by the engine, so a `Vec` is exact).
    issue_cycles: Vec<u64>,
    /// One histogram per (chip, request class), classes in
    /// [`ResponseOrigin::ALL`] order.
    hists: Vec<[LatencyHistogram; 4]>,
    recorder: EpochRecorder,
    trace: Option<TraceSink>,
    /// Currently open reconfiguration span: `(start_cycle, pause label)`.
    open_pause: Option<(u64, &'static str)>,
}

impl Observer {
    /// A new observer for a machine with `chips` chips.
    pub fn new(cfg: ObsConfig, chips: usize) -> Self {
        let trace = if cfg.level.trace_enabled() {
            let mut t = TraceSink::new();
            t.name_process(0, "machine");
            t.name_thread(0, TID_KERNELS, "kernels");
            t.name_thread(0, TID_SAC, "sac-controller");
            for c in 0..chips {
                t.name_process(1 + c as u64, &format!("chip {c}"));
            }
            Some(t)
        } else {
            None
        };
        Observer {
            cfg,
            issue_cycles: Vec::new(),
            hists: vec![
                [
                    LatencyHistogram::new(),
                    LatencyHistogram::new(),
                    LatencyHistogram::new(),
                    LatencyHistogram::new(),
                ];
                chips
            ],
            recorder: EpochRecorder::new(),
            trace: None,
            open_pause: None,
        }
        .with_trace(trace)
    }

    fn with_trace(mut self, trace: Option<TraceSink>) -> Self {
        self.trace = trace;
        self
    }

    /// Timeline epoch window, in cycles.
    pub fn epoch_window(&self) -> u64 {
        self.cfg.epoch_window
    }

    /// A request was injected at `now`. Must be called once per request in
    /// id order (ids are sequential), so the issue cycle of request `id`
    /// lands at index `id`.
    pub fn note_issue(&mut self, now: u64) {
        self.issue_cycles.push(now);
    }

    /// A response for request `id` reached chip `chip` at `now`;
    /// `origin_idx` indexes [`ResponseOrigin::ALL`].
    pub fn note_response(&mut self, chip: usize, origin_idx: usize, id: u64, now: u64) {
        let Some(&issued) = self.issue_cycles.get(id as usize) else {
            return;
        };
        if let Some(h) = self.hists.get_mut(chip) {
            h[origin_idx].record(now.saturating_sub(issued));
        }
    }

    /// Sample the machine at an epoch boundary (or at run end for the
    /// trailing partial epoch). A snapshot that does not advance past the
    /// previous one is ignored.
    pub fn sample_epoch(&mut self, snap: &MachineSnapshot) {
        if !self.recorder.samples().is_empty() && snap.cycle <= self.recorder.baseline().cycle {
            return;
        }
        if let Some(t) = self.trace.as_mut() {
            let ts = snap.cycle;
            t.counter(
                0,
                ts,
                "in_flight",
                vec![("requests", snap.in_flight.to_string())],
            );
            t.counter(
                0,
                ts,
                "active_clusters",
                vec![("clusters", snap.active_clusters.to_string())],
            );
            let base = self.recorder.baseline();
            for (c, chip) in snap.chips.iter().enumerate() {
                let pid = 1 + c as u64;
                let prev = base.chips.get(c).copied().unwrap_or_default();
                t.counter(
                    pid,
                    ts,
                    "dram_bytes",
                    vec![("bytes", (chip.dram_served - prev.dram_served).to_string())],
                );
                t.counter(
                    pid,
                    ts,
                    "ring_sent_bytes",
                    vec![(
                        "bytes",
                        (chip.ring_sent_bytes - prev.ring_sent_bytes).to_string(),
                    )],
                );
                t.counter(
                    pid,
                    ts,
                    "queue_depth",
                    vec![("requests", chip.queue.to_string())],
                );
                let (da, dh) = (
                    chip.llc_accesses - prev.llc_accesses,
                    chip.llc_hits - prev.llc_hits,
                );
                let rate = if da == 0 { 0.0 } else { dh as f64 / da as f64 };
                t.counter(pid, ts, "llc_hit_rate", vec![("rate", format!("{rate:?}"))]);
            }
        }
        self.recorder.record(snap);
    }

    /// The engine's pause state changed at `now` (labels from
    /// `Pause::label()`). Reconfiguration pauses become spans on the SAC
    /// track; `"running"` closes the open span.
    pub fn note_pause(&mut self, now: u64, to_label: &'static str) {
        let Some(t) = self.trace.as_mut() else {
            return;
        };
        if let Some((start, label)) = self.open_pause.take() {
            t.span(0, TID_SAC, label, start, now, vec![]);
        }
        if to_label != "running" {
            self.open_pause = Some((now, to_label));
        }
    }

    /// Kernel `index` ran over `[start, end]` (including its trailing
    /// boundary drain) and completed `accesses` accesses.
    pub fn note_kernel(&mut self, index: usize, start: u64, end: u64, accesses: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.span(
                0,
                TID_KERNELS,
                format!("kernel {index}"),
                start,
                end,
                vec![("accesses".to_string(), accesses.to_string())],
            );
        }
    }

    /// A kernel-boundary coherence drain ran over `[start, end]` (nested
    /// inside the kernel's own span).
    pub fn note_boundary(&mut self, start: u64, end: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.span(0, TID_KERNELS, "kernel-boundary", start, end, vec![]);
        }
    }

    /// Serialize the full recording state (issue cycles, histograms,
    /// timeline, trace events, open spans) into a checkpoint payload, so a
    /// restored run's observability reports are byte-identical to an
    /// uninterrupted run's.
    pub fn save(&self, e: &mut Enc) {
        e.put_u64(self.cfg.epoch_window);
        e.put_bool(self.cfg.level.enabled());
        e.put_bool(self.cfg.level.trace_enabled());
        e.put_seq_len(self.issue_cycles.len());
        for &c in &self.issue_cycles {
            e.put_u64(c);
        }
        e.put_seq_len(self.hists.len());
        for chip in &self.hists {
            for h in chip {
                h.save(e);
            }
        }
        self.recorder.save(e);
        e.put_bool(self.trace.is_some());
        if let Some(t) = &self.trace {
            t.save(e);
        }
        e.put_bool(self.open_pause.is_some());
        if let Some((start, label)) = &self.open_pause {
            e.put_u64(*start);
            e.put_str(label);
        }
    }

    /// Restore state saved by [`Observer::save`] into this observer.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input, or when the
    /// snapshot's observability configuration (level, epoch window) does
    /// not match this observer's.
    pub fn load_into(&mut self, d: &mut Dec<'_>) -> CkptResult<()> {
        let epoch_window = d.get_u64()?;
        let enabled = d.get_bool()?;
        let trace_enabled = d.get_bool()?;
        if epoch_window != self.cfg.epoch_window
            || enabled != self.cfg.level.enabled()
            || trace_enabled != self.cfg.level.trace_enabled()
        {
            return Err(CkptError::Decode(format!(
                "snapshot observability config (window {epoch_window}, enabled {enabled}, \
                 trace {trace_enabled}) does not match the run's (window {}, enabled {}, trace {})",
                self.cfg.epoch_window,
                self.cfg.level.enabled(),
                self.cfg.level.trace_enabled()
            )));
        }
        let n = d.get_seq_len()?;
        self.issue_cycles.clear();
        self.issue_cycles.reserve(n);
        for _ in 0..n {
            self.issue_cycles.push(d.get_u64()?);
        }
        let n = d.get_seq_len()?;
        if n != self.hists.len() {
            return Err(CkptError::Decode(format!(
                "snapshot has histograms for {n} chips, observer has {}",
                self.hists.len()
            )));
        }
        for chip in &mut self.hists {
            for h in chip.iter_mut() {
                *h = LatencyHistogram::load(d)?;
            }
        }
        self.recorder = EpochRecorder::load(d)?;
        let has_trace = d.get_bool()?;
        if has_trace != self.trace.is_some() {
            return Err(CkptError::Decode(
                "snapshot trace presence does not match the run's trace level".to_string(),
            ));
        }
        if has_trace {
            self.trace = Some(TraceSink::load(d)?);
        }
        self.open_pause = if d.get_bool()? {
            let start = d.get_u64()?;
            let label = intern_label(d.get_str()?);
            Some((start, label))
        } else {
            None
        };
        Ok(())
    }

    /// Consume the observer into a report. `final_snap` is the machine at
    /// run end (records the trailing partial epoch); `sac_history` supplies
    /// decision instants for the trace.
    pub fn finalize(
        mut self,
        organization: &str,
        cycles: u64,
        final_snap: &MachineSnapshot,
        sac_history: &[KernelRecord],
    ) -> ObsReport {
        self.sample_epoch(final_snap);
        if let Some((start, label)) = self.open_pause.take() {
            if let Some(t) = self.trace.as_mut() {
                t.span(0, TID_SAC, label, start, cycles, vec![]);
            }
        }
        if let Some(t) = self.trace.as_mut() {
            for r in sac_history {
                t.instant(
                    0,
                    TID_SAC,
                    format!("decision: {}", r.mode.label()),
                    r.decision_cycle,
                    vec![
                        (
                            "eab_memory_side".to_string(),
                            format!("{:?}", r.eab_memory_side),
                        ),
                        ("eab_sm_side".to_string(), format!("{:?}", r.eab_sm_side)),
                        ("r_local".to_string(), format!("{:?}", r.inputs.r_local)),
                        (
                            "requests_observed".to_string(),
                            r.requests_observed.to_string(),
                        ),
                        ("fallback".to_string(), r.fallback.to_string()),
                    ],
                );
            }
        }
        ObsReport {
            organization: organization.to_string(),
            epoch_window: self.cfg.epoch_window,
            cycles,
            histograms: self.hists,
            timeline: self.recorder.into_samples(),
            trace_json: self.trace.map(|t| t.to_json()),
        }
    }
}

/// Everything the observability layer recorded about one run.
#[derive(Debug)]
pub struct ObsReport {
    /// Label of the LLC organization simulated.
    pub organization: String,
    /// Timeline epoch window, in cycles.
    pub epoch_window: u64,
    /// Total run cycles.
    pub cycles: u64,
    /// Retirement-latency histograms per (chip, request class), classes in
    /// [`ResponseOrigin::ALL`] order.
    pub histograms: Vec<[LatencyHistogram; 4]>,
    /// The epoch timeline.
    pub timeline: Vec<EpochSample>,
    /// Chrome `trace_event` JSON ([`ObsLevel::Trace`] runs only).
    ///
    /// [`ObsLevel::Trace`]: mcgpu_types::ObsLevel::Trace
    pub trace_json: Option<String>,
}

impl ObsReport {
    /// The latency histogram for one request class, merged across chips.
    pub fn class_histogram(&self, origin: ResponseOrigin) -> LatencyHistogram {
        let idx = ResponseOrigin::ALL
            .iter()
            .position(|&o| o == origin)
            .expect("origin in ALL");
        let mut m = LatencyHistogram::new();
        for chip in &self.histograms {
            m.merge(&chip[idx]);
        }
        m
    }

    /// The latency histogram over all classes and chips.
    pub fn total_histogram(&self) -> LatencyHistogram {
        let mut m = LatencyHistogram::new();
        for chip in &self.histograms {
            for h in chip {
                m.merge(h);
            }
        }
        m
    }

    /// Serialize to canonical JSON: fixed key order, 2-space indentation,
    /// shortest-roundtrip floats, no wall-clock content — two identical
    /// runs emit byte-identical documents. The trace (if any) is a separate
    /// artifact and is not embedded.
    pub fn to_canonical_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open();
        w.str_field("schema", "mcgpu-obs-v1");
        w.str_field("organization", &self.organization);
        w.u64_field("epoch_window", self.epoch_window);
        w.u64_field("cycles", self.cycles);
        w.array_field("latency", self.histograms.len(), |w, c| {
            let chip = &self.histograms[c];
            w.open();
            w.u64_field("chip", c as u64);
            w.array_field("classes", chip.len(), |w, i| {
                hist_object(w, ResponseOrigin::ALL[i].label(), &chip[i]);
            });
            w.close();
        });
        w.array_field("timeline", self.timeline.len(), |w, i| {
            let s = &self.timeline[i];
            w.open();
            w.u64_field("epoch", s.epoch);
            w.u64_field("start_cycle", s.start_cycle);
            w.u64_field("end_cycle", s.end_cycle);
            w.u64_field("reads", s.reads);
            w.u64_field("writes", s.writes);
            w.u64_field("ring_bytes", s.ring_bytes);
            w.u64_field("ring_delivered", s.ring_delivered);
            w.u64_field("noc_bytes", s.noc_bytes);
            w.u64_field("noc_rejected", s.noc_rejected);
            w.u64_field("dram_bytes", s.dram_bytes);
            w.u64_field("dram_reads", s.dram_reads);
            w.u64_field("dram_writes", s.dram_writes);
            w.u64_field("llc_accesses", s.llc_accesses);
            w.u64_field("llc_hits", s.llc_hits);
            w.f64_field("llc_hit_rate", s.llc_hit_rate());
            w.u64_field("l1_accesses", s.l1_accesses);
            w.u64_field("l1_hits", s.l1_hits);
            w.u64_field("in_flight", s.in_flight);
            w.u64_field("active_clusters", s.active_clusters);
            w.u64_field("dram_queue", s.dram_queue);
            w.u64_field("slice_queue", s.slice_queue);
            w.u64_field("sac_window_requests", s.sac_window_requests);
            w.u64_field("crd_occupied", s.crd_occupied);
            w.u64_field("crd_capacity", s.crd_capacity);
            w.str_field("route_mode", s.route_mode);
            w.str_field("pause", s.pause);
            w.str_field("controller", s.controller);
            w.u64_field("sac_decisions", s.sac_decisions);
            w.close();
        });
        w.close();
        w.finish()
    }
}

/// Emit one histogram as an object member named `key`.
fn hist_object(w: &mut JsonWriter, key: &str, h: &LatencyHistogram) {
    w.open();
    w.str_field("class", key);
    w.u64_field("count", h.count());
    // Sums of cycle latencies fit u64 in any practical run; saturate for
    // the canonical emitter, which has no u128 path.
    w.u64_field("sum", u64::try_from(h.sum()).unwrap_or(u64::MAX));
    w.u64_field("min", h.min());
    w.u64_field("max", h.max());
    w.f64_field("mean", h.mean());
    w.u64_field("p50", h.percentile(0.50));
    w.u64_field("p90", h.percentile(0.90));
    w.u64_field("p99", h.percentile(0.99));
    let flat: Vec<u64> = h
        .nonzero_buckets()
        .flat_map(|(i, c)| [i as u64, c])
        .collect();
    w.u64_array_field("buckets", &flat);
    w.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: u64) -> MachineSnapshot {
        MachineSnapshot {
            cycle,
            route_mode: "memory-side",
            pause: "running",
            controller: "-",
            chips: vec![ChipSample::default(); 2],
            ..MachineSnapshot::default()
        }
    }

    #[test]
    fn observer_records_latencies_per_chip_and_class() {
        let mut o = Observer::new(ObsConfig::metrics(), 2);
        o.note_issue(100); // id 0
        o.note_issue(110); // id 1
        o.note_response(0, 0, 0, 150); // chip 0, local LLC, 50 cycles
        o.note_response(1, 3, 1, 400); // chip 1, remote mem, 290 cycles
        let r = o.finalize("memory-side", 500, &snap(500), &[]);
        assert_eq!(r.class_histogram(ResponseOrigin::LocalLlc).count(), 1);
        assert_eq!(r.class_histogram(ResponseOrigin::RemoteMem).count(), 1);
        assert_eq!(r.total_histogram().count(), 2);
        assert_eq!(r.total_histogram().sum(), 50 + 290);
        assert!(r.trace_json.is_none(), "metrics level has no trace sink");
    }

    #[test]
    fn finalize_records_trailing_epoch_and_closes_spans() {
        let mut o = Observer::new(ObsConfig::trace().with_epoch_window(100), 1);
        o.sample_epoch(&snap(100));
        o.note_pause(150, "sac-drain");
        let r = o.finalize("sac", 230, &snap(230), &[]);
        assert_eq!(r.timeline.len(), 2, "trailing partial epoch recorded");
        assert_eq!(r.timeline[1].end_cycle, 230);
        let trace = r.trace_json.expect("trace level emits a trace");
        assert!(
            trace.contains("sac-drain"),
            "open pause span closed at run end"
        );
    }

    #[test]
    fn canonical_json_is_deterministic_and_closed() {
        let build = || {
            let mut o = Observer::new(ObsConfig::metrics(), 1);
            o.note_issue(0);
            o.note_response(0, 2, 0, 75);
            o.sample_epoch(&snap(100));
            o.finalize("sm-side", 100, &snap(100), &[])
                .to_canonical_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.trim_end().ends_with('}'), "obs JSON is strictly closed");
        assert!(mcgpu_types::json::parse(&a).is_ok());
    }
}
