//! Per-epoch time-series recorder.
//!
//! The engine snapshots the machine every `epoch_window` cycles (plus one
//! trailing partial epoch at run end) into a [`MachineSnapshot`]; the
//! [`EpochRecorder`] differences consecutive snapshots into
//! [`EpochSample`] rows so a Fig.-12-style time-varying plot (activity,
//! link utilization, LLC hit rate, SAC controller state) comes from one
//! run instead of a sweep.

/// Read-only point-in-time view of the machine, built by the engine.
///
/// Counter fields are cumulative since cycle 0; the recorder turns them
/// into per-epoch deltas. Gauge fields (`in_flight`, queue depths, CRD
/// occupancy) are instantaneous.
#[derive(Debug, Clone, Default)]
pub struct MachineSnapshot {
    /// Cycle the snapshot was taken at.
    pub cycle: u64,
    /// Cumulative read requests issued.
    pub reads: u64,
    /// Cumulative write requests issued.
    pub writes: u64,
    /// Requests currently in flight.
    pub in_flight: u64,
    /// SM clusters that still have accesses to issue.
    pub active_clusters: u64,
    /// Cumulative bytes accepted by the inter-chip ring.
    pub ring_bytes: u64,
    /// Cumulative packets delivered by the ring.
    pub ring_delivered: u64,
    /// Cumulative bytes accepted by the intra-chip crossbars (request +
    /// response planes, all chips).
    pub noc_bytes: u64,
    /// Cumulative crossbar injection rejections (back-pressure events).
    pub noc_rejected: u64,
    /// Cumulative bytes served by DRAM (reads + writebacks).
    pub dram_bytes: u64,
    /// Cumulative DRAM read requests completed.
    pub dram_reads: u64,
    /// Cumulative DRAM write requests completed.
    pub dram_writes: u64,
    /// Requests currently queued at DRAM controllers (all chips).
    pub dram_queue: u64,
    /// Requests currently queued or in service at LLC slices (all chips).
    pub slice_queue: u64,
    /// Cumulative LLC accesses (all chips).
    pub llc_accesses: u64,
    /// Cumulative LLC hits (all chips).
    pub llc_hits: u64,
    /// Cumulative L1 accesses (all clusters).
    pub l1_accesses: u64,
    /// Cumulative L1 hits (all clusters).
    pub l1_hits: u64,
    /// Current routing-mode label from the organization policy.
    pub route_mode: &'static str,
    /// Current pause-state label from the engine.
    pub pause: &'static str,
    /// Current controller-state label (SAC orgs only; `"-"` otherwise).
    pub controller: &'static str,
    /// Cumulative SAC decisions taken (kernel records completed).
    pub sac_decisions: u64,
    /// Requests observed by the SAC profiling window so far.
    pub sac_window_requests: u64,
    /// Valid blocks currently held in the CRDs (SAC orgs only).
    pub crd_occupied: u64,
    /// Total CRD block capacity (0 when the org has no CRDs).
    pub crd_capacity: u64,
    /// Per-chip gauges and counters.
    pub chips: Vec<ChipSample>,
}

/// Per-chip slice of a [`MachineSnapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChipSample {
    /// Cumulative bytes served by this chip's DRAM.
    pub dram_served: u64,
    /// Requests currently queued at this chip (DRAM + LLC slices).
    pub queue: u64,
    /// Cumulative LLC accesses on this chip.
    pub llc_accesses: u64,
    /// Cumulative LLC hits on this chip.
    pub llc_hits: u64,
    /// Cumulative bytes this chip injected into the ring.
    pub ring_sent_bytes: u64,
}

impl ChipSample {
    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.dram_served);
        e.put_u64(self.queue);
        e.put_u64(self.llc_accesses);
        e.put_u64(self.llc_hits);
        e.put_u64(self.ring_sent_bytes);
    }

    /// Deserialize a sample saved by [`ChipSample::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        Ok(ChipSample {
            dram_served: d.get_u64()?,
            queue: d.get_u64()?,
            llc_accesses: d.get_u64()?,
            llc_hits: d.get_u64()?,
            ring_sent_bytes: d.get_u64()?,
        })
    }
}

impl MachineSnapshot {
    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.cycle);
        e.put_u64(self.reads);
        e.put_u64(self.writes);
        e.put_u64(self.in_flight);
        e.put_u64(self.active_clusters);
        e.put_u64(self.ring_bytes);
        e.put_u64(self.ring_delivered);
        e.put_u64(self.noc_bytes);
        e.put_u64(self.noc_rejected);
        e.put_u64(self.dram_bytes);
        e.put_u64(self.dram_reads);
        e.put_u64(self.dram_writes);
        e.put_u64(self.dram_queue);
        e.put_u64(self.slice_queue);
        e.put_u64(self.llc_accesses);
        e.put_u64(self.llc_hits);
        e.put_u64(self.l1_accesses);
        e.put_u64(self.l1_hits);
        e.put_str(self.route_mode);
        e.put_str(self.pause);
        e.put_str(self.controller);
        e.put_u64(self.sac_decisions);
        e.put_u64(self.sac_window_requests);
        e.put_u64(self.crd_occupied);
        e.put_u64(self.crd_capacity);
        e.put_seq_len(self.chips.len());
        for c in &self.chips {
            c.save(e);
        }
    }

    /// Deserialize a snapshot saved by [`MachineSnapshot::save`]. Label
    /// fields are interned against the engine's known label vocabulary.
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let mut s = MachineSnapshot {
            cycle: d.get_u64()?,
            reads: d.get_u64()?,
            writes: d.get_u64()?,
            in_flight: d.get_u64()?,
            active_clusters: d.get_u64()?,
            ring_bytes: d.get_u64()?,
            ring_delivered: d.get_u64()?,
            noc_bytes: d.get_u64()?,
            noc_rejected: d.get_u64()?,
            dram_bytes: d.get_u64()?,
            dram_reads: d.get_u64()?,
            dram_writes: d.get_u64()?,
            dram_queue: d.get_u64()?,
            slice_queue: d.get_u64()?,
            llc_accesses: d.get_u64()?,
            llc_hits: d.get_u64()?,
            l1_accesses: d.get_u64()?,
            l1_hits: d.get_u64()?,
            route_mode: super::intern_label(d.get_str()?),
            pause: super::intern_label(d.get_str()?),
            controller: super::intern_label(d.get_str()?),
            sac_decisions: d.get_u64()?,
            sac_window_requests: d.get_u64()?,
            crd_occupied: d.get_u64()?,
            crd_capacity: d.get_u64()?,
            chips: Vec::new(),
        };
        let n = d.get_seq_len()?;
        s.chips.reserve(n);
        for _ in 0..n {
            s.chips.push(ChipSample::load(d)?);
        }
        Ok(s)
    }
}

/// One row of the epoch timeline: deltas over `[start_cycle, end_cycle)`
/// plus instantaneous gauges and labels sampled at `end_cycle`.
#[derive(Debug, Clone, Default)]
pub struct EpochSample {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// First cycle of the epoch.
    pub start_cycle: u64,
    /// Cycle the epoch was sampled at (exclusive end).
    pub end_cycle: u64,
    /// Read requests issued during the epoch.
    pub reads: u64,
    /// Write requests issued during the epoch.
    pub writes: u64,
    /// Bytes accepted by the ring during the epoch.
    pub ring_bytes: u64,
    /// Packets delivered by the ring during the epoch.
    pub ring_delivered: u64,
    /// Bytes accepted by the crossbars during the epoch.
    pub noc_bytes: u64,
    /// Crossbar rejections during the epoch.
    pub noc_rejected: u64,
    /// Bytes served by DRAM during the epoch.
    pub dram_bytes: u64,
    /// DRAM reads completed during the epoch.
    pub dram_reads: u64,
    /// DRAM writes completed during the epoch.
    pub dram_writes: u64,
    /// LLC accesses during the epoch.
    pub llc_accesses: u64,
    /// LLC hits during the epoch.
    pub llc_hits: u64,
    /// L1 accesses during the epoch.
    pub l1_accesses: u64,
    /// L1 hits during the epoch.
    pub l1_hits: u64,
    /// Requests in flight at sample time.
    pub in_flight: u64,
    /// Active SM clusters at sample time.
    pub active_clusters: u64,
    /// DRAM queue depth at sample time.
    pub dram_queue: u64,
    /// LLC slice queue depth at sample time.
    pub slice_queue: u64,
    /// SAC profiling-window requests observed so far.
    pub sac_window_requests: u64,
    /// Valid CRD blocks at sample time.
    pub crd_occupied: u64,
    /// CRD block capacity.
    pub crd_capacity: u64,
    /// Routing-mode label at sample time.
    pub route_mode: &'static str,
    /// Pause-state label at sample time.
    pub pause: &'static str,
    /// Controller-state label at sample time.
    pub controller: &'static str,
    /// Cumulative SAC decisions taken by sample time.
    pub sac_decisions: u64,
}

impl EpochSample {
    /// LLC hit rate over the epoch (0 when the LLC saw no accesses).
    pub fn llc_hit_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_hits as f64 / self.llc_accesses as f64
        }
    }

    /// Cycles covered by the epoch.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Serialize into a checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        e.put_u64(self.epoch);
        e.put_u64(self.start_cycle);
        e.put_u64(self.end_cycle);
        e.put_u64(self.reads);
        e.put_u64(self.writes);
        e.put_u64(self.ring_bytes);
        e.put_u64(self.ring_delivered);
        e.put_u64(self.noc_bytes);
        e.put_u64(self.noc_rejected);
        e.put_u64(self.dram_bytes);
        e.put_u64(self.dram_reads);
        e.put_u64(self.dram_writes);
        e.put_u64(self.llc_accesses);
        e.put_u64(self.llc_hits);
        e.put_u64(self.l1_accesses);
        e.put_u64(self.l1_hits);
        e.put_u64(self.in_flight);
        e.put_u64(self.active_clusters);
        e.put_u64(self.dram_queue);
        e.put_u64(self.slice_queue);
        e.put_u64(self.sac_window_requests);
        e.put_u64(self.crd_occupied);
        e.put_u64(self.crd_capacity);
        e.put_str(self.route_mode);
        e.put_str(self.pause);
        e.put_str(self.controller);
        e.put_u64(self.sac_decisions);
    }

    /// Deserialize a sample saved by [`EpochSample::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        Ok(EpochSample {
            epoch: d.get_u64()?,
            start_cycle: d.get_u64()?,
            end_cycle: d.get_u64()?,
            reads: d.get_u64()?,
            writes: d.get_u64()?,
            ring_bytes: d.get_u64()?,
            ring_delivered: d.get_u64()?,
            noc_bytes: d.get_u64()?,
            noc_rejected: d.get_u64()?,
            dram_bytes: d.get_u64()?,
            dram_reads: d.get_u64()?,
            dram_writes: d.get_u64()?,
            llc_accesses: d.get_u64()?,
            llc_hits: d.get_u64()?,
            l1_accesses: d.get_u64()?,
            l1_hits: d.get_u64()?,
            in_flight: d.get_u64()?,
            active_clusters: d.get_u64()?,
            dram_queue: d.get_u64()?,
            slice_queue: d.get_u64()?,
            sac_window_requests: d.get_u64()?,
            crd_occupied: d.get_u64()?,
            crd_capacity: d.get_u64()?,
            route_mode: super::intern_label(d.get_str()?),
            pause: super::intern_label(d.get_str()?),
            controller: super::intern_label(d.get_str()?),
            sac_decisions: d.get_u64()?,
        })
    }
}

/// Differences consecutive [`MachineSnapshot`]s into [`EpochSample`] rows.
#[derive(Debug, Default)]
pub struct EpochRecorder {
    prev: MachineSnapshot,
    samples: Vec<EpochSample>,
}

impl EpochRecorder {
    /// A recorder with an all-zero baseline at cycle 0.
    pub fn new() -> Self {
        EpochRecorder::default()
    }

    /// Record one epoch ending at `snap.cycle`. A snapshot that does not
    /// advance past the previous baseline (e.g. the trailing sample when
    /// the run ended exactly on an epoch boundary) is ignored.
    pub fn record(&mut self, snap: &MachineSnapshot) {
        if snap.cycle <= self.prev.cycle && !self.samples.is_empty() {
            return;
        }
        let p = &self.prev;
        self.samples.push(EpochSample {
            epoch: self.samples.len() as u64,
            start_cycle: p.cycle,
            end_cycle: snap.cycle,
            reads: snap.reads - p.reads,
            writes: snap.writes - p.writes,
            ring_bytes: snap.ring_bytes - p.ring_bytes,
            ring_delivered: snap.ring_delivered - p.ring_delivered,
            noc_bytes: snap.noc_bytes - p.noc_bytes,
            noc_rejected: snap.noc_rejected - p.noc_rejected,
            dram_bytes: snap.dram_bytes - p.dram_bytes,
            dram_reads: snap.dram_reads - p.dram_reads,
            dram_writes: snap.dram_writes - p.dram_writes,
            llc_accesses: snap.llc_accesses - p.llc_accesses,
            llc_hits: snap.llc_hits - p.llc_hits,
            l1_accesses: snap.l1_accesses - p.l1_accesses,
            l1_hits: snap.l1_hits - p.l1_hits,
            in_flight: snap.in_flight,
            active_clusters: snap.active_clusters,
            dram_queue: snap.dram_queue,
            slice_queue: snap.slice_queue,
            sac_window_requests: snap.sac_window_requests,
            crd_occupied: snap.crd_occupied,
            crd_capacity: snap.crd_capacity,
            route_mode: snap.route_mode,
            pause: snap.pause,
            controller: snap.controller,
            sac_decisions: snap.sac_decisions,
        });
        self.prev = snap.clone();
    }

    /// The recorded timeline so far.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// The baseline snapshot the next epoch will be differenced against
    /// (the previous sample's snapshot, or all-zero before the first).
    pub fn baseline(&self) -> &MachineSnapshot {
        &self.prev
    }

    /// Consume the recorder, returning the timeline.
    pub fn into_samples(self) -> Vec<EpochSample> {
        self.samples
    }

    /// Serialize the recorder (baseline snapshot + recorded samples) into a
    /// checkpoint payload.
    pub fn save(&self, e: &mut mcgpu_types::Enc) {
        self.prev.save(e);
        e.put_seq_len(self.samples.len());
        for s in &self.samples {
            s.save(e);
        }
    }

    /// Deserialize a recorder saved by [`EpochRecorder::save`].
    ///
    /// # Errors
    /// Returns a decode error on truncated or malformed input.
    pub fn load(d: &mut mcgpu_types::Dec<'_>) -> mcgpu_types::CkptResult<Self> {
        let prev = MachineSnapshot::load(d)?;
        let n = d.get_seq_len()?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(EpochSample::load(d)?);
        }
        Ok(EpochRecorder { prev, samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: u64, reads: u64) -> MachineSnapshot {
        MachineSnapshot {
            cycle,
            reads,
            route_mode: "memory-side",
            pause: "running",
            controller: "-",
            ..MachineSnapshot::default()
        }
    }

    #[test]
    fn deltas_are_per_epoch() {
        let mut r = EpochRecorder::new();
        r.record(&snap(10_000, 100));
        r.record(&snap(20_000, 250));
        let s = r.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(
            (s[0].start_cycle, s[0].end_cycle, s[0].reads),
            (0, 10_000, 100)
        );
        assert_eq!(
            (s[1].start_cycle, s[1].end_cycle, s[1].reads),
            (10_000, 20_000, 150)
        );
        assert_eq!(s[1].epoch, 1);
    }

    #[test]
    fn non_advancing_trailing_sample_is_ignored() {
        let mut r = EpochRecorder::new();
        r.record(&snap(10_000, 100));
        r.record(&snap(10_000, 100));
        assert_eq!(r.samples().len(), 1);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        let s = EpochSample::default();
        assert_eq!(s.llc_hit_rate(), 0.0);
    }
}
